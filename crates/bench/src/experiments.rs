//! Experiment runners: one function per paper figure/table.

use controller::scenarios::{BulkUpdateScenario, TriangleScenario};
use controller::{AckMode, Controller};
use ofswitch::SwitchModel;
use openflow::messages::{FlowMod, PacketOut};
use openflow::{Action, DatapathId, OfMatch, OfMessage};
use rum::{deploy, RumBuilder, RumHandle, TechniqueConfig};
use simnet::OpenFlowSwitch;
use simnet::{Context, EventPayload, FlowId, Node, NodeId, SimTime, Simulator};
use std::any::Any;
use std::net::Ipv4Addr;

/// When the controller starts pushing the update in end-to-end experiments.
pub const UPDATE_START: SimTime = SimTime::from_millis(500);

/// The acknowledgment strategies compared in the end-to-end experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EndToEndTechnique {
    /// Issue every modification immediately (no consistency, lower bound).
    NoWait,
    /// Trust the switch's barrier replies (baseline, unreliable).
    Barriers,
    /// Wait a fixed delay after each barrier reply.
    Timeout(SimTime),
    /// Predict activation from an assumed modification rate (rules/s).
    Adaptive(f64),
    /// Sequential probing (versioned probe rule per batch).
    Sequential,
    /// General probing (per-rule probe packets).
    General,
}

impl EndToEndTechnique {
    /// A short label used in reports (matches the paper's legends).
    pub fn label(&self) -> String {
        match self {
            EndToEndTechnique::NoWait => "no wait".into(),
            EndToEndTechnique::Barriers => "barriers (baseline)".into(),
            EndToEndTechnique::Timeout(d) => format!("timeout {}ms", d.as_millis()),
            EndToEndTechnique::Adaptive(rate) => format!("adaptive {rate:.0}"),
            EndToEndTechnique::Sequential => "sequential".into(),
            EndToEndTechnique::General => "general".into(),
        }
    }

    /// The RUM technique configuration, if RUM is involved at all.
    pub fn rum_technique(&self) -> Option<TechniqueConfig> {
        match self {
            EndToEndTechnique::NoWait => None,
            EndToEndTechnique::Barriers => Some(TechniqueConfig::BarrierBaseline),
            EndToEndTechnique::Timeout(d) => {
                Some(TechniqueConfig::StaticTimeout { delay: (*d).into() })
            }
            EndToEndTechnique::Adaptive(rate) => Some(TechniqueConfig::AdaptiveDelay {
                assumed_rate: *rate,
                assumed_sync_lag: SwitchModel::hp5406zl().worst_case_dataplane_lag(),
            }),
            EndToEndTechnique::Sequential => Some(TechniqueConfig::default_sequential()),
            EndToEndTechnique::General => Some(TechniqueConfig::default_general()),
        }
    }

    /// The full set of techniques plotted across Figures 6 and 7.
    pub fn all() -> Vec<EndToEndTechnique> {
        vec![
            EndToEndTechnique::Barriers,
            EndToEndTechnique::Timeout(SimTime::from_millis(300)),
            EndToEndTechnique::Adaptive(200.0),
            EndToEndTechnique::Adaptive(250.0),
            EndToEndTechnique::Sequential,
            EndToEndTechnique::General,
            EndToEndTechnique::NoWait,
        ]
    }
}

/// One row per flow in an end-to-end experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowRow {
    /// Flow index.
    pub flow: u64,
    /// Time (ms, relative to the update start) when the last packet over the
    /// old path arrived.
    pub last_old_ms: f64,
    /// Time (ms, relative to the update start) when the first packet over the
    /// new path arrived — the "flow update time" of Figures 6/7.
    pub update_time_ms: f64,
    /// How long the flow was broken (ms) — Figure 1b.
    pub broken_ms: f64,
}

/// Result of an end-to-end (triangle path migration) run.
#[derive(Debug, Clone)]
pub struct EndToEndResult {
    /// Technique label.
    pub technique: String,
    /// Per-flow rows, sorted by update time.
    pub flows: Vec<FlowRow>,
    /// Total packets dropped anywhere in the network.
    pub total_drops: usize,
    /// Total packets delivered.
    pub total_delivered: usize,
    /// Number of flows whose path actually changed.
    pub migrated_flows: usize,
    /// Modifications the controller's session confirmed.
    pub confirmed_mods: usize,
    /// When the controller considered the update complete (ms after start).
    pub controller_completion_ms: Option<f64>,
    /// Mean flow update time (ms after the update started).
    pub mean_update_ms: f64,
}

impl EndToEndResult {
    /// Fraction of flows broken for longer than `threshold_ms` (the CDF of
    /// Figure 1b read at a given x).
    pub fn fraction_broken_longer_than(&self, threshold_ms: f64) -> f64 {
        if self.flows.is_empty() {
            return 0.0;
        }
        let n = self
            .flows
            .iter()
            .filter(|f| f.broken_ms > threshold_ms)
            .count();
        n as f64 / self.flows.len() as f64
    }

    /// The largest per-flow broken time (ms).
    pub fn max_broken_ms(&self) -> f64 {
        self.flows.iter().map(|f| f.broken_ms).fold(0.0, f64::max)
    }
}

/// Wires a controller + (optionally) RUM into an already-built scenario.
/// Returns the controller node and the RUM deployment handle (if any).
fn wire_control_plane(
    sim: &mut Simulator,
    plan: controller::UpdatePlan,
    switches: &[NodeId],
    plan_targets: &[usize],
    rum: Option<RumBuilder>,
    ack_mode: AckMode,
    window: usize,
) -> (NodeId, Option<RumHandle>) {
    let ctrl = Controller::new("ctrl", plan, ack_mode, window, UPDATE_START);
    let ctrl_id = sim.add_node(ctrl);
    match rum {
        None => {
            // Direct connections: controller talks straight to the switches.
            let connections: Vec<NodeId> = plan_targets.iter().map(|&t| switches[t]).collect();
            sim.node_mut::<Controller>(ctrl_id)
                .unwrap()
                .set_connections(connections);
            for &sw in switches {
                sim.node_mut::<OpenFlowSwitch>(sw)
                    .unwrap()
                    .connect_controller(ctrl_id);
            }
            (ctrl_id, None)
        }
        Some(builder) => {
            let (proxies, handle) = deploy(sim, builder, ctrl_id, switches);
            let connections: Vec<NodeId> = plan_targets.iter().map(|&t| proxies[t]).collect();
            sim.node_mut::<Controller>(ctrl_id)
                .unwrap()
                .set_connections(connections);
            for (idx, &sw) in switches.iter().enumerate() {
                sim.node_mut::<OpenFlowSwitch>(sw)
                    .unwrap()
                    .connect_controller(proxies[idx]);
            }
            (ctrl_id, Some(handle))
        }
    }
}

/// Runs the triangle path-migration experiment (Figures 1b, 6 and 7).
pub fn run_end_to_end(
    technique: EndToEndTechnique,
    n_flows: u32,
    packets_per_sec: u64,
    seed: u64,
) -> EndToEndResult {
    let mut sim = Simulator::new(seed);
    let traffic_stop = SimTime::from_secs(6);
    let scenario = TriangleScenario {
        n_flows,
        packets_per_sec,
        traffic_stop,
        ..Default::default()
    };
    let net = scenario.build(&mut sim);
    let switches = [net.s1, net.s2, net.s3];
    let ack_mode = match technique {
        EndToEndTechnique::NoWait => AckMode::NoWait,
        _ => AckMode::RumAcks,
    };
    let rum = technique
        .rum_technique()
        .map(|t| RumBuilder::new(switches.len()).technique(t));
    let (ctrl_id, _layer) = wire_control_plane(
        &mut sim,
        net.plan.clone(),
        &switches,
        &[0, 1, 2],
        rum,
        ack_mode,
        usize::MAX >> 1,
    );
    sim.run_until(traffic_stop + SimTime::from_secs(1));

    let start_ms = UPDATE_START.as_millis_f64();
    let summaries = sim.trace().flow_update_summaries();
    let mut flows: Vec<FlowRow> = summaries
        .values()
        .map(|s| {
            let last_old = s
                .last_old_path
                .map(|t| t.as_millis_f64() - start_ms)
                .unwrap_or(0.0);
            let update = s
                .first_new_path
                .map(|t| t.as_millis_f64() - start_ms)
                .unwrap_or(f64::NAN);
            FlowRow {
                flow: s.flow.raw(),
                last_old_ms: last_old,
                update_time_ms: update,
                broken_ms: s.broken_time().as_millis_f64(),
            }
        })
        .collect();
    flows.sort_by(|a, b| a.update_time_ms.partial_cmp(&b.update_time_ms).unwrap());
    let migrated = summaries.values().filter(|s| s.path_changed).count();
    let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
    let confirmed_mods = ctrl.confirmed_count();
    let controller_completion_ms = ctrl.completed_at().map(|t| t.as_millis_f64() - start_ms);
    let mean_update_ms = if flows.is_empty() {
        0.0
    } else {
        flows.iter().map(|f| f.update_time_ms).sum::<f64>() / flows.len() as f64
    };
    EndToEndResult {
        technique: technique.label(),
        flows,
        total_drops: sim.trace().dropped_packets(None),
        total_delivered: sim.trace().delivered_packets(None),
        migrated_flows: migrated,
        confirmed_mods,
        controller_completion_ms,
        mean_update_ms,
    }
}

/// One activation-delay sample (Figure 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivationSample {
    /// The rule's cookie.
    pub cookie: u64,
    /// Control-plane confirmation minus data-plane activation, in ms
    /// (negative = the acknowledgment lied).
    pub delay_ms: f64,
}

/// Runs the single-switch bulk-update experiment and returns the per-rule
/// delay between data-plane and control-plane activation (Figure 8).
pub fn run_activation_delay(
    technique: EndToEndTechnique,
    n_rules: usize,
    window: usize,
    packets_per_sec: u64,
    seed: u64,
) -> Vec<ActivationSample> {
    let mut sim = Simulator::new(seed);
    let scenario = BulkUpdateScenario {
        n_rules,
        packets_per_sec,
        traffic_stop: SimTime::from_secs(8),
        ..Default::default()
    };
    let net = scenario.build(&mut sim);
    let switches = [net.sw_a, net.sw_b, net.sw_c];
    let ack_mode = match technique {
        EndToEndTechnique::NoWait => AckMode::NoWait,
        _ => AckMode::RumAcks,
    };
    let rum = technique
        .rum_technique()
        .map(|t| RumBuilder::new(switches.len()).technique(t));
    let (_ctrl_id, _layer) = wire_control_plane(
        &mut sim,
        net.plan.clone(),
        &switches,
        &[1],
        rum,
        ack_mode,
        window,
    );
    sim.run_until(SimTime::from_secs(30));

    let first_cookie = BulkUpdateScenario::rule_cookie(0);
    let last_cookie = BulkUpdateScenario::rule_cookie(n_rules);
    sim.trace()
        .activation_delays()
        .into_iter()
        .filter(|d| d.cookie >= first_cookie && d.cookie < last_cookie)
        .map(|d| ActivationSample {
            cookie: d.cookie,
            delay_ms: d.delay_millis(),
        })
        .collect()
}

/// Result of a Table-1 cell: the usable (real) modification rate achieved
/// with sequential probing, and the barrier-baseline rate it is normalised to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateRateResult {
    /// Real modifications per second achieved with probing.
    pub probing_rate: f64,
    /// Modifications per second achieved by the barrier baseline.
    pub baseline_rate: f64,
}

impl UpdateRateResult {
    /// The normalised usable rate reported in Table 1.
    pub fn normalized(&self) -> f64 {
        if self.baseline_rate <= 0.0 {
            0.0
        } else {
            self.probing_rate / self.baseline_rate
        }
    }
}

fn bulk_completion_rate(
    technique: Option<TechniqueConfig>,
    n_rules: usize,
    window: usize,
    seed: u64,
) -> f64 {
    let mut sim = Simulator::new(seed);
    let scenario = BulkUpdateScenario {
        n_rules,
        packets_per_sec: 0,
        model: SwitchModel::hp5406zl(),
        ..Default::default()
    };
    let net = scenario.build(&mut sim);
    let switches = [net.sw_a, net.sw_b, net.sw_c];
    let rum = technique.map(|t| RumBuilder::new(switches.len()).technique(t));
    let (ctrl_id, _layer) = wire_control_plane(
        &mut sim,
        net.plan.clone(),
        &switches,
        &[1],
        rum,
        AckMode::RumAcks,
        window,
    );
    // Generously sized horizon: 4000 rules at ~50 rules/s worst case.
    sim.run_until(SimTime::from_secs(120));
    let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
    let completed = ctrl.completed_at().unwrap_or_else(|| {
        panic!(
            "update did not finish: {}/{}",
            ctrl.confirmed_count(),
            n_rules
        )
    });
    let duration = completed - UPDATE_START;
    n_rules as f64 / duration.as_secs_f64()
}

/// Runs one cell of Table 1: sequential probing with a probe-rule update
/// every `probe_every` real modifications and at most `window` unconfirmed
/// modifications, normalised to the barrier baseline at the same window.
pub fn run_update_rate(
    probe_every: usize,
    window: usize,
    n_rules: usize,
    seed: u64,
) -> UpdateRateResult {
    let probing_rate = bulk_completion_rate(
        Some(TechniqueConfig::SequentialProbing {
            batch_size: probe_every,
            probe_interval: std::time::Duration::from_millis(10),
        }),
        n_rules,
        window,
        seed,
    );
    let baseline_rate = bulk_completion_rate(
        Some(TechniqueConfig::BarrierBaseline),
        n_rules,
        window,
        seed + 1,
    );
    UpdateRateResult {
        probing_rate,
        baseline_rate,
    }
}

/// Result of the §5.1 barrier-layer overhead experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BarrierLayerResult {
    /// Total update time (ms) with the reliable barrier layer.
    pub with_barrier_layer_ms: f64,
    /// Total update time (ms) with fine-grained acks only (no barriers).
    pub probing_only_ms: f64,
}

impl BarrierLayerResult {
    /// Overhead factor of the barrier layer relative to plain probing.
    pub fn overhead_factor(&self) -> f64 {
        self.with_barrier_layer_ms / self.probing_only_ms
    }
}

/// Runs the §5.1 barrier-layer experiment: the controller relies on barriers
/// (one every `barrier_every` modifications); RUM holds barrier replies until
/// every covered modification is confirmed and — when the switch reorders —
/// buffers subsequent commands.
pub fn run_barrier_layer(
    barrier_every: usize,
    reordering_switch: bool,
    n_rules: usize,
    seed: u64,
) -> BarrierLayerResult {
    let run = |use_barriers: bool, seed: u64| -> f64 {
        let mut sim = Simulator::new(seed);
        let model = if reordering_switch {
            SwitchModel::reordering()
        } else {
            SwitchModel::hp5406zl()
        };
        let scenario = BulkUpdateScenario {
            n_rules,
            packets_per_sec: 0,
            model,
            ..Default::default()
        };
        let net = scenario.build(&mut sim);
        let switches = [net.sw_a, net.sw_b, net.sw_c];
        let technique = if reordering_switch {
            TechniqueConfig::default_general()
        } else {
            TechniqueConfig::default_sequential()
        };
        let (ack_mode, window, buffering, fine_acks) = if use_barriers {
            (
                AckMode::Barriers {
                    batch: barrier_every,
                },
                n_rules.max(1),
                reordering_switch,
                false,
            )
        } else {
            (AckMode::RumAcks, n_rules.max(1), false, true)
        };
        let builder = RumBuilder::new(switches.len())
            .technique(technique)
            .buffer_across_barriers(buffering)
            .fine_grained_acks(fine_acks);
        let (ctrl_id, _layer) = wire_control_plane(
            &mut sim,
            net.plan.clone(),
            &switches,
            &[1],
            Some(builder),
            ack_mode,
            window,
        );
        sim.run_until(SimTime::from_secs(180));
        let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
        let completed = ctrl.completed_at().unwrap_or_else(|| {
            panic!(
                "barrier-layer update did not finish: {}/{}",
                ctrl.confirmed_count(),
                n_rules
            )
        });
        (completed - UPDATE_START).as_millis_f64()
    };
    BarrierLayerResult {
        with_barrier_layer_ms: run(true, seed),
        probing_only_ms: run(false, seed + 17),
    }
}

// ---------------------------------------------------------------------
// §5.2 PacketIn / PacketOut microbenchmarks
// ---------------------------------------------------------------------

/// Results of the PacketIn/PacketOut microbenchmarks (§5.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PktIoResult {
    /// Sustained PacketOut rate (messages/s).
    pub packet_out_per_sec: f64,
    /// Sustained PacketIn rate (messages/s).
    pub packet_in_per_sec: f64,
    /// Rule modification rate with no other load (rules/s).
    pub mod_rate_alone: f64,
    /// Modification rate while PacketIns are processed, as a fraction of the
    /// unloaded rate.
    pub mod_rate_with_packet_ins: f64,
    /// Modification rate while PacketOuts are processed at a 5:1 ratio, as a
    /// fraction of the unloaded rate.
    pub mod_rate_with_packet_outs: f64,
}

/// A minimal controller used by the microbenchmarks: sends a scripted list of
/// messages at given times and records everything it gets back.
struct BlastController {
    script: Vec<(SimTime, NodeId, OfMessage)>,
    received: Vec<(SimTime, OfMessage)>,
}

impl BlastController {
    fn new(script: Vec<(SimTime, NodeId, OfMessage)>) -> Self {
        BlastController {
            script,
            received: Vec::new(),
        }
    }
    fn barrier_reply_times(&self) -> Vec<SimTime> {
        self.received
            .iter()
            .filter(|(_, m)| matches!(m, OfMessage::BarrierReply { .. }))
            .map(|(t, _)| *t)
            .collect()
    }
    fn packet_in_times(&self) -> Vec<SimTime> {
        self.received
            .iter()
            .filter(|(_, m)| matches!(m, OfMessage::PacketIn { .. }))
            .map(|(t, _)| *t)
            .collect()
    }
}

impl Node for BlastController {
    fn name(&self) -> String {
        "blast-controller".into()
    }
    fn start(&mut self, ctx: &mut Context<'_>) {
        for (t, to, msg) in self.script.drain(..) {
            ctx.send_control(to, msg, t);
        }
    }
    fn handle(&mut self, event: EventPayload, ctx: &mut Context<'_>) {
        if let EventPayload::Control { message, .. } = event {
            self.received.push((ctx.now(), message));
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn rate_from_times(times: &[SimTime]) -> f64 {
    if times.len() < 2 {
        return 0.0;
    }
    let first = times.iter().min().unwrap();
    let last = times.iter().max().unwrap();
    let span = (*last - *first).as_secs_f64();
    if span <= 0.0 {
        0.0
    } else {
        (times.len() - 1) as f64 / span
    }
}

fn flow_mod_msg(i: u32, out_port: u16) -> OfMessage {
    OfMessage::FlowMod {
        xid: i,
        body: FlowMod::add(
            OfMatch::ipv4_pair(
                Ipv4Addr::new(10, 2, (i >> 8) as u8, (i & 0xff) as u8),
                Ipv4Addr::new(10, 3, (i >> 8) as u8, (i & 0xff) as u8),
            ),
            100,
            vec![Action::output(out_port)],
        )
        .with_cookie(u64::from(i)),
    }
}

/// Measures how long a switch takes to process `n_mods` flow modifications
/// (control plane), optionally interleaved with other messages, using a
/// trailing barrier per modification to timestamp completion.
fn measure_mod_rate(n_mods: u32, extra: impl Fn(u32) -> Vec<OfMessage>, seed: u64) -> f64 {
    let mut sim = Simulator::new(seed);
    let sw_id = NodeId(1);
    let mut script: Vec<(SimTime, NodeId, OfMessage)> = Vec::new();
    for i in 0..n_mods {
        script.push((SimTime::from_millis(1), sw_id, flow_mod_msg(i, 2)));
        for msg in extra(i) {
            script.push((SimTime::from_millis(1), sw_id, msg));
        }
        script.push((
            SimTime::from_millis(1),
            sw_id,
            OfMessage::BarrierRequest { xid: 1_000_001 + i },
        ));
    }
    let ctrl_id = sim.add_node(BlastController::new(script));
    let mut sw = OpenFlowSwitch::new("dut", DatapathId::new(0xb), 4, SwitchModel::hp5406zl());
    sw.connect_controller(ctrl_id);
    sim.add_node(sw);
    sim.run_until(SimTime::from_secs(60));
    let ctrl = sim.node_ref::<BlastController>(ctrl_id).unwrap();
    let replies = ctrl.barrier_reply_times();
    rate_from_times(&replies)
}

/// Runs the §5.2 microbenchmarks on the HP-like switch model.
pub fn run_pktio_rates(seed: u64) -> PktIoResult {
    // --- PacketOut rate: blast PacketOuts, count arrivals at the host. ---
    let packet_out_per_sec = {
        let mut sim = Simulator::new(seed);
        let mut host = simnet::traffic::Host::new("sink");
        let header = simnet::traffic::flow_header(
            1,
            openflow::MacAddr::from_id(9),
            openflow::MacAddr::from_id(10),
        );
        host.expect_flow(&header, FlowId(1));
        let host_id = sim.add_node(host);
        let sw_id = NodeId(2);
        let n = 2_000u32;
        let script: Vec<(SimTime, NodeId, OfMessage)> = (0..n)
            .map(|i| {
                (
                    SimTime::from_millis(1),
                    sw_id,
                    OfMessage::PacketOut {
                        xid: i,
                        body: PacketOut::single_port(2, header.to_bytes()),
                    },
                )
            })
            .collect();
        let ctrl_id = sim.add_node(BlastController::new(script));
        let mut sw = OpenFlowSwitch::new("dut", DatapathId::new(0xb), 4, SwitchModel::hp5406zl());
        sw.connect_controller(ctrl_id);
        let added = sim.add_node(sw);
        assert_eq!(added, sw_id);
        sim.topology_mut()
            .add_link(sw_id, 2, host_id, 1, SimTime::from_micros(50));
        sim.run_until(SimTime::from_secs(10));
        let deliveries: Vec<SimTime> = sim
            .trace()
            .events()
            .iter()
            .filter_map(|e| match e {
                simnet::TraceEvent::PacketDelivered { time, .. } => Some(*time),
                _ => None,
            })
            .collect();
        rate_from_times(&deliveries)
    };

    // --- PacketIn rate: a send-to-controller rule + offered load. ---
    let packet_in_per_sec = {
        let mut sim = Simulator::new(seed + 1);
        let mut host = simnet::traffic::Host::new("src");
        let header = simnet::traffic::flow_header(
            2,
            openflow::MacAddr::from_id(9),
            openflow::MacAddr::from_id(10),
        );
        host.add_tx_flow(simnet::traffic::FlowSpec::constant_rate(
            FlowId(2),
            header,
            1,
            20_000,
            SimTime::ZERO,
            SimTime::from_secs(1),
        ));
        let host_id = sim.add_node(host);
        let ctrl_id_expected = NodeId(1);
        let ctrl_id = sim.add_node(BlastController::new(Vec::new()));
        assert_eq!(ctrl_id, ctrl_id_expected);
        let mut sw = OpenFlowSwitch::new("dut", DatapathId::new(0xb), 4, SwitchModel::hp5406zl());
        sw.preinstall(
            &FlowMod::add(OfMatch::wildcard_all(), 10, vec![Action::to_controller()])
                .with_cookie(1),
        );
        sw.connect_controller(ctrl_id);
        let sw_id = sim.add_node(sw);
        sim.topology_mut()
            .add_link(host_id, 1, sw_id, 1, SimTime::from_micros(50));
        sim.run_until(SimTime::from_secs(3));
        let ctrl = sim.node_ref::<BlastController>(ctrl_id).unwrap();
        rate_from_times(&ctrl.packet_in_times())
    };

    // --- Modification-rate interaction experiments. ---
    let mod_rate_alone = measure_mod_rate(300, |_| Vec::new(), seed + 2);
    let header = simnet::traffic::flow_header(
        3,
        openflow::MacAddr::from_id(9),
        openflow::MacAddr::from_id(10),
    );
    // One PacketOut per five modifications would be 0.2; the paper uses up to
    // a 5:1 PacketOut-to-modification ratio, i.e. five PacketOuts per mod.
    let mod_rate_with_packet_outs = measure_mod_rate(
        300,
        |i| {
            (0..5)
                .map(|k| OfMessage::PacketOut {
                    xid: 2_000_000 + i * 5 + k,
                    body: PacketOut::single_port(2, header.to_bytes()),
                })
                .collect()
        },
        seed + 3,
    ) / mod_rate_alone;
    // PacketIns are generated by the switch, not sent by the controller; the
    // interaction is exercised by echo requests of similar control-plane cost.
    let mod_rate_with_packet_ins = measure_mod_rate(
        300,
        |i| {
            vec![OfMessage::EchoRequest {
                xid: 3_000_000 + i,
                data: vec![0; 8],
            }]
        },
        seed + 4,
    ) / mod_rate_alone;

    PktIoResult {
        packet_out_per_sec,
        packet_in_per_sec,
        mod_rate_alone,
        mod_rate_with_packet_ins,
        mod_rate_with_packet_outs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barriers_baseline_breaks_flows_probing_does_not() {
        // Scaled-down Figure 1b: 30 flows instead of 300.
        let broken = run_end_to_end(EndToEndTechnique::Barriers, 30, 250, 1);
        assert_eq!(broken.flows.len(), 30);
        assert!(broken.total_drops > 0, "the baseline must drop packets");
        assert!(broken.max_broken_ms() > 50.0);

        let fixed = run_end_to_end(EndToEndTechnique::General, 30, 250, 1);
        assert_eq!(
            fixed.total_drops, 0,
            "general probing must not drop packets"
        );
        assert_eq!(fixed.migrated_flows, 30);
        assert!(
            fixed.max_broken_ms() <= 8.0,
            "max broken {}",
            fixed.max_broken_ms()
        );
    }

    #[test]
    fn timeout_is_safe_but_slower_than_no_wait() {
        let timeout = run_end_to_end(
            EndToEndTechnique::Timeout(SimTime::from_millis(300)),
            20,
            250,
            2,
        );
        assert_eq!(timeout.total_drops, 0);
        let nowait = run_end_to_end(EndToEndTechnique::NoWait, 20, 250, 2);
        assert!(
            timeout.mean_update_ms > nowait.mean_update_ms,
            "timeout ({}) must be slower than the no-wait lower bound ({})",
            timeout.mean_update_ms,
            nowait.mean_update_ms
        );
    }

    #[test]
    fn activation_delays_match_figure8_shape() {
        let barriers = run_activation_delay(EndToEndTechnique::Barriers, 30, 30, 0, 3);
        assert_eq!(barriers.len(), 30);
        let negative = barriers.iter().filter(|s| s.delay_ms < 0.0).count();
        assert!(
            negative > 15,
            "baseline should be mostly premature, got {negative}"
        );

        let general = run_activation_delay(EndToEndTechnique::General, 30, 30, 0, 3);
        assert_eq!(general.len(), 30);
        assert!(general.iter().all(|s| s.delay_ms >= 0.0));
    }

    #[test]
    fn update_rate_grows_with_batch_size() {
        let small_batch = run_update_rate(1, 20, 120, 4);
        let large_batch = run_update_rate(10, 20, 120, 4);
        assert!(small_batch.normalized() > 0.2);
        assert!(large_batch.normalized() <= 1.05);
        assert!(
            large_batch.normalized() > small_batch.normalized(),
            "probing after every mod ({:.2}) must cost more than batching ({:.2})",
            small_batch.normalized(),
            large_batch.normalized()
        );
    }

    #[test]
    fn pktio_rates_are_near_model_limits() {
        let r = run_pktio_rates(5);
        assert!(
            (r.packet_out_per_sec - 7006.0).abs() < 500.0,
            "{}",
            r.packet_out_per_sec
        );
        assert!(
            (r.packet_in_per_sec - 5531.0).abs() < 500.0,
            "{}",
            r.packet_in_per_sec
        );
        assert!(r.mod_rate_alone > 100.0);
        assert!(r.mod_rate_with_packet_ins > 0.9);
        assert!(r.mod_rate_with_packet_outs > 0.75 && r.mod_rate_with_packet_outs <= 1.0);
    }
}
