//! Experiment harness reproducing every table and figure of
//! *"Providing Reliable FIB Update Acknowledgments in SDN"* (CoNEXT 2014).
//!
//! Each experiment in the paper maps to one runner function here and one
//! binary under `src/bin/`; the Criterion benches under `benches/` re-run the
//! same code with reduced parameters so `cargo bench` stays fast.
//!
//! | Paper artefact | Runner | Binary |
//! |---|---|---|
//! | Figure 1b (broken time CDF)        | [`experiments::run_end_to_end`]        | `fig1_broken_time` |
//! | Figure 6 (control-plane techniques)| [`experiments::run_end_to_end`]        | `fig6_controlplane` |
//! | Figure 7 (probing techniques)      | [`experiments::run_end_to_end`]        | `fig7_probing` |
//! | Figure 8 (activation delay)        | [`experiments::run_activation_delay`]  | `fig8_activation_delay` |
//! | Table 1 (usable update rate)       | [`experiments::run_update_rate`]       | `table1_update_rate` |
//! | §5.1 barrier-layer overhead        | [`experiments::run_barrier_layer`]     | `barrier_layer_overhead` |
//! | §5.2 PacketIn/PacketOut rates      | [`experiments::run_pktio_rates`]       | `pktio_rates` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod observer;
pub mod report;
pub mod scale;
pub mod scenario_matrix;
pub mod session_soak;
pub mod throughput;
pub mod wire;

pub use experiments::{
    ActivationSample, EndToEndResult, EndToEndTechnique, PktIoResult, UpdateRateResult,
};
pub use report::{ExperimentRecord, SessionSoakRecord, ThroughputRecord};
pub use scenario_matrix::{MatrixCell, MatrixTechnique};
pub use session_soak::{SoakConfig, SoakOutcome};
pub use wire::WireConfig;
