//! Plain-text / CSV report formatting shared by the experiment binaries.

use crate::experiments::{ActivationSample, EndToEndResult, FlowRow};
use crate::scenario_matrix::{MatrixCell, ResyncVerdict};

/// Formats the per-flow rows of an end-to-end run as CSV
/// (`flow,last_old_ms,update_time_ms,broken_ms`).
pub fn end_to_end_csv(result: &EndToEndResult) -> String {
    let mut out = String::from("flow,last_old_ms,update_time_ms,broken_ms\n");
    for FlowRow {
        flow,
        last_old_ms,
        update_time_ms,
        broken_ms,
    } in &result.flows
    {
        out.push_str(&format!(
            "{flow},{last_old_ms:.3},{update_time_ms:.3},{broken_ms:.3}\n"
        ));
    }
    out
}

/// Formats the Figure 1b CDF: fraction of flows broken for longer than x ms.
pub fn broken_time_cdf(result: &EndToEndResult, max_ms: f64, step_ms: f64) -> String {
    let mut out = String::from("broken_ms,fraction_of_flows_broken_longer\n");
    let mut x = 0.0;
    while x <= max_ms + 1e-9 {
        out.push_str(&format!(
            "{x:.1},{:.4}\n",
            result.fraction_broken_longer_than(x)
        ));
        x += step_ms;
    }
    out
}

/// Formats a one-line summary of an end-to-end run.
pub fn end_to_end_summary(result: &EndToEndResult) -> String {
    format!(
        "{:<22} flows={:<4} migrated={:<4} drops={:<6} mean_update={:>8.1} ms  max_broken={:>7.1} ms  completion={}",
        result.technique,
        result.flows.len(),
        result.migrated_flows,
        result.total_drops,
        result.mean_update_ms,
        result.max_broken_ms(),
        result
            .controller_completion_ms
            .map(|v| format!("{v:.1} ms"))
            .unwrap_or_else(|| "incomplete".into()),
    )
}

/// Formats activation-delay samples as CSV ordered by delay (the "flow rank"
/// axis of Figure 8).
pub fn activation_csv(label: &str, samples: &[ActivationSample]) -> String {
    let mut sorted: Vec<f64> = samples.iter().map(|s| s.delay_ms).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut out = format!("# technique: {label}\nrank,delay_ms\n");
    for (rank, delay) in sorted.iter().enumerate() {
        out.push_str(&format!("{rank},{delay:.3}\n"));
    }
    out
}

/// One experiment's aggregate result, as persisted to `BENCH_results.json`
/// so the performance trajectory can be tracked across PRs.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRecord {
    /// Experiment name (e.g. `end_to_end/sequential`).
    pub experiment: String,
    /// Median update completion time across runs, in milliseconds.
    pub median_completion_ms: f64,
    /// 95th-percentile completion time across runs, in milliseconds.
    pub p95_completion_ms: f64,
    /// Modifications confirmed per run (the plan size when complete).
    pub confirms: u64,
    /// Number of runs aggregated.
    pub runs: usize,
}

impl ExperimentRecord {
    /// Aggregates per-run completion times (ms) into a record.
    pub fn from_runs(experiment: impl Into<String>, times_ms: &[f64], confirms: u64) -> Self {
        let finite: Vec<f64> = times_ms.iter().copied().filter(|t| t.is_finite()).collect();
        ExperimentRecord {
            experiment: experiment.into(),
            median_completion_ms: percentile(&finite, 0.5).unwrap_or(f64::NAN),
            p95_completion_ms: percentile(&finite, 0.95).unwrap_or(f64::NAN),
            confirms,
            runs: times_ms.len(),
        }
    }
}

/// One throughput experiment's aggregate result, persisted alongside the
/// latency records in `BENCH_results.json` (schema 2).
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputRecord {
    /// Experiment name (e.g. `flow_mod_install/indexed_100k`).
    pub experiment: String,
    /// Operations per run (flow-mods installed, messages coded, inputs
    /// drained).
    pub ops: u64,
    /// Median elapsed wall time across runs, in milliseconds.
    pub median_elapsed_ms: f64,
    /// Throughput derived from the median run.
    pub ops_per_sec: f64,
    /// Number of runs aggregated.
    pub runs: usize,
    /// Ops/sec of the linear-scan reference on the same workload, when the
    /// baseline was measured; the JSON row then carries a `speedup` field.
    pub baseline_ops_per_sec: Option<f64>,
    /// Slowdown relative to the uninstrumented variant of the same workload
    /// in percent, when one was measured (the `telemetry_overhead` rows,
    /// schema 5).  May be slightly negative: it is a difference of two
    /// noisy measurements.
    pub overhead_pct: Option<f64>,
}

impl ThroughputRecord {
    /// Aggregates per-run elapsed times (ms) for `ops` operations per run.
    pub fn from_runs(experiment: impl Into<String>, ops: u64, elapsed_ms: &[f64]) -> Self {
        let median = percentile(elapsed_ms, 0.5).unwrap_or(f64::NAN);
        ThroughputRecord {
            experiment: experiment.into(),
            ops,
            median_elapsed_ms: median,
            ops_per_sec: ops as f64 / (median / 1000.0),
            runs: elapsed_ms.len(),
            baseline_ops_per_sec: None,
            overhead_pct: None,
        }
    }

    /// Attaches the linear-scan baseline measured on the same workload.
    pub fn with_baseline(mut self, baseline_ops_per_sec: f64) -> Self {
        self.baseline_ops_per_sec = Some(baseline_ops_per_sec);
        self
    }

    /// Attaches the measured slowdown (percent) over the uninstrumented
    /// variant of the same workload.
    pub fn with_overhead(mut self, overhead_pct: f64) -> Self {
        self.overhead_pct = Some(overhead_pct);
        self
    }

    /// Speedup over the baseline, when one was measured.
    pub fn speedup(&self) -> Option<f64> {
        self.baseline_ops_per_sec
            .map(|base| self.ops_per_sec / base)
    }
}

/// One scenario-matrix cell as persisted to `BENCH_results.json` (schema 5;
/// resync fields since schema 7): the reliability measurement of one
/// (driver, fault model, technique) combination.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixRecord {
    /// `simnet` or `tcp`.
    pub driver: String,
    /// Fault-model name (e.g. `early_reply`, `silent_drop`).
    pub fault: String,
    /// Technique label (e.g. `barrier-only`, `rum-general`).
    pub technique: String,
    /// Monitored switches in the run's topology (schema 8): 3 for the
    /// classic bulk chain, 64/1,000 for the sharded scale rows.
    pub switches: u64,
    /// Rules in the plan.
    pub planned: u64,
    /// Rules confirmed by the horizon.
    pub confirmed: u64,
    /// Confirmations contradicted by the data-plane ground truth.
    pub false_acks: u64,
    /// Planned rules never confirmed.
    pub missed_acks: u64,
    /// `false_acks / planned`.
    pub false_ack_rate: f64,
    /// `missed_acks / planned`.
    pub missed_ack_rate: f64,
    /// Update completion time in ms, when the update completed.
    pub completion_ms: Option<f64>,
    /// False when the technique's soundness claim does not apply under this
    /// fault model (the cell was recorded with zero counts, not run).
    pub applicable: bool,
    /// Reconciliation verdict — present only on `restart_resync` cells
    /// (schema 7): did the declarative resync restore the wiped table?
    pub resync: Option<ResyncVerdict>,
}

impl From<&MatrixCell> for MatrixRecord {
    fn from(c: &MatrixCell) -> Self {
        MatrixRecord {
            driver: c.driver.to_string(),
            fault: c.fault.clone(),
            technique: c.technique.clone(),
            switches: c.switches as u64,
            planned: c.planned as u64,
            confirmed: c.confirmed as u64,
            false_acks: c.false_acks as u64,
            missed_acks: c.missed_acks as u64,
            false_ack_rate: c.false_ack_rate(),
            missed_ack_rate: c.missed_ack_rate(),
            completion_ms: c.completion_ms,
            applicable: c.applicable,
            resync: c.resync,
        }
    }
}

/// One session-soak run as persisted to `BENCH_results.json` (schema 6):
/// hundreds of concurrent tenant sessions multiplexed through `sessiond`
/// on one driver under one fault model, with ground-truth verdicts and
/// confirm-latency tail percentiles.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSoakRecord {
    /// `simnet` or `tcp`.
    pub driver: String,
    /// Fault-model name of the device under test (e.g. `early_reply`).
    pub fault: String,
    /// Monitored switches behind the proxy (schema 8): 3 for the classic
    /// chain, 1,000 for the sharded scale soak.
    pub switches: u64,
    /// Concurrently admitted tenant sessions.
    pub sessions: u64,
    /// Sessions that confirmed their whole plan inside the budget.
    pub completed: u64,
    /// Sessions aborted by their failure policy.
    pub aborted: u64,
    /// Modifications planned across all tenants.
    pub planned_mods: u64,
    /// Modifications confirmed across all tenants.
    pub confirmed_mods: u64,
    /// Confirmations contradicted by the data-plane ground truth.
    pub false_acks: u64,
    /// Planned modifications never confirmed inside the budget.
    pub missed_acks: u64,
    /// Acknowledgments the mux could not attribute to any tenant.
    pub stray_acks: u64,
    /// Median per-modification confirm latency (send → confirm), ms.
    pub p50_confirm_ms: f64,
    /// 99th-percentile confirm latency, ms.
    pub p99_confirm_ms: f64,
    /// 99.9th-percentile confirm latency, ms.
    pub p999_confirm_ms: f64,
    /// Span of the whole soak (submission → last confirmation), ms.
    pub wall_ms: f64,
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn json_num(v: f64) -> String {
    // JSON has no NaN/Infinity; represent missing data as null.
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".into()
    }
}

/// Renders the records as the `BENCH_results.json` document, schema 8
/// (handwritten JSON — the build environment has no serde):
///
/// ```json
/// {
///   "schema": 8,
///   "results": [
///     {"experiment": "...", "median_completion_ms": f, "p95_completion_ms": f,
///      "confirms": n, "runs": n}
///   ],
///   "throughput": [
///     {"experiment": "...", "ops": n, "median_elapsed_ms": f,
///      "ops_per_sec": f, "runs": n,
///      "baseline_ops_per_sec": f, "speedup": f,   // optional pair
///      "overhead_pct": f}                         // telemetry_overhead rows
///   ],
///   "scenario_matrix": [
///     {"experiment": "scenario_matrix/<driver>/<fault>/<technique>",
///      "driver": "...", "fault": "...", "technique": "...",
///      "switches": n,                                     // schema 8
///      "planned": n, "confirmed": n, "false_acks": n, "missed_acks": n,
///      "false_ack_rate": f, "missed_ack_rate": f, "completion_ms": f|null,
///      "applicable": true|false,
///      "resync_converged": b, "resync_rounds": n,        // restart_resync
///      "resync_final_diff": n, "resync_delta_mods": n,   // rows only
///      "resync_table_matches": b}                        // (schema 7)
///   ],
///   "session_soak": [
///     {"experiment": "session_soak/<driver>/<fault>",
///      "driver": "...", "fault": "...", "switches": n,    // schema 8
///      "sessions": n, "completed": n,
///      "aborted": n, "planned_mods": n, "confirmed_mods": n,
///      "false_acks": n, "missed_acks": n, "stray_acks": n,
///      "p50_confirm_ms": f, "p99_confirm_ms": f, "p999_confirm_ms": f,
///      "wall_ms": f}
///   ]
/// }
/// ```
pub fn results_json(
    records: &[ExperimentRecord],
    throughput: &[ThroughputRecord],
    matrix: &[MatrixRecord],
    soak: &[SessionSoakRecord],
) -> String {
    let mut out = String::from("{\n  \"schema\": 8,\n  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"experiment\": \"{}\", \"median_completion_ms\": {}, \
             \"p95_completion_ms\": {}, \"confirms\": {}, \"runs\": {}}}{}\n",
            json_escape(&r.experiment),
            json_num(r.median_completion_ms),
            json_num(r.p95_completion_ms),
            r.confirms,
            r.runs,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"throughput\": [\n");
    for (i, r) in throughput.iter().enumerate() {
        let mut row = format!(
            "    {{\"experiment\": \"{}\", \"ops\": {}, \"median_elapsed_ms\": {}, \
             \"ops_per_sec\": {}, \"runs\": {}",
            json_escape(&r.experiment),
            r.ops,
            json_num(r.median_elapsed_ms),
            json_num(r.ops_per_sec),
            r.runs,
        );
        if let (Some(base), Some(speedup)) = (r.baseline_ops_per_sec, r.speedup()) {
            row.push_str(&format!(
                ", \"baseline_ops_per_sec\": {}, \"speedup\": {}",
                json_num(base),
                json_num(speedup)
            ));
        }
        if let Some(overhead) = r.overhead_pct {
            row.push_str(&format!(", \"overhead_pct\": {}", json_num(overhead)));
        }
        row.push_str(&format!(
            "}}{}\n",
            if i + 1 < throughput.len() { "," } else { "" }
        ));
        out.push_str(&row);
    }
    out.push_str("  ],\n  \"scenario_matrix\": [\n");
    for (i, r) in matrix.iter().enumerate() {
        let completion = match r.completion_ms {
            Some(v) => json_num(v),
            None => "null".into(),
        };
        let mut row = format!(
            "    {{\"experiment\": \"scenario_matrix/{d}/{f}/{t}\", \"driver\": \"{d}\",              \"fault\": \"{f}\", \"technique\": \"{t}\", \"switches\": {},              \"planned\": {},              \"confirmed\": {}, \"false_acks\": {}, \"missed_acks\": {},              \"false_ack_rate\": {}, \"missed_ack_rate\": {}, \"completion_ms\": {},              \"applicable\": {}",
            r.switches,
            r.planned,
            r.confirmed,
            r.false_acks,
            r.missed_acks,
            json_num(r.false_ack_rate),
            json_num(r.missed_ack_rate),
            completion,
            r.applicable,
            d = json_escape(&r.driver),
            f = json_escape(&r.fault),
            t = json_escape(&r.technique),
        );
        if let Some(v) = &r.resync {
            row.push_str(&format!(
                ",              \"resync_converged\": {}, \"resync_rounds\": {},              \"resync_final_diff\": {}, \"resync_delta_mods\": {},              \"resync_table_matches\": {}",
                v.converged, v.rounds, v.final_diff, v.delta_mods, v.table_matches,
            ));
        }
        row.push_str(&format!(
            "}}{}\n",
            if i + 1 < matrix.len() { "," } else { "" }
        ));
        out.push_str(&row);
    }
    out.push_str("  ],\n  \"session_soak\": [\n");
    for (i, r) in soak.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"experiment\": \"session_soak/{d}/{f}\", \"driver\": \"{d}\",              \"fault\": \"{f}\", \"switches\": {}, \"sessions\": {}, \"completed\": {},              \"aborted\": {}, \"planned_mods\": {}, \"confirmed_mods\": {},              \"false_acks\": {}, \"missed_acks\": {}, \"stray_acks\": {},              \"p50_confirm_ms\": {}, \"p99_confirm_ms\": {},              \"p999_confirm_ms\": {}, \"wall_ms\": {}}}{}\n",
            r.switches,
            r.sessions,
            r.completed,
            r.aborted,
            r.planned_mods,
            r.confirmed_mods,
            r.false_acks,
            r.missed_acks,
            r.stray_acks,
            json_num(r.p50_confirm_ms),
            json_num(r.p99_confirm_ms),
            json_num(r.p999_confirm_ms),
            json_num(r.wall_ms),
            if i + 1 < soak.len() { "," } else { "" },
            d = json_escape(&r.driver),
            f = json_escape(&r.fault),
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes the records to `path` (conventionally `BENCH_results.json` in the
/// repository root).
pub fn write_results(
    path: &std::path::Path,
    records: &[ExperimentRecord],
    throughput: &[ThroughputRecord],
    matrix: &[MatrixRecord],
    soak: &[SessionSoakRecord],
) -> std::io::Result<()> {
    std::fs::write(path, results_json(records, throughput, matrix, soak))
}

/// Percentile (0.0..=1.0) of a list of samples; returns `None` when empty.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((sorted.len() - 1) as f64 * p.clamp(0.0, 1.0)).round() as usize;
    Some(sorted[idx])
}

/// Renders a Table-1-style grid: rows = probing frequency, columns = window.
pub fn table1_grid(probe_batches: &[usize], windows: &[usize], normalized: &[Vec<f64>]) -> String {
    let mut out = String::from("probing frequency      ");
    for k in windows {
        out.push_str(&format!("K = {k:<7}"));
    }
    out.push('\n');
    for (row, batch) in probe_batches.iter().enumerate() {
        out.push_str(&format!("after {batch:<3} update(s)    "));
        for value in normalized[row].iter().take(windows.len()) {
            out.push_str(&format!("{:>5.0}%    ", value * 100.0));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::EndToEndResult;

    fn sample_result() -> EndToEndResult {
        EndToEndResult {
            technique: "test".into(),
            flows: vec![
                FlowRow {
                    flow: 0,
                    last_old_ms: 10.0,
                    update_time_ms: 20.0,
                    broken_ms: 10.0,
                },
                FlowRow {
                    flow: 1,
                    last_old_ms: 15.0,
                    update_time_ms: 300.0,
                    broken_ms: 285.0,
                },
            ],
            total_drops: 42,
            total_delivered: 1000,
            migrated_flows: 2,
            confirmed_mods: 4,
            controller_completion_ms: Some(400.0),
            mean_update_ms: 160.0,
        }
    }

    #[test]
    fn csv_contains_every_flow() {
        let csv = end_to_end_csv(&sample_result());
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.lines().nth(1).unwrap().starts_with("0,"));
    }

    #[test]
    fn cdf_is_monotonically_non_increasing() {
        let cdf = broken_time_cdf(&sample_result(), 300.0, 50.0);
        let values: Vec<f64> = cdf
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        assert!(values.windows(2).all(|w| w[0] >= w[1]));
        assert!(
            (values[0] - 1.0).abs() < 1e-9,
            "all flows broken longer than 0 ms"
        );
    }

    #[test]
    fn summary_mentions_drops_and_technique() {
        let s = end_to_end_summary(&sample_result());
        assert!(s.contains("test"));
        assert!(s.contains("drops=42"));
    }

    #[test]
    fn activation_csv_is_sorted() {
        let samples = vec![
            ActivationSample {
                cookie: 1,
                delay_ms: 5.0,
            },
            ActivationSample {
                cookie: 2,
                delay_ms: -200.0,
            },
        ];
        let csv = activation_csv("barriers", &samples);
        let first_value: f64 = csv
            .lines()
            .nth(2)
            .unwrap()
            .split(',')
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        assert!(first_value < 0.0);
    }

    #[test]
    fn results_json_is_well_formed() {
        let records = vec![
            ExperimentRecord::from_runs("end_to_end/barriers \"x\"", &[3.0, 1.0, 2.0], 80),
            ExperimentRecord::from_runs("empty", &[], 0),
        ];
        let throughput = vec![
            ThroughputRecord::from_runs("flow_mod_install/indexed_1k", 1000, &[2.0, 4.0, 3.0])
                .with_baseline(1000.0),
            ThroughputRecord::from_runs("codec/encode", 64, &[1.0]),
            ThroughputRecord::from_runs("telemetry_overhead/indexed_1k", 1000, &[3.1])
                .with_overhead(1.25),
        ];
        let matrix = vec![
            MatrixRecord {
                driver: "simnet".into(),
                fault: "early_reply".into(),
                technique: "barrier-only".into(),
                switches: 3,
                planned: 10,
                confirmed: 10,
                false_acks: 9,
                missed_acks: 0,
                false_ack_rate: 0.9,
                missed_ack_rate: 0.0,
                completion_ms: Some(812.5),
                applicable: true,
                resync: None,
            },
            MatrixRecord {
                driver: "tcp".into(),
                fault: "silent_drop".into(),
                technique: "rum-general".into(),
                switches: 1000,
                planned: 10,
                confirmed: 7,
                false_acks: 0,
                missed_acks: 3,
                false_ack_rate: 0.0,
                missed_ack_rate: 0.3,
                completion_ms: None,
                applicable: true,
                resync: None,
            },
            MatrixRecord {
                driver: "simnet".into(),
                fault: "restart_resync".into(),
                technique: "barrier-only".into(),
                switches: 3,
                planned: 10,
                confirmed: 10,
                false_acks: 4,
                missed_acks: 0,
                false_ack_rate: 0.4,
                missed_ack_rate: 0.0,
                completion_ms: Some(900.0),
                applicable: true,
                resync: Some(ResyncVerdict {
                    converged: true,
                    rounds: 2,
                    final_diff: 0,
                    delta_mods: 4,
                    table_matches: true,
                }),
            },
        ];
        let soak = vec![
            SessionSoakRecord {
                driver: "simnet".into(),
                fault: "early_reply".into(),
                switches: 3,
                sessions: 200,
                completed: 200,
                aborted: 0,
                planned_mods: 600,
                confirmed_mods: 600,
                false_acks: 0,
                missed_acks: 0,
                stray_acks: 0,
                p50_confirm_ms: 120.5,
                p99_confirm_ms: 410.25,
                p999_confirm_ms: 523.0,
                wall_ms: 9000.0,
            },
            SessionSoakRecord {
                driver: "tcp".into(),
                fault: "early_reply".into(),
                switches: 1000,
                sessions: 200,
                completed: 199,
                aborted: 0,
                planned_mods: 600,
                confirmed_mods: 597,
                false_acks: 0,
                missed_acks: 3,
                stray_acks: 0,
                p50_confirm_ms: 30.0,
                p99_confirm_ms: 95.0,
                p999_confirm_ms: f64::NAN,
                wall_ms: 4000.0,
            },
        ];
        let json = results_json(&records, &throughput, &matrix, &soak);
        assert!(json.contains("\"schema\": 8"));
        assert!(
            json.contains("\"switches\": 1000"),
            "schema 8 rows carry the fleet size"
        );
        assert!(json.contains("\"median_completion_ms\": 2.000"));
        assert!(json.contains("\\\"x\\\""), "quotes must be escaped");
        assert!(json.contains("\"median_completion_ms\": null"));
        assert!(json.contains("\"confirms\": 80"));
        assert!(json.contains("\"runs\": 3"));
        // 1000 ops over a 3 ms median = ~333,333 ops/sec, 333x the baseline.
        assert!(json.contains("\"ops\": 1000"));
        assert!(json.contains("\"median_elapsed_ms\": 3.000"));
        assert!(json.contains("\"ops_per_sec\": 333333.333"));
        assert!(json.contains("\"baseline_ops_per_sec\": 1000.000"));
        assert!(json.contains("\"speedup\": 333.333"));
        // The record without a baseline omits the speedup fields.
        let codec_row = json.lines().find(|l| l.contains("codec/encode")).unwrap();
        assert!(!codec_row.contains("speedup"));
        assert!(!codec_row.contains("overhead_pct"));
        // The overhead row carries its measured slowdown.
        let overhead_row = json
            .lines()
            .find(|l| l.contains("telemetry_overhead/"))
            .unwrap();
        assert!(overhead_row.contains("\"overhead_pct\": 1.250"));
        assert!(!overhead_row.contains("speedup"));
        // The matrix section carries rates, counts and the composed name.
        assert!(json.contains("scenario_matrix/simnet/early_reply/barrier-only"));
        assert!(json.contains("\"false_ack_rate\": 0.900"));
        assert!(json.contains("\"missed_ack_rate\": 0.300"));
        assert!(json.contains("\"completion_ms\": 812.500"));
        assert!(json.contains("\"completion_ms\": null"));
        assert!(json.contains("\"applicable\": true"));
        // Resync fields appear only on the restart_resync row (schema 7).
        let resync_row = json.lines().find(|l| l.contains("restart_resync")).unwrap();
        assert!(resync_row.contains("\"resync_converged\": true"));
        assert!(resync_row.contains("\"resync_rounds\": 2"));
        assert!(resync_row.contains("\"resync_final_diff\": 0"));
        assert!(resync_row.contains("\"resync_delta_mods\": 4"));
        assert!(resync_row.contains("\"resync_table_matches\": true"));
        let plain_row = json.lines().find(|l| l.contains("early_reply/")).unwrap();
        assert!(!plain_row.contains("resync_"));
        // The soak section carries the composed name, the verdicts and the
        // tail percentiles (NaN serialises as null).
        assert!(json.contains("session_soak/simnet/early_reply"));
        assert!(json.contains("\"sessions\": 200"));
        assert!(json.contains("\"p999_confirm_ms\": 523.000"));
        assert!(json.contains("\"p999_confirm_ms\": null"));
        assert!(json.contains("\"stray_acks\": 0"));
        // One trailing comma-less record per section.
        assert_eq!(json.matches("},\n").count(), 6);
    }

    #[test]
    fn throughput_record_math() {
        let r = ThroughputRecord::from_runs("x", 500, &[5.0]);
        assert_eq!(r.median_elapsed_ms, 5.0);
        assert_eq!(r.ops_per_sec, 100_000.0);
        assert_eq!(r.speedup(), None);
        assert_eq!(r.overhead_pct, None);
        assert_eq!(r.clone().with_overhead(1.5).overhead_pct, Some(1.5));
        assert_eq!(r.with_baseline(10_000.0).speedup(), Some(10.0));
    }

    #[test]
    fn percentile_bounds() {
        let v = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 1.0), Some(4.0));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn table_grid_has_all_cells() {
        let grid = table1_grid(&[1, 10], &[20, 100], &[vec![0.51, 0.51], vec![0.76, 0.94]]);
        assert!(grid.contains("after 1"));
        assert!(grid.contains("after 10"));
        assert!(grid.contains("94%"));
    }
}
