//! End-to-end wire throughput: flow-mods per second through a real TCP
//! proxy, switch replies included.
//!
//! The micro throughput rows (`crate::throughput`) measure the sans-IO
//! engine alone; this module measures the **whole wire path** — controller
//! socket in, engine, switch socket out, barrier replies back — and runs it
//! twice with the identical barrier-baseline engine configuration:
//!
//! * **sharded**: the readiness-driven event-loop proxy
//!   ([`rum_tcp::RumTcpProxy`]) with 8 engine shards, and
//! * **legacy**: the pre-shard thread-per-connection proxy
//!   ([`rum_tcp::LegacyRumTcpProxy`]) whose single engine serialises every
//!   connection behind one lock.
//!
//! The legacy run becomes the row's `baseline_ops_per_sec`, so the
//! persisted `wire_e2e/*` record carries the sharding speedup and
//! `validate_results` can gate on it (schema 8).

use crate::report::ThroughputRecord;
use openflow::messages::FlowMod;
use openflow::{Action, OfCodec, OfMatch, OfMessage};
use rum::{RumBuilder, TechniqueConfig};
use rum_tcp::{LegacyRumTcpProxy, ProxyConfig, RumTcpProxy};
use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Engine shards of the sharded flavour (matches `crate::scale`).
const WIRE_SHARDS: usize = 8;

/// Xid base of the blast barriers — clear of the proxy's internal xid
/// ranges (probe catches live at `0xF000_0000`, proxy-origin barriers at
/// `PROXY_XID_BASE`), so every barrier round-trips as controller-origin.
const BLAST_BARRIER_XID: u32 = 0x4000_0000;

/// Shape of one wire-throughput run.
#[derive(Debug, Clone, Copy)]
pub struct WireConfig {
    /// Attached switch connections (one blast thread per switch).
    pub switches: usize,
    /// Flow-mods blasted per switch.
    pub mods_per_switch: usize,
    /// A barrier request is interleaved every this many flow-mods (plus one
    /// final barrier that ends the run).
    pub barrier_every: usize,
}

impl WireConfig {
    /// The committed-results shape: the headline 1,000-switch fleet.  At
    /// this connection count the pre-shard baseline runs ~4,000 threads,
    /// so the measured speedup is the honest thread-collapse win of the
    /// reactor (it *grows* with fleet size: ~1x at 64 switches, ~1.4x
    /// median-of-3 here on a single-core host; multi-core hosts add
    /// parallel shard drains on top).
    pub fn full() -> Self {
        WireConfig {
            switches: 1_000,
            mods_per_switch: 500,
            barrier_every: 50,
        }
    }

    /// The CI smoke shape: small enough for a shared one-core runner.
    pub fn smoke() -> Self {
        WireConfig {
            switches: 8,
            mods_per_switch: 250,
            barrier_every: 25,
        }
    }

    /// Total flow-mods pushed through the proxy in one run.
    pub fn ops(&self) -> u64 {
        (self.switches * self.mods_per_switch) as u64
    }
}

/// A minimal in-process switch: answers every barrier and echo instantly,
/// swallows flow-mods, exits on EOF.  Mirrors the fake switch of the proxy
/// unit tests, with a longer read timeout so a fully loaded blast cannot
/// starve it out early.
fn spawn_fake_switch(proxy_addr: SocketAddr) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let mut stream = TcpStream::connect(proxy_addr).expect("connect to proxy");
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut codec = OfCodec::new();
        let mut buf = [0u8; 64 * 1024];
        let mut replies = Vec::new();
        loop {
            let n = match stream.read(&mut buf) {
                Ok(0) | Err(_) => return,
                Ok(n) => n,
            };
            codec.feed(&buf[..n]);
            replies.clear();
            while let Ok(Some(msg)) = codec.next_message() {
                let reply = match msg {
                    OfMessage::BarrierRequest { xid } => Some(OfMessage::BarrierReply { xid }),
                    OfMessage::EchoRequest { xid, data } => {
                        Some(OfMessage::EchoReply { xid, data })
                    }
                    OfMessage::Hello { xid } => Some(OfMessage::Hello { xid }),
                    _ => None,
                };
                if let Some(r) = reply {
                    r.encode_into(&mut replies).expect("encodable reply");
                }
            }
            if !replies.is_empty() && stream.write_all(&replies).is_err() {
                return;
            }
        }
    })
}

/// Pre-encodes one switch's blast: hello, `mods_per_switch` flow-mods in a
/// per-switch `10.x.y.z` match space with a barrier every `barrier_every`
/// mods, and the final barrier whose xid the blaster waits for.
fn encode_blast(cfg: &WireConfig, sw: usize) -> (Vec<u8>, u32) {
    let mut wire = Vec::with_capacity(cfg.mods_per_switch * 96);
    OfMessage::Hello { xid: 1 }
        .encode_into(&mut wire)
        .expect("encodable hello");
    let mut barrier_xid = BLAST_BARRIER_XID;
    for k in 0..cfg.mods_per_switch {
        OfMessage::FlowMod {
            xid: 2 + k as u32,
            body: FlowMod::add(
                OfMatch::ipv4_pair(
                    Ipv4Addr::new(10, (k >> 8) as u8, (k & 0xff) as u8, 1),
                    Ipv4Addr::new(10, 200, 0, 1),
                ),
                100,
                vec![Action::output(1)],
            )
            .with_cookie(((sw as u64) << 32) | (k as u64 + 1)),
        }
        .encode_into(&mut wire)
        .expect("encodable flow-mod");
        if (k + 1) % cfg.barrier_every == 0 {
            barrier_xid += 1;
            OfMessage::BarrierRequest { xid: barrier_xid }
                .encode_into(&mut wire)
                .expect("encodable barrier");
        }
    }
    let final_xid = barrier_xid + 1;
    OfMessage::BarrierRequest { xid: final_xid }
        .encode_into(&mut wire)
        .expect("encodable barrier");
    (wire, final_xid)
}

/// Writes one switch's blast down its controller-side connection and reads
/// until the final barrier reply comes back.
fn blast_one(mut stream: TcpStream, wire: Vec<u8>, final_xid: u32) {
    stream.write_all(&wire).expect("blast writes");
    let mut codec = OfCodec::new();
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => panic!("proxy closed before the final barrier reply"),
            Err(e) => panic!("blast read failed: {e}"),
            Ok(n) => n,
        };
        codec.feed(&buf[..n]);
        while let Ok(Some(msg)) = codec.next_message() {
            if matches!(msg, OfMessage::BarrierReply { xid } if xid == final_xid) {
                return;
            }
        }
    }
}

/// The flavour under measurement.
enum Flavour {
    Sharded,
    Legacy,
}

/// One full wire run: start the flavour's proxy, attach `switches` fake
/// switches (slot `i` paired with accepted controller connection `i`),
/// then blast every connection concurrently and stop the clock when the
/// last final barrier reply lands.  Returns elapsed milliseconds of the
/// blast phase only — attach cost is setup, not throughput.
fn run_flavour(cfg: &WireConfig, flavour: Flavour) -> f64 {
    let controller_listener = TcpListener::bind("127.0.0.1:0").expect("controller bind");
    let controller_addr = controller_listener.local_addr().unwrap();

    let builder = RumBuilder::new(cfg.switches)
        .shards(match flavour {
            Flavour::Sharded => WIRE_SHARDS,
            Flavour::Legacy => 1,
        })
        .technique(TechniqueConfig::BarrierBaseline)
        .fine_grained_acks(false);
    let proxy_config = ProxyConfig {
        listen_addr: "127.0.0.1:0".parse().unwrap(),
        controller_addr,
    };
    // Both flavours expose the same three calls we need; a tiny closure trio
    // erases the concrete handle type.
    let (proxy_addr, shutdown): (SocketAddr, Box<dyn FnOnce()>) = match flavour {
        Flavour::Sharded => {
            let h = RumTcpProxy::new(proxy_config, builder)
                .start()
                .expect("sharded proxy starts");
            (h.local_addr, Box::new(move || h.shutdown()))
        }
        Flavour::Legacy => {
            let h = LegacyRumTcpProxy::new(proxy_config, builder)
                .start()
                .expect("legacy proxy starts");
            (h.local_addr, Box::new(move || h.shutdown()))
        }
    };

    // Attach sequentially so controller connection `i` belongs to switch `i`.
    let mut switches = Vec::with_capacity(cfg.switches);
    let mut ctrl_streams = Vec::with_capacity(cfg.switches);
    for _ in 0..cfg.switches {
        switches.push(spawn_fake_switch(proxy_addr));
        let (ctrl, _) = controller_listener.accept().expect("proxy dialled us");
        ctrl.set_nodelay(true).ok();
        ctrl.set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        ctrl_streams.push(ctrl);
    }

    let blasts: Vec<(Vec<u8>, u32)> = (0..cfg.switches).map(|sw| encode_blast(cfg, sw)).collect();
    let started = Instant::now();
    let blasters: Vec<JoinHandle<()>> = ctrl_streams
        .into_iter()
        .zip(blasts)
        .map(|(stream, (wire, final_xid))| {
            std::thread::spawn(move || blast_one(stream, wire, final_xid))
        })
        .collect();
    for b in blasters {
        b.join().expect("blast completes");
    }
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;

    shutdown();
    for s in switches {
        let _ = s.join();
    }
    elapsed_ms
}

/// Interleaved repetitions per flavour: a single 1,000-connection blast on
/// a shared box is scheduler roulette (observed spread of a single shot is
/// several-fold in either direction), so each flavour is measured
/// [`WIRE_RUNS`] times with the flavours alternating — drift in machine
/// load lands on both sides of the ratio — and the medians are compared.
const WIRE_RUNS: usize = 3;

/// Runs the legacy baseline and the sharded flavour interleaved,
/// `WIRE_RUNS` times each, and returns the schema-8 `wire_e2e/*` record:
/// median sharded throughput with the median legacy run as
/// `baseline_ops_per_sec`, so `speedup()` is the sharding win on this very
/// machine.
pub fn run_wire_throughput(cfg: &WireConfig) -> ThroughputRecord {
    let ops = cfg.ops();
    let mut legacy = Vec::with_capacity(WIRE_RUNS);
    let mut sharded = Vec::with_capacity(WIRE_RUNS);
    for _ in 0..WIRE_RUNS {
        legacy.push(run_flavour(cfg, Flavour::Legacy));
        sharded.push(run_flavour(cfg, Flavour::Sharded));
    }
    legacy.sort_by(f64::total_cmp);
    let legacy_ms = legacy[legacy.len() / 2];
    let legacy_ops_per_sec = ops as f64 / (legacy_ms / 1e3);
    ThroughputRecord::from_runs(
        format!("wire_e2e/flow_mods_{}sw", cfg.switches),
        ops,
        &sharded,
    )
    .with_baseline(legacy_ops_per_sec)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The blast encoding carries exactly the planned flow-mods and ends on
    /// the final barrier whose xid the blaster waits for.
    #[test]
    fn blast_encoding_round_trips() {
        let cfg = WireConfig {
            switches: 2,
            mods_per_switch: 7,
            barrier_every: 3,
        };
        let (wire, final_xid) = encode_blast(&cfg, 1);
        // 7 mods / barrier every 3 → two interleaved barriers + the final.
        assert_eq!(final_xid, BLAST_BARRIER_XID + 3);
        let mut codec = OfCodec::new();
        codec.feed(&wire);
        let mut mods = 0;
        let mut barriers = 0;
        let mut last = None;
        while let Ok(Some(msg)) = codec.next_message() {
            match msg {
                OfMessage::FlowMod { body, .. } => {
                    assert_eq!(body.cookie >> 32, 1, "cookie carries the switch");
                    mods += 1;
                }
                OfMessage::BarrierRequest { xid } => {
                    barriers += 1;
                    last = Some(xid);
                }
                OfMessage::Hello { .. } => {}
                other => panic!("unexpected message in blast: {other:?}"),
            }
        }
        assert_eq!(mods, 7);
        assert_eq!(barriers, 3);
        assert_eq!(last, Some(final_xid));
    }

    /// Manual knob for sizing the committed run: `WIRE_SW`/`WIRE_MODS`
    /// environment variables pick the shape; run with `--ignored
    /// --nocapture` in release to see the measured speedup.
    #[test]
    #[ignore]
    fn wire_throughput_exploration() {
        let cfg = WireConfig {
            switches: std::env::var("WIRE_SW")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64),
            mods_per_switch: std::env::var("WIRE_MODS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(2_000),
            barrier_every: 50,
        };
        let record = run_wire_throughput(&cfg);
        println!(
            "{} ops {} sharded {:.0}/s baseline {:.0}/s speedup {:.2}x",
            record.experiment,
            record.ops,
            record.ops_per_sec,
            record.baseline_ops_per_sec.unwrap_or(f64::NAN),
            record.speedup().unwrap_or(f64::NAN)
        );
    }

    /// Both flavours complete a small blast end-to-end and the record
    /// carries a comparable baseline: this is the correctness gate — the
    /// committed speedup floor is enforced by `validate_results` on the
    /// full-size run, not here.
    #[test]
    fn wire_throughput_measures_both_flavours() {
        let cfg = WireConfig {
            switches: 4,
            mods_per_switch: 60,
            barrier_every: 20,
        };
        let record = run_wire_throughput(&cfg);
        assert_eq!(record.experiment, "wire_e2e/flow_mods_4sw");
        assert_eq!(record.ops, 240);
        assert!(record.ops_per_sec.is_finite() && record.ops_per_sec > 0.0);
        let base = record.baseline_ops_per_sec.expect("baseline attached");
        assert!(base.is_finite() && base > 0.0);
        assert!(record.speedup().is_some());
    }
}
