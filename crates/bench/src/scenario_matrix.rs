//! The technique × fault scenario matrix — the paper's reliability
//! evaluation, driven by ground truth.
//!
//! For every acknowledgment technique (the barrier-only baseline plus the
//! five RUM techniques) and every fault model (the adversaries of
//! `ofswitch::FaultPlan`), a run installs a bulk of rules at a misbehaving
//! device under test and classifies **every confirmation** against the
//! behaviour engine's data-plane timeline:
//!
//! * a **false acknowledgment** — the controller was told a rule was in
//!   effect while the data plane disagreed (the paper's headline failure);
//! * a **missed acknowledgment** — a planned rule the controller never got
//!   a confirmation for within the horizon (a stalled or honest-but-
//!   incomplete update).
//!
//! The same matrix runs on **both drivers** of the shared behaviour engine:
//! the deterministic simulator (`simnet`) and the real-socket prototype
//! (`rum-tcp`, with the in-process data-plane [`Fabric`] carrying probe
//! packets between switch hosts).  Because fault decisions are pure hashes
//! of `(seed, cookie)`, the adversary is identical on both drivers.

use controller::scenarios::BulkUpdateScenario;
use controller::{
    AckMode, BackoffPolicy, Controller, DesiredStore, FailurePolicy, ResyncConfig, ResyncStatus,
    UpdateSession,
};
use ofswitch::{BarrierMode, FaultPlan, FlowEntry, GroundTruth, SwitchModel};
use rum::{deploy, RumBuilder, SwitchId, SwitchPortMap, TechniqueConfig};
use rum_tcp::{
    spawn_switch_with, Fabric, ProxyConfig, RumTcpProxy, SwitchHostOptions, TcpUpdateController,
};
use simnet::{OpenFlowSwitch, SimTime, Simulator};
use std::collections::HashMap;
use std::time::{Duration, Instant};
use telemetry::Registry;

/// One acknowledgment strategy of the matrix.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixTechnique {
    /// No RUM at all: the controller trusts the switch's own barrier
    /// replies (one barrier per modification) — the baseline every
    /// consistent-update system in the literature uses.
    BarrierOnly,
    /// RUM interposed, running the given technique, with fine-grained acks.
    Rum(TechniqueConfig),
}

impl MatrixTechnique {
    /// Short label used in reports.
    pub fn label(&self) -> String {
        match self {
            MatrixTechnique::BarrierOnly => "barrier-only".into(),
            MatrixTechnique::Rum(t) => format!("rum-{}", t.label()),
        }
    }

    /// True for the data-plane probing techniques (the ones the paper
    /// claims never acknowledge falsely).
    pub fn is_probing(&self) -> bool {
        matches!(self, MatrixTechnique::Rum(t) if t.is_probing())
    }

    /// The full sweep: barrier-only baseline + all five RUM techniques,
    /// parameterised for the given switch model (timeout/adaptive assume
    /// the model's nominal worst-case lag, like an operator would).
    pub fn all(model: &SwitchModel) -> Vec<MatrixTechnique> {
        let lag = model.worst_case_dataplane_lag();
        vec![
            MatrixTechnique::BarrierOnly,
            MatrixTechnique::Rum(TechniqueConfig::BarrierBaseline),
            MatrixTechnique::Rum(TechniqueConfig::StaticTimeout {
                delay: lag + lag / 4,
            }),
            MatrixTechnique::Rum(TechniqueConfig::AdaptiveDelay {
                assumed_rate: model.mod_rate(0),
                assumed_sync_lag: lag,
            }),
            MatrixTechnique::Rum(TechniqueConfig::SequentialProbing {
                batch_size: 3,
                probe_interval: Duration::from_millis(10),
            }),
            MatrixTechnique::Rum(TechniqueConfig::GeneralProbing {
                probe_interval: Duration::from_millis(10),
                max_outstanding: 30,
                fallback_delay: lag + lag / 4,
            }),
        ]
    }
}

/// One adversary of the matrix: a behaviour model plus a fault plan.
#[derive(Debug, Clone)]
pub struct FaultModel {
    /// Short name used in reports.
    pub name: &'static str,
    /// The timing model of the device under test.
    pub model: SwitchModel,
    /// The fault plan layered on top.
    pub faults: FaultPlan,
}

/// After how many accepted modifications the restart column's switch
/// reboots: the middle of the plan, so both sides of the wipe are
/// represented (confirmed-then-wiped rules and never-delivered ones).
pub fn restart_after_mods(n_rules: usize) -> u64 {
    (n_rules as u64).div_ceil(2).max(1)
}

/// How long a restarted device under test stays down before reattaching.
///
/// Two full worst-case data-plane lags: comfortably longer than any
/// in-flight confirmation timer of the delay heuristics, so every
/// pre-restart timer has fired (and lied) before the re-issue happens —
/// which keeps the restart column's verdicts a pure function of the seed on
/// both drivers instead of a race between wall clocks.
pub fn restart_reconnect_delay(model: &SwitchModel) -> Duration {
    model.worst_case_dataplane_lag() * 2
}

/// The fault models of the sweep, built over `base` (the buggy early-reply
/// model of the target driver — `hp5406zl` for the simulator, `fast_buggy`
/// for wall-clock TCP runs).  The first four preserve modification order
/// and leave the channel up; `restart` reboots the switch mid-plan (tables
/// wiped, channel dropped, reconnect after [`restart_reconnect_delay`]);
/// `early_reply_reordering` additionally lets modifications overtake each
/// other across barriers — the adversary outside sequential probing's
/// soundness domain (paper §3.2.1), which the matrix records through
/// [`technique_applicable`].
pub fn fault_models(base: &SwitchModel, seed: u64, n_rules: usize) -> Vec<FaultModel> {
    let lag = base.worst_case_dataplane_lag();
    vec![
        FaultModel {
            name: "early_reply",
            model: base.clone(),
            faults: FaultPlan::seeded(seed),
        },
        FaultModel {
            name: "silent_drop",
            model: base.clone(),
            faults: FaultPlan::seeded(seed).with_silent_drops(3),
        },
        FaultModel {
            name: "sync_burst",
            model: base.clone(),
            // Every synchronisation delayed well past the nominal worst
            // case: the adversary the delay heuristics cannot survive.
            faults: FaultPlan::seeded(seed).with_sync_bursts(1, lag * 2),
        },
        FaultModel {
            name: "ack_lossdup",
            model: base.clone(),
            faults: FaultPlan::seeded(seed)
                .with_ack_loss(5)
                .with_ack_duplication(5),
        },
        FaultModel {
            name: "restart",
            model: base.clone(),
            faults: FaultPlan::seeded(seed).with_restart_after(restart_after_mods(n_rules)),
        },
        FaultModel {
            // The same mid-plan reboot, but with the controller's
            // reconciliation subsystem enabled: after the main session
            // settles, the reconciler reads the flow table back, re-issues
            // the wiped delta and re-reads until the table equals the
            // desired store.  The cell's verdict gains a [`ResyncVerdict`].
            name: "restart_resync",
            model: base.clone(),
            faults: FaultPlan::seeded(seed).with_restart_after(restart_after_mods(n_rules)),
        },
        FaultModel {
            name: "early_reply_reordering",
            model: SwitchModel {
                barrier_mode: BarrierMode::EarlyReplyReordering,
                ..base.clone()
            },
            faults: FaultPlan::seeded(seed),
        },
    ]
}

/// Whether a technique's soundness claim even applies under a fault model.
///
/// Sequential probing's argument — "the probe rule installed after a batch
/// vouches for the whole batch" — requires the switch to preserve
/// modification order; the reordering adversary violates that precondition
/// by design (paper §3.2.1), so its cell is recorded as not applicable
/// rather than run: the grid then *shows* where the technique's soundness
/// boundary lies.  (General probing confirms every rule individually and
/// stays in scope everywhere.)
pub fn technique_applicable(technique: &MatrixTechnique, fault: &FaultModel) -> bool {
    let sequential = matches!(
        technique,
        MatrixTechnique::Rum(TechniqueConfig::SequentialProbing { .. })
    );
    !sequential || fault.model.barrier_mode.preserves_order()
}

/// Outcome of the reconciliation loop in a `restart_resync` cell: did the
/// reconciler converge, how fast, and — judged against the device under
/// test's final flow table, not the reconciler's own claim — does the table
/// really equal the desired store afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResyncVerdict {
    /// A readback showed zero difference within the round budget.
    pub converged: bool,
    /// Readback rounds used.
    pub rounds: u32,
    /// Entries still differing at the last readback (0 when converged).
    pub final_diff: usize,
    /// Modifications re-issued through delta sessions.
    pub delta_mods: u64,
    /// Ground truth: the switch's final control table, filtered of RUM's
    /// reserved probe/catch rules, is entry-for-entry equal to the desired
    /// store (same identities, cookies and actions).
    pub table_matches: bool,
}

impl ResyncVerdict {
    /// The bar a `restart_resync` cell must clear.
    pub fn is_clean(&self) -> bool {
        self.converged && self.final_diff == 0 && self.table_matches
    }
}

/// Whether a fault model's cells run with the reconciler enabled.
pub fn resync_enabled(fault: &FaultModel) -> bool {
    fault.name == "restart_resync"
}

/// The reconciler configuration of a `restart_resync` cell — a pure
/// function of the switch model, so the simulator and TCP drivers replay
/// the identical backoff schedule for a given seed.  The delta session uses
/// plain batched barriers on both drivers: convergence is proven by the
/// *next readback*, not by trusting the delta's acknowledgments, so the
/// honesty of the ack path is irrelevant here by design.
pub fn resync_config(model: &SwitchModel) -> ResyncConfig {
    let lag = model.worst_case_dataplane_lag();
    ResyncConfig {
        backoff: BackoffPolicy::new(lag / 4, lag * 2),
        max_rounds: 8,
        ack_mode: AckMode::Barriers { batch: 4 },
        window: 8,
        failure_policy: FailurePolicy::retry(lag, 2),
    }
}

/// The drop-all rule every matrix scenario preinstalls on the device under
/// test (`controller::scenarios` uses the same identity); `restart_resync`
/// cells seed the desired store with it so the reconciler restores it too.
fn preinstalled_drop_all() -> openflow::messages::FlowMod {
    openflow::messages::FlowMod::add(
        openflow::OfMatch::wildcard_all(),
        controller::scenarios::DROP_ALL_PRIORITY,
        vec![],
    )
    .with_cookie(controller::scenarios::COOKIE_PREINSTALLED)
}

/// Joins the reconciler's own claim with switch-side ground truth into the
/// cell verdict.  A cell where the reconnect never reached the reconciler
/// (no status) records a non-converged verdict instead of panicking.
fn resync_verdict(
    status: Option<&ResyncStatus>,
    store: &DesiredStore,
    entries: &[FlowEntry],
) -> ResyncVerdict {
    let table_matches = table_matches_desired(entries, store, 0);
    match status {
        Some(s) => ResyncVerdict {
            converged: s.converged,
            rounds: s.rounds,
            final_diff: s.final_diff,
            delta_mods: s.delta_mods,
            table_matches,
        },
        None => ResyncVerdict {
            converged: false,
            rounds: 0,
            final_diff: store.len(0),
            delta_mods: 0,
            table_matches,
        },
    }
}

/// The main session's failure policy in a `restart_resync` cell.
///
/// The reconciliation gate opens only once the main session settles; the
/// barrier-only baseline would otherwise wait forever on modifications the
/// reboot swallowed (no re-issue without RUM).  A model-scaled retry — one
/// full reconnect delay plus the worst-case lag, so the first re-send lands
/// after the reattach — lets every technique settle: completion where the
/// re-sends get through, an abort (which opens the gate just the same)
/// where they do not.
pub fn resync_session_policy(model: &SwitchModel) -> FailurePolicy {
    FailurePolicy::retry(
        restart_reconnect_delay(model) + model.worst_case_dataplane_lag(),
        3,
    )
}

/// Ground-truth table equality: every control-table entry the controller
/// owns (RUM's reserved probe/catch cookies are the proxy's business) must
/// be desired with the same cookie and actions, and nothing desired may be
/// missing.  Strict-identity keys `(match, priority)` make this the same
/// relation the reconciler's diff uses — but computed from the switch side.
pub fn table_matches_desired(
    entries: &[FlowEntry],
    store: &DesiredStore,
    switch: controller::plan::SwitchRef,
) -> bool {
    let owned: Vec<&FlowEntry> = entries
        .iter()
        .filter(|e| e.cookie < u64::from(rum::PROXY_XID_BASE))
        .collect();
    owned.len() == store.len(switch)
        && owned.iter().all(|e| {
            store
                .get(switch, &e.match_, e.priority)
                .is_some_and(|want| want.cookie == e.cookie && want.actions == e.actions)
        })
}

/// Result of one matrix cell.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixCell {
    /// `simnet` or `tcp`.
    pub driver: &'static str,
    /// Fault-model name.
    pub fault: String,
    /// Technique label.
    pub technique: String,
    /// Monitored switches in the run's topology: 3 for the classic bulk
    /// chain, larger for the sharded scale rows (`crate::scale`).
    pub switches: usize,
    /// Rules in the plan.
    pub planned: usize,
    /// Rules the controller considered confirmed by the horizon.
    pub confirmed: usize,
    /// Confirmations issued while the rule was *not* in the data plane.
    pub false_acks: usize,
    /// Planned rules never confirmed by the horizon.
    pub missed_acks: usize,
    /// Completion time in ms (update start → last confirmation), when the
    /// update completed.
    pub completion_ms: Option<f64>,
    /// False when the technique's soundness claim does not apply under this
    /// fault model (see [`technique_applicable`]); the cell is then recorded
    /// with zero counts instead of being run.
    pub applicable: bool,
    /// Present only in `restart_resync` cells: the reconciliation outcome.
    pub resync: Option<ResyncVerdict>,
}

impl MatrixCell {
    /// The placeholder recorded for a (technique, fault) pair outside the
    /// technique's soundness domain.
    pub fn not_applicable(
        driver: &'static str,
        fault: &FaultModel,
        technique: &MatrixTechnique,
    ) -> MatrixCell {
        MatrixCell {
            driver,
            fault: fault.name.to_string(),
            technique: technique.label(),
            switches: 3,
            planned: 0,
            confirmed: 0,
            false_acks: 0,
            missed_acks: 0,
            completion_ms: None,
            applicable: false,
            resync: None,
        }
    }
}

impl MatrixCell {
    /// False acknowledgments as a fraction of the plan.
    pub fn false_ack_rate(&self) -> f64 {
        self.false_acks as f64 / self.planned.max(1) as f64
    }

    /// Missed acknowledgments as a fraction of the plan.
    pub fn missed_ack_rate(&self) -> f64 {
        self.missed_acks as f64 / self.planned.max(1) as f64
    }
}

/// Classifies a run: joins the controller's confirmation times against the
/// device under test's ground truth.
///
/// The counts are driven *through* the telemetry registry — one
/// `matrix.{driver}.{fault}.{technique}.{false_acks,missed_acks}` counter
/// pair per cell, the same vocabulary live runs use — and the cell reads
/// its numbers back as counter deltas, so the registry and the report can
/// never disagree.
#[allow(clippy::too_many_arguments)] // private join of a run's artefacts
fn classify(
    driver: &'static str,
    fault: &FaultModel,
    technique: &MatrixTechnique,
    planned: &[u64],
    confirmations: &HashMap<u64, Duration>,
    truth: &GroundTruth,
    completion_ms: Option<f64>,
    registry: &Registry,
) -> MatrixCell {
    let prefix = format!("matrix.{driver}.{}.{}", fault.name, technique.label());
    let false_ctr = registry.counter(&format!("{prefix}.false_acks"));
    let missed_ctr = registry.counter(&format!("{prefix}.missed_acks"));
    let (false_before, missed_before) = (false_ctr.get(), missed_ctr.get());
    for &cookie in planned {
        match confirmations.get(&cookie) {
            Some(&at) => {
                if !truth.active_at(cookie, at) {
                    false_ctr.inc();
                }
            }
            None => missed_ctr.inc(),
        }
    }
    let false_acks = (false_ctr.get() - false_before) as usize;
    let missed_acks = (missed_ctr.get() - missed_before) as usize;
    MatrixCell {
        driver,
        fault: fault.name.to_string(),
        technique: technique.label(),
        // The classic cells all run the 3-switch bulk chain; the sharded
        // scale cells (`crate::scale`) overwrite this with the fleet size.
        switches: 3,
        planned: planned.len(),
        confirmed: planned.len() - missed_acks,
        false_acks,
        missed_acks,
        completion_ms,
        applicable: true,
        resync: None,
    }
}

/// When the simulated controller starts pushing the update.
const SIM_START: SimTime = SimTime::from_millis(10);

/// Runs one cell on the simulator driver.
pub fn run_simnet_cell(
    technique: &MatrixTechnique,
    fault: &FaultModel,
    n_rules: usize,
    seed: u64,
) -> MatrixCell {
    run_simnet_cell_with_metrics(technique, fault, n_rules, seed, &Registry::new())
}

/// Like [`run_simnet_cell`], recording the cell's verdict counters into
/// `registry` (metric names `matrix.simnet.{fault}.{technique}.*`).
pub fn run_simnet_cell_with_metrics(
    technique: &MatrixTechnique,
    fault: &FaultModel,
    n_rules: usize,
    seed: u64,
    registry: &Registry,
) -> MatrixCell {
    let mut sim = Simulator::new(seed);
    let scenario = BulkUpdateScenario {
        n_rules,
        packets_per_sec: 0,
        model: fault.model.clone(),
        faults: fault.faults.clone(),
        // Restarted switches come back (only the restart column trips this):
        // the reboot outlives every pre-restart confirmation timer, then the
        // reattach replays the handshake and the proxy re-issues unconfirmed
        // modifications.
        reconnect_delay: Some(restart_reconnect_delay(&fault.model)),
        ..Default::default()
    };
    let net = scenario.build(&mut sim);
    // The device under test is monitored-switch 0, matching the TCP driver
    // (it connects to the proxy first there), so RUM's per-switch xid
    // streams — and with them the ack-loss fault's per-xid decisions — line
    // up across drivers.
    let switches = [net.sw_b, net.sw_a, net.sw_c];
    let window = n_rules.max(1);

    let ack_mode = match technique {
        MatrixTechnique::BarrierOnly => AckMode::Barriers { batch: 1 },
        MatrixTechnique::Rum(_) => AckMode::RumAcks,
    };
    let mut ctrl = Controller::new("ctrl", net.plan.clone(), ack_mode, window, SIM_START);
    if resync_enabled(fault) {
        ctrl.session_mut()
            .set_failure_policy(resync_session_policy(&fault.model));
        let reconciler = ctrl.enable_resync(resync_config(&fault.model));
        reconciler
            .store_mut()
            .note_confirmed(0, &preinstalled_drop_all());
        reconciler.attach_metrics(registry);
    }
    let ctrl_id = sim.add_node(ctrl);
    match technique {
        MatrixTechnique::BarrierOnly => {
            sim.node_mut::<Controller>(ctrl_id)
                .unwrap()
                .set_connections(vec![net.sw_b]);
            sim.node_mut::<OpenFlowSwitch>(net.sw_b)
                .unwrap()
                .connect_controller(ctrl_id);
        }
        MatrixTechnique::Rum(t) => {
            let builder = RumBuilder::new(switches.len()).technique(t.clone());
            let (proxies, _handle) = deploy(&mut sim, builder, ctrl_id, &switches);
            sim.node_mut::<Controller>(ctrl_id)
                .unwrap()
                .set_connections(vec![proxies[0]]);
            for (idx, sw) in switches.iter().enumerate() {
                sim.node_mut::<OpenFlowSwitch>(*sw)
                    .unwrap()
                    .connect_controller(proxies[idx]);
            }
        }
    }

    // A generous horizon; stalled cells (wedged rules, lost acks) simply
    // report missed acks.
    sim.run_until(SimTime::from_secs(90));

    let planned: Vec<u64> = (0..n_rules).map(BulkUpdateScenario::rule_cookie).collect();
    let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
    let confirmations: HashMap<u64, Duration> = ctrl.session().confirmation_times().clone();
    let completion_ms = ctrl
        .completed_at()
        .map(|t| t.saturating_sub(SIM_START).as_millis_f64());
    let truth = sim
        .node_ref::<OpenFlowSwitch>(net.sw_b)
        .unwrap()
        .behavior()
        .ground_truth()
        .clone();
    let mut cell = classify(
        "simnet",
        fault,
        technique,
        &planned,
        &confirmations,
        &truth,
        completion_ms,
        registry,
    );
    if resync_enabled(fault) {
        let entries: Vec<FlowEntry> = sim
            .node_ref::<OpenFlowSwitch>(net.sw_b)
            .unwrap()
            .behavior()
            .control_table()
            .entries()
            .cloned()
            .collect();
        let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
        let reconciler = ctrl.reconciler().expect("resync was enabled");
        cell.resync = Some(resync_verdict(
            reconciler.status(0),
            reconciler.store(),
            &entries,
        ));
    }
    cell
}

/// Port maps of the TCP chain in proxy `SwitchId` space: the device under
/// test connects first (SwitchId 0 = controller `ConnId` 0 = plan target
/// 0), then the upstream helper A (1), then the downstream helper C (2).
/// Ports mirror `controller::scenarios::bulk_ports`: B1 ↔ A2, B2 ↔ C1.
pub(crate) fn tcp_port_maps() -> Vec<SwitchPortMap> {
    let b = SwitchId::new(0);
    let a = SwitchId::new(1);
    let c = SwitchId::new(2);
    let mut map_b = SwitchPortMap::default();
    map_b.port_to_switch.insert(1, a);
    map_b.port_to_switch.insert(2, c);
    map_b.inject_via = Some((a, 2));
    let mut map_a = SwitchPortMap::default();
    map_a.port_to_switch.insert(2, b);
    map_a.inject_via = Some((b, 1));
    let mut map_c = SwitchPortMap::default();
    map_c.port_to_switch.insert(1, b);
    map_c.inject_via = Some((b, 2));
    vec![map_b, map_a, map_c]
}

/// How long a TCP cell may wait for completion before it is recorded as
/// stalled (missed acks).  Scaled for `SwitchModel::fast_buggy` timings.
const TCP_COMPLETION_TIMEOUT: Duration = Duration::from_millis(2_500);

/// Extra wall-clock budget for the reconciliation loop of a
/// `restart_resync` cell after the main session settled: the reattach, up
/// to eight readback rounds and the backoff between them all fit in a small
/// fraction of this — the slack only matters on a loaded CI machine.
const TCP_RESYNC_TIMEOUT: Duration = Duration::from_secs(10);

/// Runs one cell on the real-socket driver: a `TcpUpdateController`, the
/// RUM TCP proxy (for RUM techniques), and fabric-linked switch hosts.
pub fn run_tcp_cell(technique: &MatrixTechnique, fault: &FaultModel, n_rules: usize) -> MatrixCell {
    run_tcp_cell_with_metrics(technique, fault, n_rules, &Registry::new())
}

/// Like [`run_tcp_cell`], recording the cell's verdict counters into
/// `registry` (metric names `matrix.tcp.{fault}.{technique}.*`).
pub fn run_tcp_cell_with_metrics(
    technique: &MatrixTechnique,
    fault: &FaultModel,
    n_rules: usize,
    registry: &Registry,
) -> MatrixCell {
    let scenario = BulkUpdateScenario {
        n_rules,
        packets_per_sec: 0,
        model: fault.model.clone(),
        faults: fault.faults.clone(),
        ..Default::default()
    };
    let plan = scenario.plan();
    let planned: Vec<u64> = (0..n_rules).map(BulkUpdateScenario::rule_cookie).collect();
    let epoch = Instant::now();
    let window = n_rules.max(1);
    let drop_all = preinstalled_drop_all();

    let (ack_mode, n_connections) = match technique {
        MatrixTechnique::BarrierOnly => (AckMode::Barriers { batch: 1 }, 1),
        MatrixTechnique::Rum(_) => (AckMode::RumAcks, 3),
    };
    let mut session = UpdateSession::new(plan, ack_mode, window);
    if resync_enabled(fault) {
        session.set_failure_policy(resync_session_policy(&fault.model));
    }
    let mut ctrl = TcpUpdateController::new_with_epoch(
        "127.0.0.1:0".parse().unwrap(),
        session,
        n_connections,
        epoch,
    );
    if resync_enabled(fault) {
        let reconciler = ctrl.enable_resync(resync_config(&fault.model));
        reconciler.store_mut().note_confirmed(0, &drop_all);
        reconciler.attach_metrics(registry);
    }
    let ctrl_handle = ctrl.start().expect("controller starts");

    let mut proxy_handle = None;
    let switch_target = match technique {
        MatrixTechnique::BarrierOnly => ctrl_handle.local_addr,
        MatrixTechnique::Rum(t) => {
            let proxy = RumTcpProxy::new(
                ProxyConfig {
                    listen_addr: "127.0.0.1:0".parse().unwrap(),
                    controller_addr: ctrl_handle.local_addr,
                },
                RumBuilder::new(3)
                    .technique(t.clone())
                    .port_maps(tcp_port_maps()),
            );
            let handle = proxy.start().expect("proxy starts");
            let addr = handle.local_addr;
            proxy_handle = Some(handle);
            addr
        }
    };

    // The device under test always connects first (SwitchId/ConnId 0).
    let fabric = Fabric::new();
    fabric.link(0, 1, 1, 2); // B port1 <-> A port2
    fabric.link(0, 2, 2, 1); // B port2 <-> C port1
    let dut = spawn_switch_with(
        switch_target,
        fault.model.clone(),
        SwitchHostOptions {
            faults: fault.faults.clone(),
            epoch: Some(epoch),
            fabric: Some((fabric.clone(), 0)),
            preinstall: vec![drop_all.clone()],
            reconnect_delay: Some(restart_reconnect_delay(&fault.model)),
        },
    )
    .expect("device under test connects");
    assert!(
        rum_tcp::wait_for(|| ctrl_handle.connections() >= 1, Duration::from_secs(5)),
        "device under test did not reach the controller"
    );
    let mut helpers = Vec::new();
    if matches!(technique, MatrixTechnique::Rum(_)) {
        for (i, helper_idx) in [(2usize, 1usize), (3, 2)] {
            let handle = spawn_switch_with(
                switch_target,
                SwitchModel::faithful(),
                SwitchHostOptions {
                    epoch: Some(epoch),
                    fabric: Some((fabric.clone(), helper_idx)),
                    preinstall: vec![drop_all.clone()],
                    ..Default::default()
                },
            )
            .expect("helper switch connects");
            assert!(
                rum_tcp::wait_for(|| ctrl_handle.connections() >= i, Duration::from_secs(5)),
                "helper switch {helper_idx} did not reach the controller"
            );
            helpers.push(handle);
        }
    }

    let outcome = ctrl_handle.wait_for_outcome(TCP_COMPLETION_TIMEOUT);
    // In a `restart_resync` cell, the main session settling opens the
    // reconciliation gate; give the readback/delta loop its own budget and
    // snapshot the reconciler's claim plus the desired store before
    // teardown (the table itself is judged from the device's report below).
    let resync_state: Option<(Option<ResyncStatus>, DesiredStore)> = if resync_enabled(fault) {
        ctrl_handle.wait_for_resync(1, TCP_RESYNC_TIMEOUT);
        ctrl_handle.with_reconciler(|r| (r.status(0).cloned(), r.store().clone()))
    } else {
        None
    };
    let (confirmations, completed_at, update_start) = ctrl_handle.with_session(|s| {
        (
            s.confirmation_times().clone(),
            s.completed_at(),
            // The update starts at the first send, not at the process
            // epoch: listener/proxy start-up and switch connect waits must
            // not count towards completion, mirroring how the simnet cell
            // measures from the controller's start instant.
            s.send_times().values().min().copied(),
        )
    });
    let _ = outcome;
    // Tear down: controller first, then the proxy, then the switch hosts
    // (their reports carry the ground truth).
    ctrl_handle.shutdown();
    if let Some(handle) = proxy_handle {
        handle.shutdown();
    }
    dut.stop();
    for h in &helpers {
        h.stop();
    }
    let report = dut.join();
    for h in helpers {
        let _ = h.join();
    }

    let completion_ms = match (completed_at, update_start) {
        (Some(done), Some(start)) => Some(done.saturating_sub(start).as_secs_f64() * 1e3),
        _ => None,
    };
    let mut cell = classify(
        "tcp",
        fault,
        technique,
        &planned,
        &confirmations,
        &report.truth,
        completion_ms,
        registry,
    );
    if let Some((status, store)) = resync_state {
        cell.resync = Some(resync_verdict(
            status.as_ref(),
            &store,
            &report.control_entries,
        ));
    }
    cell
}

/// Runs the full matrix on the simulator driver.
pub fn run_simnet_matrix(n_rules: usize, seed: u64) -> Vec<MatrixCell> {
    run_simnet_matrix_with_metrics(n_rules, seed, &Registry::new())
}

/// Like [`run_simnet_matrix`], accumulating every cell's verdict counters
/// into `registry` — serve it with [`telemetry::serve`] to watch a long
/// sweep fill in live.
pub fn run_simnet_matrix_with_metrics(
    n_rules: usize,
    seed: u64,
    registry: &Registry,
) -> Vec<MatrixCell> {
    let base = SwitchModel::hp5406zl();
    let mut cells = Vec::new();
    for fault in fault_models(&base, seed, n_rules) {
        for technique in MatrixTechnique::all(&base) {
            cells.push(if technique_applicable(&technique, &fault) {
                run_simnet_cell_with_metrics(&technique, &fault, n_rules, seed, registry)
            } else {
                MatrixCell::not_applicable("simnet", &fault, &technique)
            });
        }
    }
    cells
}

/// Runs the full matrix on the real-socket driver (wall-clock time; uses
/// the scaled-down `fast_buggy` model).
pub fn run_tcp_matrix(n_rules: usize, seed: u64) -> Vec<MatrixCell> {
    run_tcp_matrix_with_metrics(n_rules, seed, &Registry::new())
}

/// Like [`run_tcp_matrix`], accumulating every cell's verdict counters
/// into `registry`.
pub fn run_tcp_matrix_with_metrics(
    n_rules: usize,
    seed: u64,
    registry: &Registry,
) -> Vec<MatrixCell> {
    let base = SwitchModel::fast_buggy();
    let mut cells = Vec::new();
    for fault in fault_models(&base, seed, n_rules) {
        for technique in MatrixTechnique::all(&base) {
            cells.push(if technique_applicable(&technique, &fault) {
                run_tcp_cell_with_metrics(&technique, &fault, n_rules, registry)
            } else {
                MatrixCell::not_applicable("tcp", &fault, &technique)
            });
        }
    }
    cells
}

/// Renders the matrix as a fault × technique grid of
/// `false/missed` counts.
pub fn render_grid(cells: &[MatrixCell]) -> String {
    let mut drivers: Vec<&str> = cells.iter().map(|c| c.driver).collect();
    drivers.dedup();
    let mut out = String::new();
    for driver in drivers {
        let rows: Vec<&MatrixCell> = cells.iter().filter(|c| c.driver == driver).collect();
        let mut faults: Vec<&str> = rows.iter().map(|c| c.fault.as_str()).collect();
        faults.dedup();
        let mut techniques: Vec<&str> = rows.iter().map(|c| c.technique.as_str()).collect();
        techniques.sort_unstable();
        techniques.dedup();
        out.push_str(&format!(
            "driver {driver} (false acks / missed acks, n = {}):\n",
            rows.first().map_or(0, |c| c.planned)
        ));
        out.push_str(&format!("{:<22}", "fault \\ technique"));
        for t in &techniques {
            out.push_str(&format!("{t:>16}"));
        }
        out.push('\n');
        for fault in faults {
            out.push_str(&format!("{fault:<22}"));
            for t in &techniques {
                let cell = rows
                    .iter()
                    .find(|c| c.fault == fault && c.technique == *t)
                    .expect("cell exists");
                let rendered = if cell.applicable {
                    format!("{}/{}", cell.false_acks, cell.missed_acks)
                } else {
                    "n/a".to_string()
                };
                out.push_str(&format!("{rendered:>16}"));
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Applicability marks exactly sequential probing × order-violating
    /// adversaries as out of scope; everything else runs everywhere.
    #[test]
    fn applicability_tracks_the_order_preservation_boundary() {
        let base = SwitchModel::hp5406zl();
        let models = fault_models(&base, 42, 10);
        let names: Vec<&str> = models.iter().map(|f| f.name).collect();
        assert_eq!(
            names,
            vec![
                "early_reply",
                "silent_drop",
                "sync_burst",
                "ack_lossdup",
                "restart",
                "restart_resync",
                "early_reply_reordering"
            ]
        );
        assert_eq!(
            models.iter().filter(|f| resync_enabled(f)).count(),
            1,
            "exactly the restart_resync column runs with the reconciler"
        );
        let sequential = MatrixTechnique::Rum(TechniqueConfig::SequentialProbing {
            batch_size: 3,
            probe_interval: Duration::from_millis(10),
        });
        let general = MatrixTechnique::Rum(TechniqueConfig::default_general());
        for fault in &models {
            let seq_ok = technique_applicable(&sequential, fault);
            assert_eq!(
                seq_ok,
                fault.name != "early_reply_reordering",
                "sequential under {}",
                fault.name
            );
            assert!(technique_applicable(&MatrixTechnique::BarrierOnly, fault));
            assert!(technique_applicable(&general, fault));
        }
        assert_eq!(restart_after_mods(10), 5);
        assert_eq!(restart_after_mods(1), 1);
        let reordering = models.last().unwrap();
        assert_eq!(reordering.name, "early_reply_reordering");
        let na = MatrixCell::not_applicable("simnet", reordering, &sequential);
        assert!(!na.applicable);
        assert_eq!(na.planned, 0);
        assert_eq!(na.false_ack_rate(), 0.0);
        assert_eq!(na.resync, None);
    }

    /// Cell verdicts are *driven through* the shared telemetry registry:
    /// the counters under `matrix.*` and the returned `MatrixCell` are the
    /// same numbers by construction.
    #[test]
    fn matrix_counts_flow_through_the_telemetry_registry() {
        let base = SwitchModel::hp5406zl();
        let early = &fault_models(&base, 42, 8)[0];
        let registry = Registry::new();
        let cell =
            run_simnet_cell_with_metrics(&MatrixTechnique::BarrierOnly, early, 8, 42, &registry);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counters["matrix.simnet.early_reply.barrier-only.false_acks"],
            cell.false_acks as u64
        );
        assert_eq!(
            snap.counters["matrix.simnet.early_reply.barrier-only.missed_acks"],
            cell.missed_acks as u64
        );
        // A second run over the same registry accumulates in telemetry but
        // still reports per-run deltas in the cell.
        let again =
            run_simnet_cell_with_metrics(&MatrixTechnique::BarrierOnly, early, 8, 42, &registry);
        assert_eq!(again.false_acks, cell.false_acks);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counters["matrix.simnet.early_reply.barrier-only.false_acks"],
            2 * cell.false_acks as u64
        );
    }

    /// The matrix's load-bearing cells, at reduced scale: the barrier-only
    /// baseline lies under early replies, the probing techniques never do.
    #[test]
    fn simnet_baseline_lies_probing_does_not() {
        let base = SwitchModel::hp5406zl();
        let early = &fault_models(&base, 42, 8)[0];
        assert_eq!(early.name, "early_reply");

        let baseline = run_simnet_cell(&MatrixTechnique::BarrierOnly, early, 8, 42);
        assert!(
            baseline.false_acks > 0,
            "barrier-only must produce false acks under early replies: {baseline:?}"
        );
        assert!(baseline.completion_ms.is_some());

        let general = run_simnet_cell(
            &MatrixTechnique::Rum(TechniqueConfig::default_general()),
            early,
            8,
            42,
        );
        assert_eq!(general.false_acks, 0, "{general:?}");
        assert_eq!(general.missed_acks, 0, "{general:?}");
    }

    /// The restart_resync column end to end on the simulator: a mid-plan
    /// reboot wipes the table, the reconciler reads back, re-issues the
    /// delta and converges — and the verdict's table equality is judged
    /// against the switch's real control table, not the reconciler's claim.
    #[test]
    fn simnet_restart_resync_repairs_the_wiped_table() {
        let base = SwitchModel::hp5406zl();
        let models = fault_models(&base, 42, 8);
        let fault = models.iter().find(|f| f.name == "restart_resync").unwrap();
        let plain_restart = models.iter().find(|f| f.name == "restart").unwrap();
        assert!(resync_enabled(fault) && !resync_enabled(plain_restart));

        let registry = Registry::new();
        let cell =
            run_simnet_cell_with_metrics(&MatrixTechnique::BarrierOnly, fault, 8, 42, &registry);
        let verdict = cell.resync.expect("restart_resync cells carry a verdict");
        assert!(verdict.is_clean(), "verdict: {verdict:?}");
        assert!(
            verdict.delta_mods > 0,
            "confirmed-then-wiped rules must be re-issued: {verdict:?}"
        );
        // The reconciler's observability rides the same registry as the
        // matrix counters.
        let snap = registry.snapshot();
        assert_eq!(snap.gauges["resync.converged"], 1);
        assert_eq!(snap.gauges["resync.final_diff"], 0);

        // A RUM technique converges too: RUM re-issues what was unconfirmed,
        // the reconciler restores what was confirmed-then-wiped.
        let rum = run_simnet_cell(
            &MatrixTechnique::Rum(TechniqueConfig::default_general()),
            fault,
            8,
            42,
        );
        let verdict = rum.resync.expect("verdict present under RUM");
        assert!(verdict.is_clean(), "verdict: {verdict:?}");

        // The plain restart column stays verdict-free.
        let plain = run_simnet_cell(&MatrixTechnique::BarrierOnly, plain_restart, 8, 42);
        assert_eq!(plain.resync, None);
    }

    /// Under the wedged-queue silent-drop fault, the baseline confirms
    /// everything (falsely); probing confirms only what really activated.
    #[test]
    fn simnet_silent_drop_splits_baseline_and_probing() {
        let base = SwitchModel::hp5406zl();
        // Pick a seed whose wedge hits one of the 8 planned cookies.
        let seed = (0..64)
            .find(|&s| {
                let f = FaultPlan::seeded(s).with_silent_drops(3);
                (0..8).any(|i| f.drops_cookie(BulkUpdateScenario::rule_cookie(i)))
            })
            .expect("some seed wedges");
        let models = fault_models(&base, seed, 8);
        let drop = models.iter().find(|f| f.name == "silent_drop").unwrap();

        let baseline = run_simnet_cell(&MatrixTechnique::BarrierOnly, drop, 8, seed);
        assert!(baseline.false_acks > 0, "{baseline:?}");
        assert_eq!(baseline.missed_acks, 0, "early replies confirm everything");

        let sequential = run_simnet_cell(
            &MatrixTechnique::Rum(TechniqueConfig::SequentialProbing {
                batch_size: 3,
                probe_interval: Duration::from_millis(10),
            }),
            drop,
            8,
            seed,
        );
        assert_eq!(sequential.false_acks, 0, "{sequential:?}");
        assert!(
            sequential.missed_acks > 0,
            "wedged rules must stay unconfirmed: {sequential:?}"
        );
    }
}
