//! The 1,000-switch scale layer: the sharded proxy serving a large switch
//! fleet on both drivers of the shared behaviour engine.
//!
//! The classic scenario matrix proves soundness on a 3-switch chain; this
//! module proves the same zero-false-acks claim **at fleet scale**.  The
//! topology is a ring of `n` switches (port 1 towards the predecessor,
//! port 2 towards the successor), every switch runs the early-barrier-reply
//! adversary, and the plan installs rules spread across the whole fleet —
//! every rule forwards to its switch's ring successor, where the probing
//! technique's catch rule observes it.  The update starts only once all `n`
//! connections are attached (both drivers gate on that), so the measured
//! run really is `n` concurrent switches behind one sharded engine.
//!
//! Verdicts are classified per rule against **that rule's own switch**
//! ground truth and flow through the registry under
//! `scale.{driver}.{n}.{fault}.{technique}.*` — the same delta-read pattern
//! the classic matrix uses, in a distinct namespace so live telemetry can
//! tell the fleet runs apart from the chain runs.

use crate::report::percentile;
use crate::scenario_matrix::{FaultModel, MatrixCell, MatrixTechnique};
use crate::session_soak::{
    collect, mux_config, probing, summarise, tenant_plan_for, SoakConfig, SoakOutcome,
};
use controller::scenarios::{COOKIE_NEW_RULE_BASE, COOKIE_PREINSTALLED, DROP_ALL_PRIORITY};
use controller::{AckMode, Controller, UpdatePlan, UpdateSession};
use ofswitch::{FaultPlan, GroundTruth, SwitchModel};
use openflow::messages::FlowMod;
use openflow::{Action, DatapathId, OfMatch};
use rum::{deploy, RumBuilder, SwitchId, SwitchPortMap};
use rum_tcp::{
    spawn_switch_with, wait_for, Fabric, LegacyRumTcpProxy, ProxyConfig, RumTcpProxy,
    SwitchHostOptions, TcpMuxController, TcpUpdateController,
};
use simnet::{OpenFlowSwitch, SimTime, Simulator};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::{Duration, Instant};
use telemetry::Registry;

/// Ring port towards the predecessor switch.
pub const RING_IN_PORT: u16 = 1;
/// Ring port towards the successor switch (the output port of every rule).
pub const RING_OUT_PORT: u16 = 2;

/// Engine shards of every scale run.  Fixed (not derived from the host's
/// core count) so the shard striping — and with it the per-switch timer and
/// xid streams — is identical on every machine and both drivers.
pub const SCALE_SHARDS: usize = 8;

/// Port maps of an `n`-switch ring in proxy `SwitchId` space: switch `i`
/// reaches its predecessor through port 1 and its successor through port 2;
/// probes for `i` are injected via the predecessor's port 2.  The same maps
/// are passed explicitly to **both** drivers, so probe paths match exactly
/// instead of depending on topology-derivation order.
pub fn ring_port_maps(n: usize) -> Vec<SwitchPortMap> {
    assert!(n >= 2, "a ring needs at least two switches");
    (0..n)
        .map(|i| {
            let prev = SwitchId::new((i + n - 1) % n);
            let next = SwitchId::new((i + 1) % n);
            let mut map = SwitchPortMap::default();
            map.port_to_switch.insert(RING_IN_PORT, prev);
            map.port_to_switch.insert(RING_OUT_PORT, next);
            map.inject_via = Some((prev, RING_OUT_PORT));
            map
        })
        .collect()
}

/// The fleet-wide plan: `rules_per_switch` rules per switch, id/cookie
/// `COOKIE_NEW_RULE_BASE + k` (disjoint from the preinstalled drop-all),
/// each in its own `10.x.y.z` match space and forwarding out the ring
/// towards its successor.  Rule `k` targets switch `k % n`, so every switch
/// in the fleet carries plan load.
pub fn scale_plan(n_switches: usize, rules_per_switch: usize) -> UpdatePlan {
    assert!(rules_per_switch < 255, "per-switch rule space is one /24");
    let mut plan = UpdatePlan::new();
    for (k, (sw, r)) in (0..rules_per_switch)
        .flat_map(|r| (0..n_switches).map(move |sw| (sw, r)))
        .enumerate()
    {
        let id = COOKIE_NEW_RULE_BASE + k as u64;
        plan.add(
            id,
            sw,
            FlowMod::add(
                OfMatch::ipv4_pair(
                    Ipv4Addr::new(10, (sw >> 8) as u8, (sw & 0xff) as u8, r as u8 + 1),
                    Ipv4Addr::new(10, 200, 0, 1),
                ),
                controller::scenarios::FLOW_RULE_PRIORITY,
                vec![Action::output(RING_OUT_PORT)],
            ),
        )
        .expect("scale plan ids are unique");
    }
    plan
}

/// `(cookie, switch index)` of every rule in [`scale_plan`] — the join key
/// set of the per-switch ground-truth classification.
pub fn scale_cookies(n_switches: usize, rules_per_switch: usize) -> Vec<(u64, usize)> {
    (0..rules_per_switch)
        .flat_map(|r| (0..n_switches).map(move |sw| (sw, r)))
        .enumerate()
        .map(|(k, (sw, _))| (COOKIE_NEW_RULE_BASE + k as u64, sw))
        .collect()
}

/// The early-reply adversary every switch of the fleet runs, and the
/// general-probing technique under test (the one the paper proves never
/// acknowledges falsely — the only technique whose per-switch claim
/// honestly involves the whole attached fleet).
fn scale_fault(base: &SwitchModel, seed: u64) -> FaultModel {
    FaultModel {
        name: "early_reply",
        model: base.clone(),
        faults: FaultPlan::seeded(seed),
    }
}

fn preinstalled_drop_all() -> FlowMod {
    FlowMod::add(OfMatch::wildcard_all(), DROP_ALL_PRIORITY, vec![])
        .with_cookie(COOKIE_PREINSTALLED)
}

/// Joins every rule's confirmation against **its own switch's** ground
/// truth.  Counters are driven through the registry under
/// `scale.{driver}.{n}.{fault}.{technique}.*` and read back as deltas.
#[allow(clippy::too_many_arguments)] // private join of a run's artefacts
fn classify_scale(
    driver: &'static str,
    fault: &FaultModel,
    technique: &MatrixTechnique,
    planned: &[(u64, usize)],
    confirmations: &HashMap<u64, Duration>,
    truths: &[GroundTruth],
    completion_ms: Option<f64>,
    registry: &Registry,
) -> MatrixCell {
    let n = truths.len();
    let prefix = format!("scale.{driver}.{n}.{}.{}", fault.name, technique.label());
    let false_ctr = registry.counter(&format!("{prefix}.false_acks"));
    let missed_ctr = registry.counter(&format!("{prefix}.missed_acks"));
    let (false_before, missed_before) = (false_ctr.get(), missed_ctr.get());
    for &(cookie, sw) in planned {
        match confirmations.get(&cookie) {
            Some(&at) => {
                if !truths[sw].active_at(cookie, at) {
                    false_ctr.inc();
                }
            }
            None => missed_ctr.inc(),
        }
    }
    let false_acks = (false_ctr.get() - false_before) as usize;
    let missed_acks = (missed_ctr.get() - missed_before) as usize;
    MatrixCell {
        driver,
        fault: fault.name.to_string(),
        technique: technique.label(),
        switches: n,
        planned: planned.len(),
        confirmed: planned.len() - missed_acks,
        false_acks,
        missed_acks,
        completion_ms,
        applicable: true,
        resync: None,
    }
}

/// When the simulated controller starts pushing the update.
const SCALE_SIM_START: SimTime = SimTime::from_millis(10);

/// One fleet-scale run's artefacts: the matrix verdict plus the engine-side
/// per-switch confirm orders, which the cross-driver conformance tests
/// compare byte-for-byte between drivers and against the single-engine
/// oracle.
#[derive(Debug)]
pub struct ScaleCellOutcome {
    /// The classified verdict row (schema-8 `switches` included).
    pub cell: MatrixCell,
    /// `per_switch_orders[i]` = the cookies switch `i` confirmed, in the
    /// order the engine confirmed them.
    pub per_switch_orders: Vec<Vec<u64>>,
}

/// Which TCP wire path serves the fleet in [`run_tcp_scale_cell_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleProxy {
    /// The readiness-driven event-loop proxy ([`rum_tcp::RumTcpProxy`]).
    EventLoop,
    /// The pre-shard thread-per-connection proxy
    /// ([`rum_tcp::LegacyRumTcpProxy`]) — the conformance oracle.
    Legacy,
}

/// Runs the fleet-scale cell on the simulator driver with the default
/// [`SCALE_SHARDS`] sharding.
pub fn run_simnet_scale_cell(
    n_switches: usize,
    rules_per_switch: usize,
    seed: u64,
    registry: &Registry,
) -> ScaleCellOutcome {
    run_simnet_scale_cell_with(n_switches, rules_per_switch, seed, SCALE_SHARDS, registry)
}

/// Runs the fleet-scale cell on the simulator driver: an `n`-switch ring of
/// early-reply adversaries (hp5406zl timings) behind the engine split into
/// `shards` shards, under general probing.  `shards = 1` is the unsharded
/// oracle.
pub fn run_simnet_scale_cell_with(
    n_switches: usize,
    rules_per_switch: usize,
    seed: u64,
    shards: usize,
    registry: &Registry,
) -> ScaleCellOutcome {
    let fault = scale_fault(&SwitchModel::hp5406zl(), seed);
    let drop_all = preinstalled_drop_all();
    let mut sim = Simulator::new(seed);
    let nodes: Vec<simnet::NodeId> = (0..n_switches)
        .map(|i| {
            let mut sw = OpenFlowSwitch::with_faults(
                format!("sw{i}"),
                DatapathId::new(i as u64 + 1),
                2,
                fault.model.clone(),
                fault.faults.clone(),
            );
            sw.preinstall(&drop_all);
            sim.add_node(sw)
        })
        .collect();
    for i in 0..n_switches {
        let next = (i + 1) % n_switches;
        sim.topology_mut().add_link(
            nodes[i],
            RING_OUT_PORT,
            nodes[next],
            RING_IN_PORT,
            SimTime::from_micros(50),
        );
    }

    let plan = scale_plan(n_switches, rules_per_switch);
    let window = plan.len().max(1);
    let technique = MatrixTechnique::Rum(probing(&fault.model, window));
    let ctrl = Controller::new("ctrl", plan, AckMode::RumAcks, window, SCALE_SIM_START);
    let ctrl_id = sim.add_node(ctrl);
    let builder = RumBuilder::new(n_switches)
        .shards(shards)
        .technique(probing(&fault.model, window))
        .port_maps(ring_port_maps(n_switches));
    let (proxies, handle) = deploy(&mut sim, builder, ctrl_id, &nodes);
    sim.node_mut::<Controller>(ctrl_id)
        .unwrap()
        .set_connections(proxies.clone());
    for (i, &sw) in nodes.iter().enumerate() {
        sim.node_mut::<OpenFlowSwitch>(sw)
            .unwrap()
            .connect_controller(proxies[i]);
    }
    sim.run_until(SimTime::from_secs(120));

    let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
    let confirmations: HashMap<u64, Duration> = ctrl.session().confirmation_times().clone();
    let completion_ms = ctrl
        .completed_at()
        .map(|t| t.saturating_sub(SCALE_SIM_START).as_millis_f64());
    let truths: Vec<GroundTruth> = nodes
        .iter()
        .map(|&id| {
            sim.node_ref::<OpenFlowSwitch>(id)
                .unwrap()
                .behavior()
                .ground_truth()
                .clone()
        })
        .collect();
    let per_switch_orders = (0..n_switches)
        .map(|i| handle.confirmed_order_for(SwitchId::new(i)))
        .collect();
    ScaleCellOutcome {
        cell: classify_scale(
            "simnet",
            &fault,
            &technique,
            &scale_cookies(n_switches, rules_per_switch),
            &confirmations,
            &truths,
            completion_ms,
            registry,
        ),
        per_switch_orders,
    }
}

/// Wall-clock completion budget of a TCP scale run, after all connections
/// are attached.  A 1,000-switch run takes ~30-45s of real probing on a
/// single-core box (the whole fleet's confirms funnel through one CPU), so
/// the budget scales with the fleet and leaves slack for loaded machines —
/// it is only a deadline, never part of any measurement.
fn scale_budget(n_switches: usize) -> Duration {
    Duration::from_secs(15) + Duration::from_millis(60) * n_switches as u32
}

/// Runs the fleet-scale cell on the real-socket driver with the default
/// sharded event-loop proxy.
pub fn run_tcp_scale_cell(
    n_switches: usize,
    rules_per_switch: usize,
    seed: u64,
    registry: &Registry,
) -> ScaleCellOutcome {
    run_tcp_scale_cell_with(
        n_switches,
        rules_per_switch,
        seed,
        SCALE_SHARDS,
        ScaleProxy::EventLoop,
        registry,
    )
}

/// Runs the fleet-scale cell on the real-socket driver: `n` fabric-ringed
/// switch hosts (fast_buggy early-reply adversaries) connected one at a
/// time (so proxy slot `i` = fabric index `i` = plan target `i`), the
/// chosen wire path, and a `TcpUpdateController` that starts the update
/// only once the whole fleet is attached.  `ScaleProxy::Legacy` with
/// `shards = 1` is the pre-shard oracle.
pub fn run_tcp_scale_cell_with(
    n_switches: usize,
    rules_per_switch: usize,
    seed: u64,
    shards: usize,
    wire_path: ScaleProxy,
    registry: &Registry,
) -> ScaleCellOutcome {
    let fault = scale_fault(&SwitchModel::fast_buggy(), seed);
    let drop_all = preinstalled_drop_all();
    let epoch = Instant::now();
    let plan = scale_plan(n_switches, rules_per_switch);
    let window = plan.len().max(1);
    let technique = MatrixTechnique::Rum(probing(&fault.model, window));
    let session = UpdateSession::new(plan, AckMode::RumAcks, window);
    let ctrl = TcpUpdateController::new_with_epoch(
        "127.0.0.1:0".parse().unwrap(),
        session,
        n_switches,
        epoch,
    );
    let ctrl_handle = ctrl.start().expect("controller starts");

    let proxy_config = ProxyConfig {
        listen_addr: "127.0.0.1:0".parse().unwrap(),
        controller_addr: ctrl_handle.local_addr,
    };
    let builder = RumBuilder::new(n_switches)
        .shards(shards)
        .technique(probing(&fault.model, window))
        .port_maps(ring_port_maps(n_switches));
    // Both wire paths serve the same engine; a tiny closure pair erases the
    // concrete handle type once the two calls the cell needs are captured.
    type OrderFn = Box<dyn Fn(SwitchId) -> Vec<u64>>;
    let (proxy_addr, order_for, shutdown_proxy): (_, OrderFn, Box<dyn FnOnce()>) = match wire_path {
        ScaleProxy::EventLoop => {
            let h = RumTcpProxy::new(proxy_config, builder)
                .start()
                .expect("event-loop proxy starts");
            let h = std::rc::Rc::new(h);
            let order = std::rc::Rc::clone(&h);
            (
                h.local_addr,
                Box::new(move |sw| order.confirmed_order_for(sw)) as OrderFn,
                Box::new(move || {
                    std::rc::Rc::into_inner(h)
                        .expect("order closure dropped first")
                        .shutdown()
                }) as Box<dyn FnOnce()>,
            )
        }
        ScaleProxy::Legacy => {
            let h = LegacyRumTcpProxy::new(proxy_config, builder)
                .start()
                .expect("legacy proxy starts");
            let h = std::rc::Rc::new(h);
            let order = std::rc::Rc::clone(&h);
            (
                h.local_addr,
                Box::new(move |sw| order.confirmed_order_for(sw)) as OrderFn,
                Box::new(move || {
                    std::rc::Rc::into_inner(h)
                        .expect("order closure dropped first")
                        .shutdown()
                }) as Box<dyn FnOnce()>,
            )
        }
    };

    let fabric = Fabric::new();
    for i in 0..n_switches {
        fabric.link(i, RING_OUT_PORT, (i + 1) % n_switches, RING_IN_PORT);
    }
    let mut hosts = Vec::with_capacity(n_switches);
    for i in 0..n_switches {
        let host = spawn_switch_with(
            proxy_addr,
            fault.model.clone(),
            SwitchHostOptions {
                faults: fault.faults.clone(),
                epoch: Some(epoch),
                fabric: Some((fabric.clone(), i)),
                preinstall: vec![drop_all.clone()],
                ..Default::default()
            },
        )
        .expect("fleet switch connects");
        assert!(
            wait_for(|| ctrl_handle.connections() > i, Duration::from_secs(10)),
            "switch {i} of {n_switches} did not reach the controller"
        );
        hosts.push(host);
    }

    let _ = ctrl_handle.wait_for_outcome(scale_budget(n_switches));
    let (confirmations, completed_at, update_start) = ctrl_handle.with_session(|s| {
        (
            s.confirmation_times().clone(),
            s.completed_at(),
            s.send_times().values().min().copied(),
        )
    });
    let per_switch_orders: Vec<Vec<u64>> = (0..n_switches)
        .map(|i| order_for(SwitchId::new(i)))
        .collect();
    drop(order_for);
    ctrl_handle.shutdown();
    shutdown_proxy();
    for h in &hosts {
        h.stop();
    }
    let truths: Vec<GroundTruth> = hosts.into_iter().map(|h| h.join().truth).collect();

    let completion_ms = match (completed_at, update_start) {
        (Some(done), Some(start)) => Some(done.saturating_sub(start).as_secs_f64() * 1e3),
        _ => None,
    };
    ScaleCellOutcome {
        cell: classify_scale(
            "tcp",
            &fault,
            &technique,
            &scale_cookies(n_switches, rules_per_switch),
            &confirmations,
            &truths,
            completion_ms,
            registry,
        ),
        per_switch_orders,
    }
}

/// The multi-tenant session soak over the sharded proxy at fleet scale:
/// tenant `t` targets switch `t % n` of an `n`-switch early-reply ring, so
/// the whole fleet carries tenant load concurrently.  Confirmations are
/// judged per tenant against the **target switch's** ground truth; the
/// record carries `switches = n` (schema 8).
pub fn run_tcp_scale_soak(
    cfg: &SoakConfig,
    n_switches: usize,
    seed_registry: &Arc<Registry>,
) -> SoakOutcome {
    let registry = seed_registry;
    let fault = scale_fault(&SwitchModel::fast_buggy(), cfg.seed);
    let drop_all = preinstalled_drop_all();
    let epoch = Instant::now();

    let mut ctrl = TcpMuxController::new_with_epoch(
        "127.0.0.1:0".parse().unwrap(),
        mux_config(cfg),
        n_switches,
        epoch,
    );
    ctrl.mux_mut().attach_metrics(registry);
    let handle = ctrl.start().expect("mux controller starts");

    let proxy = RumTcpProxy::new(
        ProxyConfig {
            listen_addr: "127.0.0.1:0".parse().unwrap(),
            controller_addr: handle.local_addr,
        },
        RumBuilder::new(n_switches)
            .shards(SCALE_SHARDS)
            .technique(probing(&fault.model, cfg.global_window))
            .port_maps(ring_port_maps(n_switches)),
    );
    let proxy_handle = proxy.start().expect("proxy starts");

    let fabric = Fabric::new();
    for i in 0..n_switches {
        fabric.link(i, RING_OUT_PORT, (i + 1) % n_switches, RING_IN_PORT);
    }
    let mut hosts = Vec::with_capacity(n_switches);
    for i in 0..n_switches {
        let host = spawn_switch_with(
            proxy_handle.local_addr,
            fault.model.clone(),
            SwitchHostOptions {
                faults: fault.faults.clone(),
                epoch: Some(epoch),
                fabric: Some((fabric.clone(), i)),
                preinstall: vec![drop_all.clone()],
                ..Default::default()
            },
        )
        .expect("fleet switch connects");
        assert!(
            wait_for(|| handle.connections() > i, Duration::from_secs(10)),
            "switch {i} of {n_switches} did not reach the controller"
        );
        hosts.push(host);
    }

    let started = Instant::now();
    let mut sids = Vec::with_capacity(cfg.sessions);
    for t in 0..cfg.sessions {
        sids.push(
            handle
                .submit(tenant_plan_for(
                    t,
                    cfg.mods_per_session,
                    t % n_switches,
                    RING_OUT_PORT,
                ))
                .expect("disjoint tenant plans all admit"),
        );
    }
    handle.wait_all_done(cfg.budget);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let (tenants, strays) =
        handle.with_mux(|m| (collect(m, &sids, cfg.mods_per_session), m.stray_acks()));

    handle.shutdown();
    proxy_handle.shutdown();
    for h in &hosts {
        h.stop();
    }
    let truths: Vec<GroundTruth> = hosts.into_iter().map(|h| h.join().truth).collect();
    let truth_refs: Vec<&GroundTruth> = (0..tenants.len())
        .map(|t| &truths[t % n_switches])
        .collect();

    let record = summarise(
        "tcp",
        fault.name,
        n_switches as u64,
        &tenants,
        &truth_refs,
        strays,
        wall_ms,
        registry,
    );
    SoakOutcome {
        record,
        per_session_orders: tenants.into_iter().map(|t| t.order).collect(),
    }
}

/// A quick sanity summary of a scale cell's confirm latencies (used by the
/// bench binary's progress output): p50/p99 of confirmation times relative
/// to the first send.
pub fn confirm_spread_ms(confirmations: &HashMap<u64, Duration>) -> (f64, f64) {
    let Some(&first) = confirmations.values().min() else {
        return (f64::NAN, f64::NAN);
    };
    let rel: Vec<f64> = confirmations
        .values()
        .map(|&d| d.saturating_sub(first).as_secs_f64() * 1e3)
        .collect();
    (
        percentile(&rel, 0.5).unwrap_or(f64::NAN),
        percentile(&rel, 0.99).unwrap_or(f64::NAN),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ring maps are closed, consistent and injectable: every switch sees
    /// its predecessor on port 1, its successor on port 2, and probes ride
    /// in through the predecessor's out-port.
    #[test]
    fn ring_port_maps_are_consistent() {
        let maps = ring_port_maps(5);
        assert_eq!(maps.len(), 5);
        for (i, map) in maps.iter().enumerate() {
            let prev = SwitchId::new((i + 4) % 5);
            let next = SwitchId::new((i + 1) % 5);
            assert_eq!(map.next_hop(RING_IN_PORT), Some(prev));
            assert_eq!(map.next_hop(RING_OUT_PORT), Some(next));
            assert_eq!(map.inject_via, Some((prev, RING_OUT_PORT)));
        }
        // The two-switch ring degenerates to a pair wired both ways.
        let pair = ring_port_maps(2);
        assert_eq!(pair[0].next_hop(RING_OUT_PORT), Some(SwitchId::new(1)));
        assert_eq!(pair[1].next_hop(RING_OUT_PORT), Some(SwitchId::new(0)));
    }

    /// The fleet plan spreads rules round-robin across switches with unique
    /// cookies disjoint from the preinstalled drop-all.
    #[test]
    fn scale_plan_spreads_rules_across_the_fleet() {
        let plan = scale_plan(4, 2);
        assert_eq!(plan.len(), 8);
        let cookies = scale_cookies(4, 2);
        assert_eq!(cookies.len(), 8);
        assert_eq!(cookies[0], (COOKIE_NEW_RULE_BASE, 0));
        assert_eq!(cookies[5], (COOKIE_NEW_RULE_BASE + 5, 1));
        for (cookie, sw) in &cookies {
            assert!(*cookie > COOKIE_PREINSTALLED);
            let m = plan.get(*cookie).expect("cookie is a plan id");
            assert_eq!(m.target, *sw);
            assert_eq!(m.flow_mod.cookie, *cookie);
        }
    }

    /// A reduced-scale simnet fleet run: 8 early-reply switches behind the
    /// sharded engine, general probing, zero false and zero missed acks —
    /// with every switch (not just one device under test) carrying rules.
    #[test]
    fn simnet_scale_cell_is_sound_at_reduced_scale() {
        let registry = Registry::new();
        let out = run_simnet_scale_cell(8, 2, 42, &registry);
        let cell = &out.cell;
        assert_eq!(out.per_switch_orders.len(), 8);
        assert_eq!(
            out.per_switch_orders.iter().map(Vec::len).sum::<usize>(),
            16,
            "every planned rule appears in exactly one switch's confirm order"
        );
        assert_eq!(cell.switches, 8);
        assert_eq!(cell.planned, 16);
        assert_eq!(cell.false_acks, 0, "{cell:?}");
        assert_eq!(cell.missed_acks, 0, "{cell:?}");
        assert!(cell.completion_ms.is_some(), "{cell:?}");
        let snap = registry.snapshot();
        assert_eq!(
            snap.counters["scale.simnet.8.early_reply.rum-general.false_acks"],
            0
        );
    }

    /// The same reduced-scale fleet over real sockets: 8 fabric-ringed
    /// early-reply hosts, the sharded event-loop proxy, still zero false
    /// and zero missed acks.
    #[test]
    fn tcp_scale_cell_is_sound_at_reduced_scale() {
        let registry = Registry::new();
        let out = run_tcp_scale_cell(8, 2, 42, &registry);
        let cell = &out.cell;
        assert_eq!(out.per_switch_orders.len(), 8);
        assert_eq!(cell.switches, 8);
        assert_eq!(cell.planned, 16);
        assert_eq!(cell.false_acks, 0, "{cell:?}");
        assert_eq!(cell.missed_acks, 0, "{cell:?}");
        assert!(cell.completion_ms.is_some(), "{cell:?}");
    }

    /// The fleet-scale soak at reduced scale: tenants spread across an
    /// 8-switch buggy ring, zero false / missed / stray acks.
    #[test]
    fn tcp_scale_soak_is_sound_at_reduced_scale() {
        let cfg = SoakConfig {
            sessions: 12,
            mods_per_session: 2,
            budget: Duration::from_secs(20),
            global_window: 8,
            ..SoakConfig::default()
        };
        let registry = Arc::new(Registry::new());
        let outcome = run_tcp_scale_soak(&cfg, 8, &registry);
        let r = &outcome.record;
        assert_eq!(r.switches, 8, "{r:?}");
        assert_eq!(r.completed, 12, "{r:?}");
        assert_eq!(r.false_acks, 0, "{r:?}");
        assert_eq!(r.missed_acks, 0, "{r:?}");
        assert_eq!(r.stray_acks, 0, "{r:?}");
    }
}
