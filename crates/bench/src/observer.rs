//! Rendering for `rumtop`, the live terminal observer of a running RUM
//! deployment.
//!
//! Pure functions from a [`telemetry::Snapshot`] to text, so the dashboard
//! layout is unit-testable without sockets; the `rumtop` binary adds the
//! scrape loop and the ANSI screen refresh around [`render`].
//!
//! The layout groups the shared metrics vocabulary by origin:
//!
//! * `rum.sw{i}.*` — one row per monitored switch (engine counters, the
//!   in-flight gauge and confirm-latency quantiles);
//! * `session.*` — the consistent-update session, one line;
//! * `sessiond.*` — the multi-tenant session multiplexer: one global line
//!   (admission, scheduling and stray-ack counters plus confirm-latency
//!   quantiles) and one row per instrumented tenant (`sessiond.t{i}.*`),
//!   shown only when a mux is attached;
//! * `resync.*` — the declarative reconciler: readback rounds, delta
//!   mods, re-requests, the convergence verdict and time-to-convergence
//!   quantiles, shown only when a reconciler is attached;
//! * `proxy.*` — transport counters of the TCP proxy, one line;
//! * `proxy.shard{k}.*` — one row per engine shard of the sharded proxy
//!   (drain batches, messages emitted, live outbox depth), shown only when
//!   the event-loop proxy is attached;
//! * `matrix.*` — scenario-matrix verdict counters, one line per cell,
//!   shown only when present (live sweeps).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use telemetry::Snapshot;

/// Per-switch view assembled from `rum.sw{i}.*` metrics.
#[derive(Debug, Default, Clone)]
struct SwitchRow {
    unconfirmed: i64,
    controller_flow_mods: u64,
    proxy_flow_mods: u64,
    probes_injected: u64,
    probes_consumed: u64,
    acks_sent: u64,
    barriers_released: u64,
    reconnects: u64,
    p50_us: Option<u64>,
    p99_us: Option<u64>,
    p999_us: Option<u64>,
}

/// Splits a `rum.sw{i}.{field}` metric name into its switch index and
/// field; `None` for names outside the per-switch namespace.
fn switch_field(name: &str) -> Option<(usize, &str)> {
    let rest = name.strip_prefix("rum.sw")?;
    let dot = rest.find('.')?;
    let index: usize = rest[..dot].parse().ok()?;
    Some((index, &rest[dot + 1..]))
}

fn switch_rows(snapshot: &Snapshot) -> BTreeMap<usize, SwitchRow> {
    let mut rows: BTreeMap<usize, SwitchRow> = BTreeMap::new();
    for (name, &value) in &snapshot.counters {
        let Some((index, field)) = switch_field(name) else {
            continue;
        };
        let row = rows.entry(index).or_default();
        match field {
            "controller_flow_mods" => row.controller_flow_mods = value,
            "proxy_flow_mods" => row.proxy_flow_mods = value,
            "probes_injected" => row.probes_injected = value,
            "probes_consumed" => row.probes_consumed = value,
            "acks_sent" => row.acks_sent = value,
            "barrier_replies_released" => row.barriers_released = value,
            "reconnects" => row.reconnects = value,
            _ => {}
        }
    }
    for (name, &value) in &snapshot.gauges {
        if let Some((index, "unconfirmed")) = switch_field(name) {
            rows.entry(index).or_default().unconfirmed = value;
        }
    }
    for (name, summary) in &snapshot.histograms {
        if let Some((index, "confirm_latency_us")) = switch_field(name) {
            let row = rows.entry(index).or_default();
            if summary.count > 0 {
                row.p50_us = Some(summary.p50);
                row.p99_us = Some(summary.p99);
                row.p999_us = Some(summary.p999);
            }
        }
    }
    rows
}

fn fmt_quantile(q: Option<u64>) -> String {
    match q {
        Some(v) => v.to_string(),
        None => "-".to_string(),
    }
}

/// Renders one snapshot as the `rumtop` dashboard body (no ANSI control
/// codes — the binary owns the screen refresh).
pub fn render(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    let rows = switch_rows(snapshot);
    let _ = writeln!(
        out,
        "RUM live telemetry — {} switch{}",
        rows.len(),
        if rows.len() == 1 { "" } else { "es" }
    );
    if !rows.is_empty() {
        let _ = writeln!(
            out,
            "{:<6}{:>9}{:>10}{:>10}{:>8}{:>8}{:>7}{:>9}{:>7}{:>9}{:>9}{:>10}",
            "switch",
            "inflight",
            "ctrl-mods",
            "rum-mods",
            "probes",
            "caught",
            "acks",
            "barriers",
            "reconn",
            "p50(us)",
            "p99(us)",
            "p99.9(us)",
        );
        for (index, row) in &rows {
            let _ = writeln!(
                out,
                "{:<6}{:>9}{:>10}{:>10}{:>8}{:>8}{:>7}{:>9}{:>7}{:>9}{:>9}{:>10}",
                format!("sw{index}"),
                row.unconfirmed,
                row.controller_flow_mods,
                row.proxy_flow_mods,
                row.probes_injected,
                row.probes_consumed,
                row.acks_sent,
                row.barriers_released,
                row.reconnects,
                fmt_quantile(row.p50_us),
                fmt_quantile(row.p99_us),
                fmt_quantile(row.p999_us),
            );
        }
    }

    let session_counter = |field: &str| {
        snapshot
            .counters
            .get(&format!("session.{field}"))
            .copied()
            .unwrap_or(0)
    };
    if snapshot.counters.keys().any(|k| k.starts_with("session.")) {
        let mut line = format!(
            "session: sent {}  confirmed {}  failed {}  retries {}  rollbacks {}  in-flight {}",
            session_counter("mods_sent"),
            session_counter("mods_confirmed"),
            session_counter("mods_failed"),
            session_counter("retries"),
            session_counter("rollbacks_sent"),
            snapshot
                .gauges
                .get("session.in_flight")
                .copied()
                .unwrap_or(0),
        );
        if let Some(h) = snapshot.histograms.get("session.confirm_latency_us") {
            if h.count > 0 {
                let _ = write!(line, "  confirm p50 {}us p99 {}us", h.p50, h.p99);
            }
        }
        let _ = writeln!(out, "{line}");
    }

    render_sessiond(snapshot, &mut out);
    render_resync(snapshot, &mut out);

    let proxy_counter = |field: &str| {
        snapshot
            .counters
            .get(&format!("proxy.{field}"))
            .copied()
            .unwrap_or(0)
    };
    if snapshot.counters.keys().any(|k| k.starts_with("proxy.")) {
        let _ = writeln!(
            out,
            "proxy: conns {}  msgs sw {} ctrl {}  bytes sw {} ctrl {}  drains {}  timers {}",
            proxy_counter("connections"),
            proxy_counter("to_switch_msgs"),
            proxy_counter("to_controller_msgs"),
            proxy_counter("to_switch_bytes"),
            proxy_counter("to_controller_bytes"),
            proxy_counter("drains"),
            proxy_counter("timers_fired"),
        );
    }

    render_shards(snapshot, &mut out);

    let matrix: Vec<(&String, &u64)> = snapshot
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("matrix."))
        .collect();
    if !matrix.is_empty() {
        let _ = writeln!(out, "matrix verdicts:");
        for (name, value) in matrix {
            let _ = writeln!(out, "  {name} = {value}");
        }
    }
    out
}

/// Splits a `proxy.shard{k}.{field}` metric name into its shard index and
/// field; `None` for names outside the per-shard namespace (including the
/// per-slot `proxy.sw{i}.*` depth gauges).
fn shard_field(name: &str) -> Option<(usize, &str)> {
    let rest = name.strip_prefix("proxy.shard")?;
    let dot = rest.find('.')?;
    let index: usize = rest[..dot].parse().ok()?;
    Some((index, &rest[dot + 1..]))
}

/// The sharded-proxy section: one row per engine shard with its drain
/// batches, messages emitted and live outbox depth.  Silent when the
/// legacy thread-per-connection proxy (no shard metrics) is attached.
fn render_shards(snapshot: &Snapshot, out: &mut String) {
    #[derive(Default)]
    struct ShardRow {
        drains: u64,
        msgs: u64,
        outbox_depth: i64,
    }
    let mut shards: BTreeMap<usize, ShardRow> = BTreeMap::new();
    for (name, &value) in &snapshot.counters {
        match shard_field(name) {
            Some((index, "drains")) => shards.entry(index).or_default().drains = value,
            Some((index, "msgs")) => shards.entry(index).or_default().msgs = value,
            _ => {}
        }
    }
    for (name, &value) in &snapshot.gauges {
        if let Some((index, "outbox_depth")) = shard_field(name) {
            shards.entry(index).or_default().outbox_depth = value;
        }
    }
    if shards.is_empty() {
        return;
    }
    let _ = writeln!(out, "shards ({}):", shards.len());
    for (index, row) in &shards {
        let _ = writeln!(
            out,
            "  {:<8} drains {:<8} msgs {:<10} outbox {}",
            format!("shard{index}"),
            row.drains,
            row.msgs,
            row.outbox_depth,
        );
    }
}

/// The declarative-reconciler section: one line with the readback loop's
/// counters and the convergence verdict.  Silent when no reconciler is
/// attached.
fn render_resync(snapshot: &Snapshot, out: &mut String) {
    if !snapshot.counters.keys().any(|k| k.starts_with("resync."))
        && !snapshot.gauges.keys().any(|k| k.starts_with("resync."))
    {
        return;
    }
    let counter = |field: &str| {
        snapshot
            .counters
            .get(&format!("resync.{field}"))
            .copied()
            .unwrap_or(0)
    };
    let gauge = |field: &str| {
        snapshot
            .gauges
            .get(&format!("resync.{field}"))
            .copied()
            .unwrap_or(0)
    };
    let verdict = if gauge("converged") > 0 {
        "converged"
    } else {
        "diverged"
    };
    let mut line = format!(
        "resync: rounds {}  delta-mods {}  re-requests {}  final-diff {}  {}",
        counter("rounds"),
        counter("delta_mods"),
        counter("re_requests"),
        gauge("final_diff"),
        verdict,
    );
    if let Some(h) = snapshot.histograms.get("resync.time_to_convergence_us") {
        if h.count > 0 {
            let _ = write!(line, "  t-conv p50 {}us p99 {}us", h.p50, h.p99);
        }
    }
    let _ = writeln!(out, "{line}");
}

/// Splits a `sessiond.t{i}.{field}` metric name into its tenant index and
/// field; `None` for names outside the per-tenant namespace (including the
/// mux-global `sessiond.*` metrics).
fn tenant_field(name: &str) -> Option<(usize, &str)> {
    let rest = name.strip_prefix("sessiond.t")?;
    let dot = rest.find('.')?;
    let index: usize = rest[..dot].parse().ok()?;
    Some((index, &rest[dot + 1..]))
}

/// The multi-tenant mux section: one global line plus a row per
/// instrumented tenant.  Silent when no `SessionMux` is attached.
fn render_sessiond(snapshot: &Snapshot, out: &mut String) {
    if !snapshot.counters.keys().any(|k| k.starts_with("sessiond."))
        && !snapshot.gauges.keys().any(|k| k.starts_with("sessiond."))
    {
        return;
    }
    let counter = |field: &str| {
        snapshot
            .counters
            .get(&format!("sessiond.{field}"))
            .copied()
            .unwrap_or(0)
    };
    let gauge = |field: &str| {
        snapshot
            .gauges
            .get(&format!("sessiond.{field}"))
            .copied()
            .unwrap_or(0)
    };
    let mut line = format!(
        "sessiond: active {}  queued {}  in-flight {}  admitted {}  completed {}  \
         aborted {}  conflicts {} serialized / {} rejected  strays {}",
        gauge("active"),
        gauge("queued"),
        gauge("in_flight"),
        counter("admitted"),
        counter("completed"),
        counter("aborted"),
        counter("serialized_conflict"),
        counter("rejected_conflict"),
        counter("stray_acks"),
    );
    if let Some(h) = snapshot.histograms.get("sessiond.confirm_latency_us") {
        if h.count > 0 {
            let _ = write!(line, "  confirm p50 {}us p99 {}us", h.p50, h.p99);
        }
    }
    let _ = writeln!(out, "{line}");

    // Per-tenant rows (only the first `per_tenant_metrics` tenants are
    // instrumented by the mux; the rest fold into the globals above).
    #[derive(Default)]
    struct TenantRow {
        in_flight: i64,
        confirmed: u64,
    }
    let mut tenants: BTreeMap<usize, TenantRow> = BTreeMap::new();
    for (name, &value) in &snapshot.counters {
        if let Some((index, "confirmed")) = tenant_field(name) {
            tenants.entry(index).or_default().confirmed = value;
        }
    }
    for (name, &value) in &snapshot.gauges {
        if let Some((index, "in_flight")) = tenant_field(name) {
            tenants.entry(index).or_default().in_flight = value;
        }
    }
    for (index, row) in &tenants {
        let _ = writeln!(
            out,
            "  {:<5} in-flight {:<6} confirmed {}",
            format!("t{index}"),
            row.in_flight,
            row.confirmed,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::Registry;

    fn populated_registry() -> Registry {
        let registry = Registry::new();
        registry.counter("rum.sw0.controller_flow_mods").add(10);
        registry.counter("rum.sw0.proxy_flow_mods").add(12);
        registry.counter("rum.sw0.acks_sent").add(10);
        registry.counter("rum.sw1.reconnects").add(2);
        registry.gauge("rum.sw0.unconfirmed").set(3);
        let h = registry.histogram("rum.sw0.confirm_latency_us");
        for v in [100, 200, 300] {
            h.record(v);
        }
        registry.counter("session.mods_sent").add(20);
        registry.counter("session.mods_confirmed").add(18);
        registry.gauge("session.in_flight").set(2);
        registry.counter("proxy.connections").add(3);
        registry
            .counter("matrix.simnet.early_reply.barrier-only.false_acks")
            .add(4);
        registry
    }

    #[test]
    fn render_groups_switches_session_proxy_and_matrix() {
        let text = render(&populated_registry().snapshot());
        assert!(text.contains("2 switches"), "{text}");
        assert!(text.contains("sw0"), "{text}");
        assert!(text.contains("sw1"), "{text}");
        assert!(text.contains("session: sent 20  confirmed 18"), "{text}");
        assert!(text.contains("proxy: conns 3"), "{text}");
        assert!(
            text.contains("matrix.simnet.early_reply.barrier-only.false_acks = 4"),
            "{text}"
        );
    }

    #[test]
    fn switch_rows_pick_up_counters_gauges_and_quantiles() {
        let rows = switch_rows(&populated_registry().snapshot());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[&0].controller_flow_mods, 10);
        assert_eq!(rows[&0].unconfirmed, 3);
        assert_eq!(rows[&1].reconnects, 2);
        assert!(rows[&0].p50_us.is_some());
        assert!(rows[&1].p50_us.is_none(), "no latency data for sw1");
    }

    #[test]
    fn empty_snapshots_render_without_panicking() {
        let text = render(&Registry::new().snapshot());
        assert!(text.contains("0 switch"), "{text}");
        assert!(!text.contains("session:"), "{text}");
    }

    #[test]
    fn unrelated_names_are_not_misparsed_as_switches() {
        assert_eq!(switch_field("rum.swx.acks_sent"), None);
        assert_eq!(switch_field("proxy.sw0.depth"), None);
        assert_eq!(switch_field("rum.sw12"), None);
        assert_eq!(switch_field("rum.sw12.acks_sent"), Some((12, "acks_sent")));
    }

    #[test]
    fn sessiond_section_renders_globals_and_tenant_rows() {
        let registry = Registry::new();
        registry.counter("sessiond.admitted").add(3);
        registry.counter("sessiond.completed").add(1);
        registry.counter("sessiond.serialized_conflict").add(1);
        registry.gauge("sessiond.active").set(2);
        registry.gauge("sessiond.queued").set(1);
        registry.gauge("sessiond.in_flight").set(4);
        let h = registry.histogram("sessiond.confirm_latency_us");
        h.record(500);
        registry.gauge("sessiond.t0.in_flight").set(1);
        registry.counter("sessiond.t0.confirmed").add(5);
        registry.counter("sessiond.t17.confirmed").add(2);
        let text = render(&registry.snapshot());
        assert!(
            text.contains("sessiond: active 2  queued 1  in-flight 4  admitted 3"),
            "{text}"
        );
        assert!(
            text.contains("conflicts 1 serialized / 0 rejected"),
            "{text}"
        );
        assert!(text.contains("confirm p50"), "{text}");
        assert!(
            text.contains("t0    in-flight 1      confirmed 5"),
            "{text}"
        );
        assert!(text.contains("t17"), "{text}");
    }

    #[test]
    fn sessiond_section_is_silent_without_a_mux() {
        let text = render(&populated_registry().snapshot());
        assert!(!text.contains("sessiond:"), "{text}");
    }

    #[test]
    fn resync_section_renders_counters_verdict_and_quantiles() {
        let registry = Registry::new();
        registry.counter("resync.rounds").add(3);
        registry.counter("resync.delta_mods").add(5);
        registry.counter("resync.re_requests").add(1);
        registry.gauge("resync.converged").set(1);
        registry.gauge("resync.final_diff").set(0);
        registry
            .histogram("resync.time_to_convergence_us")
            .record(42_000);
        let text = render(&registry.snapshot());
        assert!(
            text.contains("resync: rounds 3  delta-mods 5  re-requests 1  final-diff 0  converged"),
            "{text}"
        );
        assert!(text.contains("t-conv p50"), "{text}");
        // A wiped table the reconciler never repaired reads as diverged.
        registry.gauge("resync.converged").set(0);
        registry.gauge("resync.final_diff").set(4);
        let text = render(&registry.snapshot());
        assert!(text.contains("final-diff 4  diverged"), "{text}");
    }

    #[test]
    fn resync_section_is_silent_without_a_reconciler() {
        let text = render(&populated_registry().snapshot());
        assert!(!text.contains("resync:"), "{text}");
    }

    #[test]
    fn shard_section_renders_one_row_per_shard() {
        let registry = populated_registry();
        registry.counter("proxy.shard0.drains").add(40);
        registry.counter("proxy.shard0.msgs").add(120);
        registry.counter("proxy.shard1.drains").add(38);
        registry.gauge("proxy.shard1.outbox_depth").set(7);
        let text = render(&registry.snapshot());
        assert!(text.contains("shards (2):"), "{text}");
        assert!(text.contains("shard0"), "{text}");
        assert!(text.contains("drains 40"), "{text}");
        assert!(text.contains("outbox 7"), "{text}");
    }

    #[test]
    fn shard_section_is_silent_for_the_legacy_proxy() {
        let text = render(&populated_registry().snapshot());
        assert!(!text.contains("shards ("), "{text}");
    }

    #[test]
    fn shard_names_are_parsed_strictly() {
        assert_eq!(shard_field("proxy.shard2.drains"), Some((2, "drains")));
        assert_eq!(shard_field("proxy.shard2.msgs"), Some((2, "msgs")));
        assert_eq!(shard_field("proxy.sw0.switch_outbox_depth"), None);
        assert_eq!(shard_field("proxy.shard2"), None);
        assert_eq!(shard_field("rum.shard2.drains"), None);
    }

    #[test]
    fn tenant_names_are_parsed_strictly() {
        assert_eq!(
            tenant_field("sessiond.t3.confirmed"),
            Some((3, "confirmed"))
        );
        assert_eq!(
            tenant_field("sessiond.t3.in_flight"),
            Some((3, "in_flight"))
        );
        assert_eq!(tenant_field("sessiond.total.confirmed"), None);
        assert_eq!(tenant_field("sessiond.t3"), None);
        assert_eq!(tenant_field("session.t3.confirmed"), None);
    }
}
