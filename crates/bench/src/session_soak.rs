//! The multi-tenant session soak: hundreds of concurrent tenant sessions
//! multiplexed through one `sessiond::SessionMux` over a misbehaving switch
//! fleet — the "millions of users" workload at benchmark scale.
//!
//! Each tenant owns a small dependency-free plan of rules in its own match
//! space (so admission never serialises them); every plan targets the same
//! device under test, behind the RUM proxy running **general probing** —
//! the technique the paper proves never acknowledges falsely.  The soak
//! streams all plans into the mux up front, so the whole tenant population
//! is concurrently admitted and contends for the shared outstanding-window
//! budget from the first instant, then waits a bounded wall-clock budget
//! for completion.
//!
//! The harness runs on **both drivers** of the mux — the deterministic
//! simulator ([`sessiond::MuxController`]) and real sockets
//! ([`rum_tcp::TcpMuxController`]) — with the same namespace scheme, so the
//! per-session confirm orders are comparable across drivers for the same
//! seed.  Every confirmation is classified against the device under test's
//! data-plane ground truth, exactly like the scenario matrix: a confirm
//! while the rule was not in the data plane is a **false ack**, a planned
//! rule never confirmed inside the budget is a **missed ack**.  The verdict
//! counters flow through the telemetry registry
//! (`soak.{driver}.{fault}.{false_acks,missed_acks}`), and per-modification
//! confirm latencies feed the tail percentiles (p50/p99/p99.9) of the
//! `session_soak` section of `BENCH_results.json` (schema 6).

use crate::report::{percentile, SessionSoakRecord};
use crate::scenario_matrix::{restart_reconnect_delay, tcp_port_maps, FaultModel};
use controller::scenarios::{
    bulk_ports, BulkUpdateScenario, COOKIE_PREINSTALLED, DROP_ALL_PRIORITY, FLOW_RULE_PRIORITY,
};
use controller::{AckMode, SessionOutcome, UpdatePlan};
use ofswitch::{GroundTruth, SwitchModel};
use openflow::messages::FlowMod;
use openflow::{Action, OfMatch};
use rum::{deploy, RumBuilder, TechniqueConfig};
use rum_tcp::{
    spawn_switch_with, wait_for, Fabric, ProxyConfig, RumTcpProxy, SwitchHostOptions,
    TcpMuxController,
};
use sessiond::{MuxConfig, MuxController, SessionId, SessionMux};
use simnet::{OpenFlowSwitch, SimTime, Simulator};
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::{Duration, Instant};
use telemetry::Registry;

/// Parameters of one soak run.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Concurrent tenant sessions (the acceptance bar is ≥ 200 on TCP).
    pub sessions: usize,
    /// Modifications per tenant plan (all dependency-free, all targeting
    /// the device under test).
    pub mods_per_session: usize,
    /// Simulator seed; also seeds the fault plan so verdicts are a pure
    /// function of `(seed, wire cookie)` on both drivers.
    pub seed: u64,
    /// Wall-clock budget of the TCP run; tenants not done by then are
    /// recorded as missed acks, never silently waited out.
    pub budget: Duration,
    /// The shared outstanding-window budget the scheduler divides fairly
    /// across tenants.
    pub global_window: usize,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            sessions: 200,
            mods_per_session: 3,
            seed: 42,
            budget: Duration::from_secs(45),
            global_window: 24,
        }
    }
}

/// Result of one soak run: the persisted record plus the per-session
/// confirm orders (registration order) for cross-driver equality checks.
#[derive(Debug, Clone)]
pub struct SoakOutcome {
    /// The `session_soak` row written to `BENCH_results.json`.
    pub record: SessionSoakRecord,
    /// Each tenant's confirm order (local plan ids), in registration order.
    pub per_session_orders: Vec<Vec<u64>>,
}

/// The headline adversary of the soak: the early-barrier-reply switch the
/// paper measures, with no extra faults layered on.  General probing must
/// produce **zero false and zero missed acks** against it.
pub fn early_reply_fault(base: &SwitchModel, seed: u64) -> FaultModel {
    crate::scenario_matrix::fault_models(base, seed, 1)
        .into_iter()
        .next()
        .expect("fault_models is never empty")
}

/// One tenant's plan: `mods` dependency-free rules in the tenant's own
/// `10.t.t.r` match space (disjoint across tenants, so admission never
/// conflicts), all targeting the device under test (switch reference 0) and
/// forwarding towards the downstream helper — the same rule shape the bulk
/// scenario uses, so the probing fabric carries the probes.
pub fn tenant_plan(tenant: usize, mods: usize) -> UpdatePlan {
    tenant_plan_for(tenant, mods, 0, bulk_ports::B_TO_C)
}

/// Like [`tenant_plan`] but targeting an arbitrary switch reference with an
/// explicit output port — the shape the sharded scale soak uses, where
/// tenant `t` lands on switch `t % n` of the ring and forwards to its
/// successor.
pub fn tenant_plan_for(
    tenant: usize,
    mods: usize,
    target: controller::plan::SwitchRef,
    out_port: u16,
) -> UpdatePlan {
    assert!(mods < 255, "per-tenant rule space is one /24");
    let mut plan = UpdatePlan::new();
    for r in 0..mods {
        let id = r as u64 + 1;
        plan.add(
            id,
            target,
            FlowMod::add(
                OfMatch::ipv4_pair(
                    Ipv4Addr::new(10, (tenant >> 8) as u8, (tenant & 0xff) as u8, r as u8 + 1),
                    Ipv4Addr::new(10, 200, 0, 1),
                ),
                FLOW_RULE_PRIORITY,
                vec![Action::output(out_port)],
            )
            // The wire cookie becomes `namespace base + id`, unique across
            // the whole fleet — the key the ground-truth join uses.
            .with_cookie(id),
        )
        .expect("tenant-local ids are unique");
    }
    plan
}

/// The mux configuration of the soak.  `session_window = 1` serialises each
/// tenant's own plan, so every per-session confirm order is fully
/// determined by the session's dispatch rule — the property the
/// cross-driver equality check rests on.  Concurrency comes from the tenant
/// population, not from within a session.
pub(crate) fn mux_config(cfg: &SoakConfig) -> MuxConfig {
    MuxConfig {
        ack_mode: AckMode::RumAcks,
        session_window: 1,
        global_window: cfg.global_window,
        quantum: 1,
        ..MuxConfig::default()
    }
}

/// General probing sized for the soak: the proxy must be able to probe the
/// whole released window concurrently, or overflow mods would fall back to
/// the delay heuristic and weaken the zero-false-acks claim.
pub(crate) fn probing(model: &SwitchModel, window: usize) -> TechniqueConfig {
    let lag = model.worst_case_dataplane_lag();
    TechniqueConfig::GeneralProbing {
        probe_interval: Duration::from_millis(10),
        max_outstanding: window.max(30),
        fallback_delay: lag + lag / 4,
    }
}

/// One tenant's run artefacts, read back from the mux after the run.
pub(crate) struct TenantResult {
    pub(crate) order: Vec<u64>,
    /// Per planned mod: (wire cookie, send time, confirm time).
    pub(crate) mods: Vec<(u64, Option<Duration>, Option<Duration>)>,
    pub(crate) completed: bool,
    pub(crate) aborted: bool,
}

/// Reads every tenant's confirmations, send times and outcome out of the
/// mux (both drivers expose the same `SessionMux` surface).
pub(crate) fn collect(mux: &SessionMux, sids: &[SessionId], mods: usize) -> Vec<TenantResult> {
    sids.iter()
        .map(|&sid| {
            let s = mux.session(sid).expect("admitted session exists");
            let base = mux.base(sid).unwrap_or(0);
            let confirms = s.confirmation_times();
            let sends = s.send_times();
            TenantResult {
                order: s.confirmed_order().to_vec(),
                mods: (1..=mods as u64)
                    .map(|id| {
                        (
                            base + id,
                            sends.get(&id).copied(),
                            confirms.get(&id).copied(),
                        )
                    })
                    .collect(),
                completed: matches!(mux.outcome(sid), Some(SessionOutcome::Completed { .. })),
                aborted: matches!(mux.outcome(sid), Some(SessionOutcome::Aborted { .. })),
            }
        })
        .collect()
}

/// Joins every tenant's confirmations against the device under test's
/// ground truth and aggregates the soak record.  Verdicts are driven
/// *through* the registry (`soak.{driver}.{fault}.*` counters, read back as
/// deltas), the same pattern the scenario matrix uses, so live telemetry
/// and the report can never disagree.
#[allow(clippy::too_many_arguments)] // private join of a run's artefacts
pub(crate) fn summarise(
    driver: &'static str,
    fault: &str,
    switches: u64,
    tenants: &[TenantResult],
    truths: &[&GroundTruth],
    stray_acks: u64,
    wall_ms: f64,
    registry: &Registry,
) -> SessionSoakRecord {
    assert_eq!(truths.len(), tenants.len(), "one ground truth per tenant");
    let false_ctr = registry.counter(&format!("soak.{driver}.{fault}.false_acks"));
    let missed_ctr = registry.counter(&format!("soak.{driver}.{fault}.missed_acks"));
    let (false_before, missed_before) = (false_ctr.get(), missed_ctr.get());
    let mut latencies_ms = Vec::new();
    let mut planned = 0u64;
    let mut confirmed = 0u64;
    for (t, truth) in tenants.iter().zip(truths) {
        for &(wire, send, confirm) in &t.mods {
            planned += 1;
            match confirm {
                Some(at) => {
                    confirmed += 1;
                    if !truth.active_at(wire, at) {
                        false_ctr.inc();
                    }
                    if let Some(sent) = send {
                        latencies_ms.push(at.saturating_sub(sent).as_secs_f64() * 1e3);
                    }
                }
                None => missed_ctr.inc(),
            }
        }
    }
    SessionSoakRecord {
        driver: driver.to_string(),
        fault: fault.to_string(),
        switches,
        sessions: tenants.len() as u64,
        completed: tenants.iter().filter(|t| t.completed).count() as u64,
        aborted: tenants.iter().filter(|t| t.aborted).count() as u64,
        planned_mods: planned,
        confirmed_mods: confirmed,
        false_acks: false_ctr.get() - false_before,
        missed_acks: missed_ctr.get() - missed_before,
        stray_acks,
        p50_confirm_ms: percentile(&latencies_ms, 0.5).unwrap_or(f64::NAN),
        p99_confirm_ms: percentile(&latencies_ms, 0.99).unwrap_or(f64::NAN),
        p999_confirm_ms: percentile(&latencies_ms, 0.999).unwrap_or(f64::NAN),
        wall_ms,
    }
}

/// When the simulated mux starts submitting the tenant population.
const SOAK_SIM_START: SimTime = SimTime::from_millis(10);

/// Simulated horizon: generous against the hp5406zl's ~250 mods/s and
/// 290 ms data-plane lag; an incomplete run reports missed acks instead of
/// hanging.
const SOAK_SIM_HORIZON: SimTime = SimTime::from_secs(120);

/// Runs the soak on the simulator driver (hp5406zl base model, simulated
/// time).  `wall_ms` is the simulated span from submission to the last
/// confirmation.
pub fn run_simnet_soak(
    cfg: &SoakConfig,
    fault: &FaultModel,
    registry: &Arc<Registry>,
) -> SoakOutcome {
    let mut sim = Simulator::new(cfg.seed);
    // The bulk chain (A — B — C) with an empty plan: topology, preinstalls
    // and fault wiring only; the tenants bring their own plans.
    let scenario = BulkUpdateScenario {
        n_rules: 0,
        packets_per_sec: 0,
        model: fault.model.clone(),
        faults: fault.faults.clone(),
        reconnect_delay: Some(restart_reconnect_delay(&fault.model)),
        ..Default::default()
    };
    let net = scenario.build(&mut sim);
    // Device under test first, matching the TCP driver's accept order.
    let switches = [net.sw_b, net.sw_a, net.sw_c];

    let mut ctrl = MuxController::new("soakd", mux_config(cfg), SOAK_SIM_START);
    ctrl.mux_mut().attach_metrics(registry);
    for t in 0..cfg.sessions {
        ctrl.add_plan(tenant_plan(t, cfg.mods_per_session));
    }
    let ctrl_id = sim.add_node(ctrl);
    let builder =
        RumBuilder::new(switches.len()).technique(probing(&fault.model, cfg.global_window));
    let (proxies, _handle) = deploy(&mut sim, builder, ctrl_id, &switches);
    sim.node_mut::<MuxController>(ctrl_id)
        .unwrap()
        .set_connections(vec![proxies[0]]);
    for (idx, sw) in switches.iter().enumerate() {
        sim.node_mut::<OpenFlowSwitch>(*sw)
            .unwrap()
            .connect_controller(proxies[idx]);
    }
    sim.run_until(SOAK_SIM_HORIZON);

    let ctrl = sim.node_ref::<MuxController>(ctrl_id).unwrap();
    let sids: Vec<SessionId> = ctrl
        .submission_results()
        .iter()
        .map(|r| *r.as_ref().expect("disjoint tenant plans all admit"))
        .collect();
    let tenants = collect(ctrl.mux(), &sids, cfg.mods_per_session);
    let truth = sim
        .node_ref::<OpenFlowSwitch>(net.sw_b)
        .unwrap()
        .behavior()
        .ground_truth()
        .clone();
    let start: Duration = SOAK_SIM_START.into();
    let wall_ms = tenants
        .iter()
        .flat_map(|t| t.mods.iter().filter_map(|&(_, _, c)| c))
        .max()
        .map(|last| last.saturating_sub(start).as_secs_f64() * 1e3)
        .unwrap_or(f64::NAN);
    let record = summarise(
        "simnet",
        fault.name,
        3,
        &tenants,
        &vec![&truth; tenants.len()],
        ctrl.mux().stray_acks(),
        wall_ms,
        registry,
    );
    SoakOutcome {
        record,
        per_session_orders: tenants.into_iter().map(|t| t.order).collect(),
    }
}

/// Runs the soak on the real-socket driver (fast_buggy base model, wall
/// clock): `TcpMuxController` behind the RUM TCP proxy, fabric-linked
/// switch hosts, all tenant plans submitted up front so the whole
/// population is concurrently in flight, then a bounded wait.
pub fn run_tcp_soak(cfg: &SoakConfig, fault: &FaultModel, registry: &Arc<Registry>) -> SoakOutcome {
    let epoch = Instant::now();
    let drop_all = FlowMod::add(OfMatch::wildcard_all(), DROP_ALL_PRIORITY, vec![])
        .with_cookie(COOKIE_PREINSTALLED);

    let mut ctrl =
        TcpMuxController::new_with_epoch("127.0.0.1:0".parse().unwrap(), mux_config(cfg), 3, epoch);
    ctrl.mux_mut().attach_metrics(registry);
    let handle = ctrl.start().expect("mux controller starts");

    let proxy = RumTcpProxy::new(
        ProxyConfig {
            listen_addr: "127.0.0.1:0".parse().unwrap(),
            controller_addr: handle.local_addr,
        },
        RumBuilder::new(3)
            .technique(probing(&fault.model, cfg.global_window))
            .port_maps(tcp_port_maps()),
    );
    let proxy_handle = proxy.start().expect("proxy starts");
    let switch_target = proxy_handle.local_addr;

    // The device under test always connects first (SwitchId/ConnId 0).
    let fabric = Fabric::new();
    fabric.link(0, 1, 1, 2); // B port1 <-> A port2
    fabric.link(0, 2, 2, 1); // B port2 <-> C port1
    let dut = spawn_switch_with(
        switch_target,
        fault.model.clone(),
        SwitchHostOptions {
            faults: fault.faults.clone(),
            epoch: Some(epoch),
            fabric: Some((fabric.clone(), 0)),
            preinstall: vec![drop_all.clone()],
            reconnect_delay: Some(restart_reconnect_delay(&fault.model)),
        },
    )
    .expect("device under test connects");
    assert!(
        wait_for(|| handle.connections() >= 1, Duration::from_secs(5)),
        "device under test did not reach the controller"
    );
    let mut helpers = Vec::new();
    for (i, helper_idx) in [(2usize, 1usize), (3, 2)] {
        let h = spawn_switch_with(
            switch_target,
            SwitchModel::faithful(),
            SwitchHostOptions {
                epoch: Some(epoch),
                fabric: Some((fabric.clone(), helper_idx)),
                preinstall: vec![drop_all.clone()],
                ..Default::default()
            },
        )
        .expect("helper switch connects");
        assert!(
            wait_for(|| handle.connections() >= i, Duration::from_secs(5)),
            "helper switch {helper_idx} did not reach the controller"
        );
        helpers.push(h);
    }

    let started = Instant::now();
    let mut sids = Vec::with_capacity(cfg.sessions);
    for t in 0..cfg.sessions {
        sids.push(
            handle
                .submit(tenant_plan(t, cfg.mods_per_session))
                .expect("disjoint tenant plans all admit"),
        );
    }
    handle.wait_all_done(cfg.budget);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let (tenants, strays) =
        handle.with_mux(|m| (collect(m, &sids, cfg.mods_per_session), m.stray_acks()));

    // Tear down: controller first, then the proxy, then the switch hosts
    // (the device under test's report carries the ground truth).
    handle.shutdown();
    proxy_handle.shutdown();
    dut.stop();
    for h in &helpers {
        h.stop();
    }
    let report = dut.join();
    for h in helpers {
        let _ = h.join();
    }

    let record = summarise(
        "tcp",
        fault.name,
        3,
        &tenants,
        &vec![&report.truth; tenants.len()],
        strays,
        wall_ms,
        registry,
    );
    SoakOutcome {
        record,
        per_session_orders: tenants.into_iter().map(|t| t.order).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tenant match spaces never collide, so admission never serialises.
    #[test]
    fn tenant_plans_are_disjoint() {
        let a = tenant_plan(3, 4);
        let b = tenant_plan(259, 4);
        assert_eq!(a.len(), 4);
        for m in a.mods() {
            for n in b.mods() {
                assert_ne!(
                    (&m.flow_mod.match_, m.flow_mod.priority),
                    (&n.flow_mod.match_, n.flow_mod.priority),
                    "tenants 3 and 259 must not overlap"
                );
            }
        }
    }

    /// A reduced-scale simnet soak under the headline early-reply fault:
    /// every tenant completes, zero false and zero missed acks, finite
    /// tails, and the verdict counters flow through the registry.
    #[test]
    fn simnet_soak_smoke_is_sound_under_early_replies() {
        let cfg = SoakConfig {
            sessions: 8,
            mods_per_session: 2,
            global_window: 6,
            ..SoakConfig::default()
        };
        let fault = early_reply_fault(&SwitchModel::hp5406zl(), cfg.seed);
        let registry = Arc::new(Registry::new());
        let outcome = run_simnet_soak(&cfg, &fault, &registry);
        let r = &outcome.record;
        assert_eq!(r.sessions, 8, "{r:?}");
        assert_eq!(r.completed, 8, "{r:?}");
        assert_eq!(r.false_acks, 0, "{r:?}");
        assert_eq!(r.missed_acks, 0, "{r:?}");
        assert_eq!(r.stray_acks, 0, "{r:?}");
        assert_eq!(r.confirmed_mods, 16, "{r:?}");
        assert!(r.p999_confirm_ms.is_finite(), "{r:?}");
        assert!(r.p50_confirm_ms <= r.p99_confirm_ms, "{r:?}");
        // session_window = 1 serialises each plan: in-order confirms.
        for order in &outcome.per_session_orders {
            assert_eq!(order, &vec![1, 2]);
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counters["soak.simnet.early_reply.false_acks"], 0);
        assert_eq!(snap.counters["sessiond.completed"], 8);
    }

    /// A reduced-scale TCP soak over real sockets: many concurrent tenants
    /// through the proxy against a buggy early-reply switch host, still
    /// zero false and zero missed acks under general probing.
    #[test]
    fn tcp_soak_smoke_is_sound_under_early_replies() {
        let cfg = SoakConfig {
            sessions: 6,
            mods_per_session: 2,
            budget: Duration::from_secs(15),
            global_window: 6,
            ..SoakConfig::default()
        };
        let fault = early_reply_fault(&SwitchModel::fast_buggy(), cfg.seed);
        let registry = Arc::new(Registry::new());
        let outcome = run_tcp_soak(&cfg, &fault, &registry);
        let r = &outcome.record;
        assert_eq!(r.completed, 6, "{r:?}");
        assert_eq!(r.false_acks, 0, "{r:?}");
        assert_eq!(r.missed_acks, 0, "{r:?}");
        assert_eq!(outcome.per_session_orders.len(), 6);
        for order in &outcome.per_session_orders {
            assert_eq!(order, &vec![1, 2]);
        }
    }
}
