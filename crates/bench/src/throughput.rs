//! Throughput workloads shared by the Criterion benches and the
//! `bench_results` binary: bulk flow-mod install into the (indexed and
//! linear-scan) flow tables, OpenFlow codec encode/decode, and sans-IO
//! engine drains.  Each workload returns the elapsed wall time for a known
//! number of operations so callers derive ops/sec however they aggregate.

use controller::{AckMode, SessionInput, UpdateSession};
use ofswitch::{FlowTable, LinearFlowTable};
use openflow::messages::FlowMod;
use openflow::{Action, OfCodec, OfMatch, OfMessage};
use rum::{Input, RumBuilder, SwitchId, TechniqueConfig};
use telemetry::{Recorder, Registry};

use std::net::Ipv4Addr;
use std::time::{Duration, Instant};

/// `n` flow-mod ADDs with pairwise-distinct matches at one priority — the
/// bulk-install shape of the paper's experiments (and the worst case for the
/// linear table's replace scan).
pub fn bulk_flow_mods(n: usize) -> Vec<FlowMod> {
    (0..n as u32)
        .map(|i| {
            FlowMod::add(
                OfMatch::ipv4_pair(
                    Ipv4Addr::new(10, (i >> 16) as u8, (i >> 8) as u8, i as u8),
                    Ipv4Addr::new(172, 16, 0, 1),
                ),
                100,
                vec![Action::output(2)],
            )
            .with_cookie(u64::from(i))
        })
        .collect()
}

/// Installs every flow-mod into a fresh indexed [`FlowTable`]; returns the
/// elapsed time for the `mods.len()` applies.
pub fn install_indexed(mods: &[FlowMod]) -> Duration {
    let mut table = FlowTable::new(0);
    let start = Instant::now();
    for fm in mods {
        table
            .apply(fm, std::time::Duration::ZERO)
            .expect("install succeeds");
    }
    let elapsed = start.elapsed();
    assert_eq!(table.len(), mods.len());
    elapsed
}

/// The identical indexed install with the telemetry hot-path operations
/// active: one sharded-counter increment and one per-thread recorder
/// observation per apply — exactly the shape of the instrumentation on the
/// proxy's message path — plus one gauge publish per run.  No clocks are
/// read per operation; every recorded value is already available from the
/// workload.  Comparing this against [`install_indexed`] on the same `mods`
/// isolates the pure cost of the metric operations (the
/// `telemetry_overhead` rows of `BENCH_results.json`).
pub fn install_indexed_instrumented(mods: &[FlowMod], registry: &Registry) -> Duration {
    let mut table = FlowTable::new(0);
    let ops = registry.counter("bench.install.ops");
    let table_len = registry.gauge("bench.install.table_len");
    let mut sizes = Recorder::new(registry.histogram("bench.install.table_len_dist"));
    let start = Instant::now();
    for fm in mods {
        table
            .apply(fm, std::time::Duration::ZERO)
            .expect("install succeeds");
        ops.inc();
        sizes.record(table.len() as u64);
    }
    sizes.flush();
    table_len.set(table.len() as i64);
    let elapsed = start.elapsed();
    assert_eq!(table.len(), mods.len());
    elapsed
}

/// Installs every flow-mod into a fresh [`LinearFlowTable`] — the
/// linear-scan baseline the speedup is measured against.
pub fn install_linear(mods: &[FlowMod]) -> Duration {
    let mut table = LinearFlowTable::new(0);
    let start = Instant::now();
    for fm in mods {
        table
            .apply(fm, std::time::Duration::ZERO)
            .expect("install succeeds");
    }
    let elapsed = start.elapsed();
    assert_eq!(table.len(), mods.len());
    elapsed
}

/// A representative message mix for codec throughput: flow-mods punctuated
/// by barriers, the proxy's steady-state traffic.
pub fn codec_messages(n: usize) -> Vec<OfMessage> {
    bulk_flow_mods(n)
        .into_iter()
        .enumerate()
        .map(|(i, body)| {
            if i % 8 == 7 {
                OfMessage::BarrierRequest { xid: i as u32 }
            } else {
                OfMessage::FlowMod {
                    xid: i as u32,
                    body,
                }
            }
        })
        .collect()
}

/// Encodes the batch into a reused buffer (the zero-alloc send path);
/// returns the elapsed time for `msgs.len()` encodes.
pub fn encode_throughput(msgs: &[OfMessage], wire: &mut Vec<u8>) -> Duration {
    wire.clear();
    let codec = OfCodec::new();
    let start = Instant::now();
    codec.encode_batch_into(msgs, wire).expect("encodable");
    start.elapsed()
}

/// Feeds pre-encoded wire bytes through the streaming decoder with a reused
/// message buffer; returns the elapsed time for decoding all of `expected`
/// messages.
pub fn decode_throughput(wire: &[u8], expected: usize) -> Duration {
    let mut codec = OfCodec::new();
    let mut msgs = Vec::with_capacity(expected);
    let start = Instant::now();
    codec.feed(wire);
    codec.drain_messages_into(&mut msgs).expect("decodable");
    let elapsed = start.elapsed();
    assert_eq!(msgs.len(), expected);
    elapsed
}

/// Drives `n` controller flow-mods through a [`rum::RumEngine`] via the
/// allocation-free `handle_into` entry point (effects buffer reused across
/// inputs); returns the elapsed time for the `n` inputs.
pub fn engine_drain_throughput(n: usize) -> Duration {
    let mut engine = RumBuilder::new(1)
        .technique(TechniqueConfig::BarrierBaseline)
        .build();
    engine.start(Duration::ZERO);
    let sw = SwitchId::new(0);
    let mods = bulk_flow_mods(n);
    let mut effects = Vec::new();
    let start = Instant::now();
    for (i, body) in mods.into_iter().enumerate() {
        effects.clear();
        engine.handle_into(
            Duration::from_micros(i as u64),
            Input::FromController {
                switch: sw,
                message: OfMessage::FlowMod {
                    xid: i as u32,
                    body,
                },
            },
            &mut effects,
        );
        assert!(!effects.is_empty());
    }
    start.elapsed()
}

/// Drives an `n`-modification flat plan through an [`UpdateSession`] with
/// RUM acks via the allocation-free `handle_into`/`drain_into` entry points;
/// returns the elapsed time for the full send + confirm cycle.
pub fn session_drain_throughput(n: usize) -> Duration {
    let mut plan = controller::UpdatePlan::new();
    for (i, fm) in bulk_flow_mods(n).into_iter().enumerate() {
        plan.add(i as u64 + 1, 0, fm).expect("distinct ids");
    }
    let mut session = UpdateSession::new(plan, AckMode::RumAcks, 64);
    let conn = controller::ConnId::new(0);
    let mut effects = Vec::new();
    let start = Instant::now();
    session.handle_into(Duration::ZERO, SessionInput::Started, &mut effects);
    let mut at = Duration::ZERO;
    while !session.is_complete() {
        // Ack every flow-mod sent in the previous drain; each ack frees a
        // window slot and triggers the next send.
        let acks: Vec<SessionInput> = effects
            .iter()
            .filter_map(|e| match e {
                controller::SessionEffect::Send {
                    message: OfMessage::FlowMod { xid, .. },
                    ..
                } => Some(SessionInput::FromSwitch {
                    conn,
                    message: OfMessage::rum_ack(*xid),
                }),
                _ => None,
            })
            .collect();
        assert!(!acks.is_empty(), "session must make progress");
        at += Duration::from_micros(1);
        effects.clear();
        session.drain_into(at, acks, &mut effects);
    }
    start.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_run_at_small_scale() {
        let mods = bulk_flow_mods(64);
        assert!(install_indexed(&mods) > Duration::ZERO);
        assert!(install_linear(&mods) > Duration::ZERO);
        let msgs = codec_messages(64);
        let mut wire = Vec::new();
        assert!(encode_throughput(&msgs, &mut wire) > Duration::ZERO);
        assert!(decode_throughput(&wire, msgs.len()) > Duration::ZERO);
        assert!(engine_drain_throughput(64) > Duration::ZERO);
        assert!(session_drain_throughput(64) > Duration::ZERO);
    }

    #[test]
    fn instrumented_install_does_the_same_work_and_reports_it() {
        let mods = bulk_flow_mods(128);
        let registry = Registry::new();
        assert!(install_indexed_instrumented(&mods, &registry) > Duration::ZERO);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["bench.install.ops"], 128);
        assert_eq!(snap.gauges["bench.install.table_len"], 128);
        let sizes = &snap.histograms["bench.install.table_len_dist"];
        assert_eq!(sizes.count, 128);
        // min/max track exact values, not bucket bounds.
        assert_eq!(sizes.min, 1, "first apply sees a one-entry table");
        assert_eq!(sizes.max, 128);
    }

    #[test]
    fn indexed_and_linear_agree_on_the_workload() {
        let mods = bulk_flow_mods(200);
        let mut a = FlowTable::new(0);
        let mut b = LinearFlowTable::new(0);
        for fm in &mods {
            assert_eq!(
                a.apply(fm, std::time::Duration::ZERO),
                b.apply(fm, std::time::Duration::ZERO)
            );
        }
        assert_eq!(a.len(), b.len());
        assert!(a.entries().eq(b.entries()));
    }
}
