//! Figure 6: flow update times when using control-plane-only techniques
//! (barriers baseline, 300 ms timeout, adaptive 200, adaptive 250).
//!
//! Usage: `fig6_controlplane [n_flows]` (default 300).

use rum_bench::experiments::{run_end_to_end, EndToEndTechnique};
use rum_bench::report;
use simnet::SimTime;

fn main() {
    let n_flows: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    println!("# Figure 6 — control-plane-only techniques, {n_flows} flows");
    let techniques = [
        EndToEndTechnique::Barriers,
        EndToEndTechnique::Timeout(SimTime::from_millis(300)),
        EndToEndTechnique::Adaptive(200.0),
        EndToEndTechnique::Adaptive(250.0),
    ];
    let mut results = Vec::new();
    for t in techniques {
        let r = run_end_to_end(t, n_flows, 250, 7);
        println!("{}", report::end_to_end_summary(&r));
        results.push(r);
    }
    println!();
    for r in &results {
        println!("## per-flow update times, {}:", r.technique);
        print!("{}", report::end_to_end_csv(r));
        println!();
    }
    println!(
        "paper: barriers are fastest but drop packets; the 300 ms timeout avoids drops but raises \
         the mean flow update time from 592 ms to 815 ms; adaptive 200 stays safe while adaptive \
         250 starts acknowledging too early as the table fills."
    );
}
