//! Section 5.1 "Barrier Layer Performance": total update time when the
//! controller relies on (RUM-reinforced) barriers, on an ordering-preserving
//! switch and on a reordering switch, for different barrier frequencies.
//!
//! Usage: `barrier_layer_overhead [n_rules]` (default 300).

use rum_bench::experiments::run_barrier_layer;

fn main() {
    let n_rules: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    println!("# Barrier layer overhead (R = {n_rules})");
    for (reordering, label) in [
        (false, "ordering-preserving switch"),
        (true, "reordering switch"),
    ] {
        for barrier_every in [10usize, 1] {
            let r = run_barrier_layer(barrier_every, reordering, n_rules, 31);
            println!(
                "{label:<28} barrier every {barrier_every:>2} mods: with barrier layer {:>9.1} ms, probing only {:>9.1} ms, overhead x{:.2}",
                r.with_barrier_layer_ms,
                r.probing_only_ms,
                r.overhead_factor()
            );
        }
    }
    println!();
    println!(
        "paper: on a switch that does not reorder, the barrier layer matches plain sequential \
         probing; on a reordering switch the buffering roughly doubles the total update time, and \
         issuing a barrier after every command grows the overhead to about 5x."
    );
}
