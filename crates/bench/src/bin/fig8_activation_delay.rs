//! Figure 8: per-rule delay between data-plane activation and the
//! control-plane acknowledgment for every technique (R = 300, K = 300).
//!
//! Usage: `fig8_activation_delay [n_rules] [packets_per_sec]`
//! (defaults: 300 rules, 250 pkt/s per rule).

use rum_bench::experiments::{run_activation_delay, EndToEndTechnique};
use rum_bench::report;
use simnet::SimTime;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_rules: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(300);
    let rate: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(250);
    println!("# Figure 8 — control-plane vs data-plane activation delay, R={n_rules}, K={n_rules}");
    let techniques = [
        EndToEndTechnique::Barriers,
        EndToEndTechnique::Timeout(SimTime::from_millis(300)),
        EndToEndTechnique::Adaptive(200.0),
        EndToEndTechnique::Adaptive(250.0),
        EndToEndTechnique::Sequential,
        EndToEndTechnique::General,
    ];
    for t in techniques {
        let samples = run_activation_delay(t, n_rules, n_rules, rate, 13);
        let delays: Vec<f64> = samples.iter().map(|s| s.delay_ms).collect();
        let negative = delays.iter().filter(|d| **d < 0.0).count();
        println!(
            "{:<22} samples={:<4} negative(incorrect)={:<4} p10={:>8.1} ms  median={:>8.1} ms  p90={:>8.1} ms",
            t.label(),
            delays.len(),
            negative,
            report::percentile(&delays, 0.10).unwrap_or(f64::NAN),
            report::percentile(&delays, 0.50).unwrap_or(f64::NAN),
            report::percentile(&delays, 0.90).unwrap_or(f64::NAN),
        );
        print!("{}", report::activation_csv(&t.label(), &samples));
        println!();
    }
    println!(
        "paper: barrier replies arrive up to 300 ms before the rule is applied (negative delay); \
         the 300 ms timeout wastes ~230 ms at the median; adaptive is close to zero but can dip \
         negative when the assumed rate is optimistic; both probing techniques never go negative \
         and sit within 70 ms (sequential) / 30 ms (general) for 90% of modifications."
    );
}
