//! Runs a reduced-scale version of every experiment in one go and prints a
//! compact paper-vs-measured summary.  Useful for regenerating
//! `EXPERIMENTS.md` quickly; the per-figure binaries run the full-scale
//! versions.
//!
//! Usage: `all_experiments [n_flows]` (default 100).

use rum_bench::experiments::{
    run_activation_delay, run_barrier_layer, run_end_to_end, run_pktio_rates, run_update_rate,
    EndToEndTechnique,
};
use rum_bench::report;
use simnet::SimTime;

fn main() {
    let n: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    println!("=== RUM reproduction: all experiments (reduced scale: {n} flows/rules) ===\n");

    println!("--- Figure 1b / 6 / 7: end-to-end path migration ---");
    for t in EndToEndTechnique::all() {
        let r = run_end_to_end(t, n, 250, 42);
        println!("{}", report::end_to_end_summary(&r));
    }

    println!("\n--- Figure 8: activation delay (R=K={n}) ---");
    for t in [
        EndToEndTechnique::Barriers,
        EndToEndTechnique::Timeout(SimTime::from_millis(300)),
        EndToEndTechnique::Adaptive(200.0),
        EndToEndTechnique::Adaptive(250.0),
        EndToEndTechnique::Sequential,
        EndToEndTechnique::General,
    ] {
        let samples = run_activation_delay(t, n as usize, n as usize, 0, 13);
        let delays: Vec<f64> = samples.iter().map(|s| s.delay_ms).collect();
        let negative = delays.iter().filter(|d| **d < 0.0).count();
        println!(
            "{:<22} negative={:<4} median={:>8.1} ms  p90={:>8.1} ms",
            t.label(),
            negative,
            report::percentile(&delays, 0.5).unwrap_or(f64::NAN),
            report::percentile(&delays, 0.9).unwrap_or(f64::NAN)
        );
    }

    println!(
        "\n--- Table 1: usable update rate (R={} reduced) ---",
        n * 4
    );
    let probe_batches = [1usize, 5, 10, 20];
    let windows = [20usize, 100];
    let mut grid = Vec::new();
    for &batch in &probe_batches {
        let mut row = Vec::new();
        for &k in &windows {
            row.push(run_update_rate(batch, k, (n * 4) as usize, 21).normalized());
        }
        grid.push(row);
    }
    println!("{}", report::table1_grid(&probe_batches, &windows, &grid));

    println!("--- Barrier layer overhead (R={n}) ---");
    for reordering in [false, true] {
        let r = run_barrier_layer(10, reordering, n as usize, 31);
        println!(
            "reordering={reordering:<5} with layer {:>9.1} ms, probing only {:>9.1} ms, overhead x{:.2}",
            r.with_barrier_layer_ms, r.probing_only_ms, r.overhead_factor()
        );
    }

    println!("\n--- PacketIn / PacketOut rates ---");
    let r = run_pktio_rates(55);
    println!(
        "PacketOut {:.0}/s (paper 7006), PacketIn {:.0}/s (paper 5531), mod rate with PacketIns {:.0}%, with 5:1 PacketOuts {:.0}%",
        r.packet_out_per_sec,
        r.packet_in_per_sec,
        r.mod_rate_with_packet_ins * 100.0,
        r.mod_rate_with_packet_outs * 100.0
    );
}
