//! Figure 7: flow update times with the data-plane probing techniques
//! (sequential, general) against the no-wait lower bound.
//!
//! Usage: `fig7_probing [n_flows]` (default 300).

use rum_bench::experiments::{run_end_to_end, EndToEndTechnique};
use rum_bench::report;

fn main() {
    let n_flows: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    println!("# Figure 7 — data-plane probing techniques, {n_flows} flows");
    let techniques = [
        EndToEndTechnique::Sequential,
        EndToEndTechnique::General,
        EndToEndTechnique::NoWait,
    ];
    let mut results = Vec::new();
    for t in techniques {
        let r = run_end_to_end(t, n_flows, 250, 9);
        println!("{}", report::end_to_end_summary(&r));
        results.push(r);
    }
    println!();
    for r in &results {
        println!("## per-flow update times, {}:", r.technique);
        print!("{}", report::end_to_end_csv(r));
        println!();
    }
    println!(
        "paper: neither probing technique drops packets; sequential probing pays for its extra \
         probe-rule installations, while general probing tracks the no-wait lower bound closely."
    );
}
