//! Section 5.2 "Number of probes a switch can process": PacketOut / PacketIn
//! throughput of the switch under test and the interaction between probe
//! processing and the rule modification rate.

use rum_bench::experiments::run_pktio_rates;

fn main() {
    println!("# PacketIn / PacketOut microbenchmarks");
    let r = run_pktio_rates(55);
    println!(
        "PacketOut rate:            {:>8.0} messages/s   (paper: 7006/s)",
        r.packet_out_per_sec
    );
    println!(
        "PacketIn rate:             {:>8.0} messages/s   (paper: 5531/s)",
        r.packet_in_per_sec
    );
    println!(
        "Modification rate alone:   {:>8.1} rules/s",
        r.mod_rate_alone
    );
    println!(
        "... with concurrent PacketIn-like load:  {:>5.1}%   (paper: >96%)",
        r.mod_rate_with_packet_ins * 100.0
    );
    println!(
        "... with 5:1 PacketOut load:             {:>5.1}%   (paper: >=87%)",
        r.mod_rate_with_packet_outs * 100.0
    );
}
