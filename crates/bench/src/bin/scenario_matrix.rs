//! Runs the technique × fault scenario matrix on one or both drivers and
//! prints the false-ack / missed-ack grid — the paper's reliability
//! evaluation ("how often does each acknowledgment strategy lie?") extended
//! to the real-socket prototype.
//!
//! Usage: `scenario_matrix [n_rules] [seed] [drivers]`
//! (defaults: 10 rules, seed 42, drivers `both`; `drivers` is one of
//! `simnet`, `tcp`, `both`).
//!
//! The simulator matrix runs the full HP 5406zl model; the TCP matrix runs
//! the 5x-scaled `fast_buggy` model so a full sweep stays under a minute of
//! wall clock.  Exit code is non-zero if any probing technique produced a
//! false acknowledgment — the property the paper (and CI) relies on.

use rum_bench::scenario_matrix::{render_grid, run_simnet_matrix, run_tcp_matrix, MatrixCell};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let n_rules: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(42);
    let drivers = args.get(3).map(String::as_str).unwrap_or("both");

    let mut cells: Vec<MatrixCell> = Vec::new();
    if drivers == "simnet" || drivers == "both" {
        eprintln!("running simnet matrix ({n_rules} rules, seed {seed})...");
        cells.extend(run_simnet_matrix(n_rules, seed));
    }
    if drivers == "tcp" || drivers == "both" {
        eprintln!("running tcp matrix ({n_rules} rules, seed {seed})...");
        cells.extend(run_tcp_matrix(n_rules, seed));
    }
    if cells.is_empty() {
        eprintln!("scenario_matrix: unknown drivers selector {drivers:?} (simnet|tcp|both)");
        return ExitCode::FAILURE;
    }

    print!("{}", render_grid(&cells));

    // The paper's claim, checked on every run: probing techniques never
    // acknowledge falsely (wherever their soundness domain applies — the
    // sequential × reordering cell is recorded as n/a, not run), the
    // barrier-only baseline does under early replies.
    let lying_probes: Vec<&MatrixCell> = cells
        .iter()
        .filter(|c| c.applicable)
        .filter(|c| c.technique.contains("sequential") || c.technique.contains("general"))
        .filter(|c| c.false_acks > 0)
        .collect();
    let baseline_lied = cells
        .iter()
        .any(|c| c.technique == "barrier-only" && c.fault == "early_reply" && c.false_acks > 0);
    if !lying_probes.is_empty() {
        eprintln!("scenario_matrix: probing technique produced false acks: {lying_probes:?}");
        return ExitCode::FAILURE;
    }
    if !baseline_lied {
        eprintln!(
            "scenario_matrix: expected the barrier-only baseline to produce false acks under early_reply"
        );
        return ExitCode::FAILURE;
    }
    // Restart re-convergence: the proxy re-issues unconfirmed modifications
    // on reattach, so probing techniques must confirm the *whole* plan —
    // truthfully — even across the reboot.
    let stalled_probes: Vec<&MatrixCell> = cells
        .iter()
        .filter(|c| c.applicable && c.fault == "restart")
        .filter(|c| c.technique.contains("sequential") || c.technique.contains("general"))
        .filter(|c| c.missed_acks > 0)
        .collect();
    if !stalled_probes.is_empty() {
        eprintln!(
            "scenario_matrix: probing failed to re-converge across the restart: {stalled_probes:?}"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "\nOK: 0 false acks across {} probing cells; barrier-only baseline lied under early_reply as the paper predicts",
        cells
            .iter()
            .filter(|c| c.applicable)
            .filter(|c| c.technique.contains("sequential") || c.technique.contains("general"))
            .count()
    );
    ExitCode::SUCCESS
}
