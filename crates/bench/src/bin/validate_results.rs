//! Validates a `BENCH_results.json` document against the shapes
//! `bench_results` writes (see `rum_bench::report::results_json`), so CI
//! catches a broken harness before a stale or malformed results file lands.
//! Schema 5 (throughput gains the `telemetry_overhead/*` rows measuring the
//! metric hot path against the uninstrumented workload), schema 4 (matrix
//! rows carry per-technique `applicable` flags and must cover the `restart`
//! fault on both drivers), schema 3 (latency + throughput +
//! scenario-matrix sections) and the older schema 2 (no matrix) are all
//! accepted; matrix rows must carry finite false-ack/missed-ack rates
//! inside `[0, 1]` and internally consistent counts, and not-applicable
//! rows must be all-zero placeholders.
//!
//! Usage: `validate_results [path] [min_speedup] [max_overhead]
//! [min_soak_sessions] [min_wire_speedup] [min_matrix_switches]`
//! (defaults: `BENCH_results.json`, no speedup floor, 3% overhead cap,
//! ≥ 1 soak session, no wire-speedup floor, no switch-count floor).  When
//! `min_speedup` is given, every `flow_mod_install/indexed_*` row must
//! carry a `speedup` field of at least that factor over the linear-scan
//! baseline.  In a schema-5+ file,
//! every `telemetry_overhead/*` row must carry a finite `overhead_pct`
//! below `max_overhead`, and at least one such row must exist —
//! instrumentation that slows the hot path down (or silently stops being
//! measured) fails the gate.  Schema 6 adds the `session_soak` section
//! (the multi-tenant `sessiond` soak): both drivers must be present, every
//! row must carry **zero false acks**, a complete tenant population
//! (`completed == sessions`, zero missed acks), finite tail percentiles
//! (p50 ≤ p99 ≤ p99.9), and at least `min_soak_sessions` concurrent
//! sessions — the "millions of users" regression gate.  Schema 7 adds the
//! declarative-resync verdict to the scenario matrix: applicable
//! `restart_resync` rows must exist on **both** drivers and prove the wiped
//! table was restored (`resync_converged`, `resync_final_diff == 0`,
//! `resync_table_matches`); the fields are rejected anywhere else.
//! Schema 8 is the sharded-proxy scale layer: every scenario-matrix and
//! session-soak row carries its fleet size (`switches`), the throughput
//! section must include a `wire_e2e/*` row (flow-mods/s through a real TCP
//! proxy, with the pre-shard thread-per-connection proxy as its in-run
//! baseline, so `speedup` is the sharding win) gated by
//! `min_wire_speedup`, and when `min_matrix_switches` is given, **both**
//! drivers must carry an applicable probing (`rum-*`) matrix row with zero
//! false acks at at least that many switches, plus a TCP soak row at the
//! same fleet size — the 1,000-switch regression gate.
//!
//! The build environment has no serde, so this ships a minimal JSON parser —
//! enough for the flat document the harness emits.

use std::collections::BTreeMap;
use std::process::ExitCode;

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.error("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or_else(|| self.error("unclosed string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through byte by byte;
                    // the input came from a &str so it is valid UTF-8.
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn document(mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.error("trailing garbage"));
        }
        Ok(v)
    }
}

fn get<'a>(obj: &'a BTreeMap<String, Json>, key: &str) -> Result<&'a Json, String> {
    obj.get(key).ok_or_else(|| format!("missing key \"{key}\""))
}

fn num(obj: &BTreeMap<String, Json>, key: &str) -> Result<f64, String> {
    match get(obj, key)? {
        Json::Num(n) => Ok(*n),
        Json::Null => Ok(f64::NAN), // latency of an incomplete run
        other => Err(format!("\"{key}\" is not a number: {other:?}")),
    }
}

/// A string field of a matrix row.
fn string<'a>(obj: &'a BTreeMap<String, Json>, key: &str) -> Result<&'a str, String> {
    match get(obj, key)? {
        Json::Str(s) => Ok(s),
        other => Err(format!("\"{key}\" is not a string: {other:?}")),
    }
}

/// A boolean field.
fn boolean(obj: &BTreeMap<String, Json>, key: &str) -> Result<bool, String> {
    match get(obj, key)? {
        Json::Bool(b) => Ok(*b),
        other => Err(format!("\"{key}\" is not a boolean: {other:?}")),
    }
}

/// A count: a finite, non-negative integer-valued number.
fn count(obj: &BTreeMap<String, Json>, key: &str) -> Result<u64, String> {
    let v = num(obj, key)?;
    if !v.is_finite() || v < 0.0 || v.fract() != 0.0 {
        return Err(format!("\"{key}\" is not a non-negative count: {v}"));
    }
    Ok(v as u64)
}

/// A rate: finite and inside `[0, 1]` — NaN (serialised as null) and
/// negative values are rejected.
fn rate(obj: &BTreeMap<String, Json>, key: &str) -> Result<f64, String> {
    let v = num(obj, key)?;
    if !v.is_finite() || !(0.0..=1.0).contains(&v) {
        return Err(format!("\"{key}\" is not a rate in [0, 1]: {v}"));
    }
    Ok(v)
}

fn validate_matrix(
    root: &BTreeMap<String, Json>,
    schema: u32,
    min_switches: u64,
) -> Result<usize, String> {
    let Json::Arr(matrix) = get(root, "scenario_matrix")? else {
        return Err("\"scenario_matrix\" is not an array".into());
    };
    let mut restart_drivers: Vec<&str> = Vec::new();
    let mut resync_drivers: Vec<&str> = Vec::new();
    // Schema 8: drivers that proved a zero-false-ack probing run at the
    // required fleet size.
    let mut scale_drivers: Vec<&str> = Vec::new();
    for (i, row) in matrix.iter().enumerate() {
        let Json::Obj(row) = row else {
            return Err(format!("scenario_matrix[{i}] is not an object"));
        };
        let context = format!("scenario_matrix[{i}]");
        let driver = string(row, "driver").map_err(|e| format!("{context}: {e}"))?;
        if driver != "simnet" && driver != "tcp" {
            return Err(format!("{context}: unknown driver \"{driver}\""));
        }
        let fault = string(row, "fault").map_err(|e| format!("{context}: {e}"))?;
        let technique = string(row, "technique").map_err(|e| format!("{context}: {e}"))?;
        string(row, "experiment").map_err(|e| format!("{context}: {e}"))?;
        // Schema 8: every row states the fleet size it ran against; older
        // schemas predate the field.
        let switches = match (schema >= 8, row.contains_key("switches")) {
            (true, true) => {
                let v = count(row, "switches").map_err(|e| format!("{context}: {e}"))?;
                if v == 0 {
                    return Err(format!("{context}: \"switches\" must be at least 1"));
                }
                v
            }
            (true, false) => {
                return Err(format!("{context}: schema 8 needs a \"switches\" count"));
            }
            (false, true) => {
                return Err(format!("{context}: \"switches\" requires schema 8"));
            }
            (false, false) => 0,
        };
        let planned = count(row, "planned").map_err(|e| format!("{context}: {e}"))?;
        let confirmed = count(row, "confirmed").map_err(|e| format!("{context}: {e}"))?;
        let false_acks = count(row, "false_acks").map_err(|e| format!("{context}: {e}"))?;
        let missed_acks = count(row, "missed_acks").map_err(|e| format!("{context}: {e}"))?;
        let false_rate = rate(row, "false_ack_rate").map_err(|e| format!("{context}: {e}"))?;
        let missed_rate = rate(row, "missed_ack_rate").map_err(|e| format!("{context}: {e}"))?;
        if confirmed > planned || false_acks > planned || missed_acks > planned {
            return Err(format!("{context}: counts exceed the plan size {planned}"));
        }
        if confirmed + missed_acks != planned {
            return Err(format!(
                "{context}: confirmed ({confirmed}) + missed ({missed_acks}) != planned ({planned})"
            ));
        }
        // A false ack is by definition a confirmation.
        if false_acks > confirmed {
            return Err(format!(
                "{context}: false_acks ({false_acks}) exceed confirmed ({confirmed})"
            ));
        }
        // completion_ms is optional-null but must be a finite number if set.
        let completion_is_null =
            match get(row, "completion_ms").map_err(|e| format!("{context}: {e}"))? {
                Json::Null => true,
                Json::Num(v) if v.is_finite() && *v >= 0.0 => false,
                other => return Err(format!("{context}: bad completion_ms {other:?}")),
            };
        // Schema 4: per-technique applicability.  A not-applicable cell was
        // never run and must be an all-zero placeholder; a schema-3 file
        // predates the flag and must not carry one.
        let mut is_applicable = true;
        match (schema >= 4, row.get("applicable")) {
            (true, Some(Json::Bool(applicable))) => {
                is_applicable = *applicable;
                if !*applicable
                    && (planned != 0
                        || false_rate != 0.0
                        || missed_rate != 0.0
                        || !completion_is_null)
                {
                    return Err(format!(
                        "{context}: not-applicable cell carries measurements \
                         (planned {planned}, rates {false_rate}/{missed_rate}, \
                         completion null: {completion_is_null})"
                    ));
                }
                if *applicable && fault == "restart" && !restart_drivers.contains(&driver) {
                    restart_drivers.push(driver);
                }
            }
            (true, other) => {
                return Err(format!(
                    "{context}: schema 4 needs a boolean \"applicable\", got {other:?}"
                ));
            }
            (false, Some(_)) => {
                return Err(format!("{context}: \"applicable\" requires schema 4"));
            }
            (false, None) => {
                if fault == "restart" && !restart_drivers.contains(&driver) {
                    restart_drivers.push(driver);
                }
            }
        }
        // Schema 7: the declarative-resync verdict.  Applicable
        // restart_resync rows must prove the wiped table was restored; the
        // fields are rejected anywhere else (older schemas, other faults,
        // never-run cells).
        if row.keys().any(|k| k.starts_with("resync_")) {
            if schema < 7 {
                return Err(format!("{context}: resync fields require schema 7"));
            }
            if fault != "restart_resync" {
                return Err(format!(
                    "{context}: resync fields are only valid on restart_resync rows"
                ));
            }
            if !is_applicable {
                return Err(format!(
                    "{context}: not-applicable cell carries resync fields"
                ));
            }
            let converged =
                boolean(row, "resync_converged").map_err(|e| format!("{context}: {e}"))?;
            let rounds = count(row, "resync_rounds").map_err(|e| format!("{context}: {e}"))?;
            let final_diff =
                count(row, "resync_final_diff").map_err(|e| format!("{context}: {e}"))?;
            count(row, "resync_delta_mods").map_err(|e| format!("{context}: {e}"))?;
            let table_matches =
                boolean(row, "resync_table_matches").map_err(|e| format!("{context}: {e}"))?;
            if !converged || rounds == 0 || final_diff != 0 || !table_matches {
                return Err(format!(
                    "{context}: resync failed to restore the table (converged {converged}, \
                     rounds {rounds}, final_diff {final_diff}, table_matches {table_matches})"
                ));
            }
            if !resync_drivers.contains(&driver) {
                resync_drivers.push(driver);
            }
        } else if schema >= 7 && fault == "restart_resync" && is_applicable {
            return Err(format!(
                "{context}: applicable restart_resync row is missing its resync verdict"
            ));
        }
        // Schema 8: an applicable probing row with a clean verdict at the
        // required fleet size counts towards the scale gate.
        if is_applicable
            && technique.starts_with("rum-")
            && false_acks == 0
            && min_switches > 0
            && switches >= min_switches
            && !scale_drivers.contains(&driver)
        {
            scale_drivers.push(driver);
        }
    }
    // Schema 4 turned restart survival into a load-bearing claim: a results
    // file that silently dropped the restart column on either driver is
    // stale or produced by a broken harness.
    if schema >= 4 {
        for required in ["simnet", "tcp"] {
            if !restart_drivers.contains(&required) {
                return Err(format!(
                    "schema 4 requires restart rows for both drivers; \"{required}\" is missing"
                ));
            }
        }
    }
    // Schema 7 turned resync-after-restart into a load-bearing claim: a
    // results file without a converged restart_resync row on each driver is
    // stale or produced by a harness whose reconciler no longer converges.
    if schema >= 7 {
        for required in ["simnet", "tcp"] {
            if !resync_drivers.contains(&required) {
                return Err(format!(
                    "schema 7 requires converged restart_resync rows for both drivers; \
                     \"{required}\" is missing"
                ));
            }
        }
    }
    // The schema-8 scale gate: when a switch-count floor is demanded, both
    // drivers must have proved a zero-false-ack probing run at (at least)
    // that fleet size, or the sharded proxy's headline claim is stale.
    if min_switches > 0 {
        if schema < 8 {
            return Err(format!(
                "a {min_switches}-switch floor needs schema 8 rows carrying \"switches\""
            ));
        }
        for required in ["simnet", "tcp"] {
            if !scale_drivers.contains(&required) {
                return Err(format!(
                    "no applicable zero-false-ack probing row with switches >= {min_switches} \
                     on driver \"{required}\""
                ));
            }
        }
    }
    Ok(matrix.len())
}

/// Validates the schema-6 `session_soak` section: the multi-tenant soak's
/// verdicts must hold on both drivers or the gate fails.
fn validate_soak(
    root: &BTreeMap<String, Json>,
    min_sessions: u64,
    schema: u32,
    min_switches: u64,
) -> Result<usize, String> {
    let Json::Arr(soak) = get(root, "session_soak")? else {
        return Err("\"session_soak\" is not an array".into());
    };
    let mut drivers: Vec<&str> = Vec::new();
    // Schema 8: the largest fleet a clean TCP soak ran against.
    let mut tcp_scale: u64 = 0;
    for (i, row) in soak.iter().enumerate() {
        let Json::Obj(row) = row else {
            return Err(format!("session_soak[{i}] is not an object"));
        };
        let context = format!("session_soak[{i}]");
        let driver = string(row, "driver").map_err(|e| format!("{context}: {e}"))?;
        if driver != "simnet" && driver != "tcp" {
            return Err(format!("{context}: unknown driver \"{driver}\""));
        }
        string(row, "fault").map_err(|e| format!("{context}: {e}"))?;
        string(row, "experiment").map_err(|e| format!("{context}: {e}"))?;
        // Schema 8: every soak row states the fleet size it ran against.
        let switches = match (schema >= 8, row.contains_key("switches")) {
            (true, true) => {
                let v = count(row, "switches").map_err(|e| format!("{context}: {e}"))?;
                if v == 0 {
                    return Err(format!("{context}: \"switches\" must be at least 1"));
                }
                v
            }
            (true, false) => {
                return Err(format!("{context}: schema 8 needs a \"switches\" count"));
            }
            (false, true) => {
                return Err(format!("{context}: \"switches\" requires schema 8"));
            }
            (false, false) => 0,
        };
        let sessions = count(row, "sessions").map_err(|e| format!("{context}: {e}"))?;
        let completed = count(row, "completed").map_err(|e| format!("{context}: {e}"))?;
        let aborted = count(row, "aborted").map_err(|e| format!("{context}: {e}"))?;
        let planned = count(row, "planned_mods").map_err(|e| format!("{context}: {e}"))?;
        let confirmed = count(row, "confirmed_mods").map_err(|e| format!("{context}: {e}"))?;
        let false_acks = count(row, "false_acks").map_err(|e| format!("{context}: {e}"))?;
        let missed_acks = count(row, "missed_acks").map_err(|e| format!("{context}: {e}"))?;
        let stray_acks = count(row, "stray_acks").map_err(|e| format!("{context}: {e}"))?;
        if sessions < min_sessions {
            return Err(format!(
                "{context}: only {sessions} concurrent sessions, required >= {min_sessions}"
            ));
        }
        if completed + aborted > sessions || confirmed > planned {
            return Err(format!("{context}: counts exceed the population"));
        }
        if confirmed + missed_acks != planned {
            return Err(format!(
                "{context}: confirmed ({confirmed}) + missed ({missed_acks}) != planned ({planned})"
            ));
        }
        // The soak's load-bearing claims: probing never lies, and the whole
        // tenant population finishes inside the budget.
        if false_acks > 0 {
            return Err(format!("{context}: {false_acks} false acks (must be 0)"));
        }
        if completed != sessions || missed_acks > 0 {
            return Err(format!(
                "{context}: incomplete soak ({completed}/{sessions} sessions, \
                 {missed_acks} missed acks)"
            ));
        }
        if stray_acks > 0 {
            return Err(format!("{context}: {stray_acks} stray acks (must be 0)"));
        }
        let p50 = num(row, "p50_confirm_ms").map_err(|e| format!("{context}: {e}"))?;
        let p99 = num(row, "p99_confirm_ms").map_err(|e| format!("{context}: {e}"))?;
        let p999 = num(row, "p999_confirm_ms").map_err(|e| format!("{context}: {e}"))?;
        let wall = num(row, "wall_ms").map_err(|e| format!("{context}: {e}"))?;
        for (name, v) in [("p50", p50), ("p99", p99), ("p99.9", p999), ("wall", wall)] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{context}: non-finite {name}_confirm_ms {v}"));
            }
        }
        if !(p50 <= p99 && p99 <= p999) {
            return Err(format!(
                "{context}: percentiles not monotone (p50 {p50}, p99 {p99}, p99.9 {p999})"
            ));
        }
        if !drivers.contains(&driver) {
            drivers.push(driver);
        }
        if driver == "tcp" {
            tcp_scale = tcp_scale.max(switches);
        }
    }
    for required in ["simnet", "tcp"] {
        if !drivers.contains(&required) {
            return Err(format!(
                "schema 6 requires session_soak rows for both drivers; \"{required}\" is missing"
            ));
        }
    }
    // The schema-8 scale gate: the soak must have run over the sharded
    // proxy at (at least) the demanded fleet size on the real-socket
    // driver.  Every row already passed the zero-false/missed/stray gates
    // above, so reaching the floor is the only remaining claim.
    if min_switches > 0 && tcp_scale < min_switches {
        return Err(format!(
            "no tcp session_soak row with switches >= {min_switches} (largest: {tcp_scale})"
        ));
    }
    Ok(soak.len())
}

fn validate(
    doc: &Json,
    min_speedup: Option<f64>,
    max_overhead: f64,
    min_soak_sessions: u64,
    min_wire_speedup: Option<f64>,
    min_matrix_switches: u64,
) -> Result<(usize, usize, usize, usize), String> {
    let Json::Obj(root) = doc else {
        return Err("document root is not an object".into());
    };
    let schema = match get(root, "schema")? {
        Json::Num(v) if (2.0..=8.0).contains(v) && v.fract() == 0.0 => *v as u32,
        other => {
            return Err(format!(
                "schema must be 2, 3, 4, 5, 6, 7 or 8, got {other:?}"
            ))
        }
    };
    let Json::Arr(results) = get(root, "results")? else {
        return Err("\"results\" is not an array".into());
    };
    for (i, row) in results.iter().enumerate() {
        let Json::Obj(row) = row else {
            return Err(format!("results[{i}] is not an object"));
        };
        match get(row, "experiment")? {
            Json::Str(_) => {}
            other => return Err(format!("results[{i}].experiment: {other:?}")),
        }
        num(row, "median_completion_ms")?;
        num(row, "p95_completion_ms")?;
        num(row, "confirms")?;
        num(row, "runs")?;
    }
    let Json::Arr(throughput) = get(root, "throughput")? else {
        return Err("\"throughput\" is not an array".into());
    };
    if throughput.is_empty() {
        return Err("no throughput rows".into());
    }
    let mut install_rows = 0usize;
    let mut overhead_rows = 0usize;
    let mut wire_rows = 0usize;
    for (i, row) in throughput.iter().enumerate() {
        let Json::Obj(row) = row else {
            return Err(format!("throughput[{i}] is not an object"));
        };
        let Json::Str(name) = get(row, "experiment")? else {
            return Err(format!("throughput[{i}].experiment is not a string"));
        };
        num(row, "ops")?;
        num(row, "runs")?;
        let elapsed = num(row, "median_elapsed_ms")?;
        let ops_per_sec = num(row, "ops_per_sec")?;
        if !elapsed.is_finite() || !ops_per_sec.is_finite() || ops_per_sec <= 0.0 {
            return Err(format!("throughput[{i}] has non-finite measurements"));
        }
        if name.starts_with("flow_mod_install/indexed") {
            install_rows += 1;
            let speedup = num(row, "speedup")?;
            if !speedup.is_finite() || speedup <= 0.0 {
                return Err(format!("{name}: bad speedup {speedup}"));
            }
            if let Some(floor) = min_speedup {
                if speedup < floor {
                    return Err(format!(
                        "{name}: speedup {speedup:.1}x below the required {floor}x"
                    ));
                }
            }
        }
        // Schema 5: telemetry-overhead rows carry the measured slowdown of
        // the instrumented hot path and must stay under the cap.  Older
        // schemas predate the field.
        if name.starts_with("telemetry_overhead/") {
            if schema < 5 {
                return Err(format!("{name}: telemetry_overhead rows require schema 5"));
            }
            overhead_rows += 1;
            let overhead = num(row, "overhead_pct")?;
            if !overhead.is_finite() {
                return Err(format!("{name}: bad overhead_pct {overhead}"));
            }
            if overhead >= max_overhead {
                return Err(format!(
                    "{name}: telemetry overhead {overhead:.2}% is at or above the \
                     allowed {max_overhead}%"
                ));
            }
        } else if row.contains_key("overhead_pct") {
            return Err(format!("{name}: unexpected overhead_pct field"));
        }
        // Schema 8: end-to-end wire throughput through a real TCP proxy,
        // with the pre-shard thread-per-connection proxy as its in-run
        // baseline — `speedup` is the sharding win and must clear the floor.
        if name.starts_with("wire_e2e/") {
            if schema < 8 {
                return Err(format!("{name}: wire_e2e rows require schema 8"));
            }
            wire_rows += 1;
            let speedup = num(row, "speedup")?;
            if !speedup.is_finite() || speedup <= 0.0 {
                return Err(format!("{name}: bad speedup {speedup}"));
            }
            if let Some(floor) = min_wire_speedup {
                if speedup < floor {
                    return Err(format!(
                        "{name}: sharding speedup {speedup:.1}x below the required {floor}x"
                    ));
                }
            }
        }
    }
    if install_rows == 0 {
        return Err("no flow_mod_install/indexed_* throughput row".into());
    }
    if schema >= 5 && overhead_rows == 0 {
        return Err("schema 5 requires a telemetry_overhead/* throughput row".into());
    }
    if schema >= 8 && wire_rows == 0 {
        return Err("schema 8 requires a wire_e2e/* throughput row".into());
    }
    if min_wire_speedup.is_some() && schema < 8 {
        return Err("a wire-speedup floor needs schema 8 wire_e2e rows".into());
    }
    // Schema 3 adds the scenario-matrix section; schema 2 predates it (and
    // is rejected if it smuggles one in anyway).
    let matrix_rows = if schema >= 3 {
        validate_matrix(root, schema, min_matrix_switches)?
    } else {
        if min_matrix_switches > 0 {
            return Err(format!(
                "a {min_matrix_switches}-switch floor needs schema 8 matrix rows"
            ));
        }
        if root.contains_key("scenario_matrix") {
            return Err("schema 2 must not carry a scenario_matrix section".into());
        }
        0
    };
    // Schema 6 adds the session_soak section; older schemas predate it.
    let soak_rows = if schema >= 6 {
        validate_soak(root, min_soak_sessions, schema, min_matrix_switches)?
    } else {
        if root.contains_key("session_soak") {
            return Err(format!(
                "schema {schema} must not carry a session_soak section"
            ));
        }
        0
    };
    Ok((results.len(), throughput.len(), matrix_rows, soak_rows))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let path = args
        .get(1)
        .map(String::as_str)
        .unwrap_or("BENCH_results.json");
    let min_speedup: Option<f64> = args.get(2).and_then(|s| s.parse().ok());
    let max_overhead: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(3.0);
    let min_soak_sessions: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(1);
    let min_wire_speedup: Option<f64> = args.get(5).and_then(|s| s.parse().ok());
    let min_matrix_switches: u64 = args.get(6).and_then(|s| s.parse().ok()).unwrap_or(0);

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("validate_results: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match Parser::new(&text).document() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("validate_results: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate(
        &doc,
        min_speedup,
        max_overhead,
        min_soak_sessions,
        min_wire_speedup,
        min_matrix_switches,
    ) {
        Ok((latency, throughput, matrix, soak)) => {
            println!(
                "validate_results: {path} OK ({latency} latency rows, {throughput} throughput rows, {matrix} scenario-matrix rows, {soak} session-soak rows)"
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("validate_results: {path} failed validation: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(text: &str) -> Json {
        Parser::new(text).document().expect("valid JSON")
    }

    const SCHEMA2: &str = r#"{
      "schema": 2,
      "results": [{"experiment": "e", "median_completion_ms": 1.0,
                   "p95_completion_ms": 2.0, "confirms": 3, "runs": 4}],
      "throughput": [{"experiment": "flow_mod_install/indexed_10", "ops": 10,
                      "median_elapsed_ms": 1.0, "ops_per_sec": 10000.0,
                      "runs": 1, "baseline_ops_per_sec": 100.0, "speedup": 100.0}]
    }"#;

    fn schema3(matrix_row: &str) -> String {
        SCHEMA2.replace("\"schema\": 2", "\"schema\": 3").replace(
            "}]\n    }",
            &format!("}}],\n      \"scenario_matrix\": [{matrix_row}]\n    }}"),
        )
    }

    const GOOD_ROW: &str = r#"{"experiment": "scenario_matrix/simnet/early_reply/barrier-only",
        "driver": "simnet", "fault": "early_reply", "technique": "barrier-only",
        "planned": 8, "confirmed": 8, "false_acks": 8, "missed_acks": 0,
        "false_ack_rate": 1.0, "missed_ack_rate": 0.0, "completion_ms": 812.5}"#;

    #[test]
    fn schema_2_still_accepted() {
        assert_eq!(
            validate(&doc(SCHEMA2), None, 3.0, 1, None, 0),
            Ok((1, 1, 0, 0))
        );
    }

    #[test]
    fn schema_3_with_matrix_accepted() {
        assert_eq!(
            validate(&doc(&schema3(GOOD_ROW)), None, 3.0, 1, None, 0),
            Ok((1, 1, 1, 0))
        );
        // A stalled cell: null completion, missed acks.
        let stalled = GOOD_ROW
            .replace("\"confirmed\": 8", "\"confirmed\": 5")
            .replace("\"false_acks\": 8", "\"false_acks\": 0")
            .replace("\"false_ack_rate\": 1.0", "\"false_ack_rate\": 0.0")
            .replace("\"missed_acks\": 0", "\"missed_acks\": 3")
            .replace("\"missed_ack_rate\": 0.0", "\"missed_ack_rate\": 0.375")
            .replace("\"completion_ms\": 812.5", "\"completion_ms\": null");
        assert_eq!(
            validate(&doc(&schema3(&stalled)), None, 3.0, 1, None, 0),
            Ok((1, 1, 1, 0))
        );
    }

    #[test]
    fn nan_and_out_of_range_rates_are_rejected() {
        // NaN serialises as null; num() maps it back to NaN -> rejected.
        let nan = GOOD_ROW.replace("\"false_ack_rate\": 1.0", "\"false_ack_rate\": null");
        assert!(validate(&doc(&schema3(&nan)), None, 3.0, 1, None, 0)
            .unwrap_err()
            .contains("false_ack_rate"));
        let negative = GOOD_ROW.replace("\"false_ack_rate\": 1.0", "\"false_ack_rate\": -0.2");
        assert!(validate(&doc(&schema3(&negative)), None, 3.0, 1, None, 0)
            .unwrap_err()
            .contains("false_ack_rate"));
        let above_one = GOOD_ROW.replace("\"missed_ack_rate\": 0.0", "\"missed_ack_rate\": 1.5");
        assert!(validate(&doc(&schema3(&above_one)), None, 3.0, 1, None, 0)
            .unwrap_err()
            .contains("missed_ack_rate"));
    }

    #[test]
    fn inconsistent_counts_are_rejected() {
        let too_many = GOOD_ROW.replace("\"false_acks\": 8", "\"false_acks\": 9");
        assert!(validate(&doc(&schema3(&too_many)), None, 3.0, 1, None, 0)
            .unwrap_err()
            .contains("exceed the plan size"));
        let mismatch = GOOD_ROW.replace("\"confirmed\": 8", "\"confirmed\": 7");
        assert!(validate(&doc(&schema3(&mismatch)), None, 3.0, 1, None, 0)
            .unwrap_err()
            .contains("!= planned"));
        // More false acks than confirmations is nonsensical: a false ack is
        // a (mis)issued confirmation.
        let phantom = GOOD_ROW
            .replace("\"confirmed\": 8", "\"confirmed\": 5")
            .replace("\"missed_acks\": 0", "\"missed_acks\": 3");
        assert!(validate(&doc(&schema3(&phantom)), None, 3.0, 1, None, 0)
            .unwrap_err()
            .contains("exceed confirmed"));
    }

    /// Builds a schema-4 document with the given matrix rows (joined by
    /// commas by the caller).
    fn schema4(matrix_rows: &str) -> String {
        schema3(matrix_rows).replace("\"schema\": 3", "\"schema\": 4")
    }

    fn with_applicable(row: &str, applicable: bool) -> String {
        row.replace(
            "\"completion_ms\":",
            &format!("\"applicable\": {applicable}, \"completion_ms\":"),
        )
    }

    fn restart_row(driver: &str) -> String {
        with_applicable(
            &GOOD_ROW.replace("early_reply", "restart").replace(
                "\"driver\": \"simnet\"",
                &format!("\"driver\": \"{driver}\""),
            ),
            true,
        )
    }

    const NA_ROW: &str = r#"{"experiment": "scenario_matrix/simnet/early_reply_reordering/rum-sequential",
        "driver": "simnet", "fault": "early_reply_reordering", "technique": "rum-sequential",
        "planned": 0, "confirmed": 0, "false_acks": 0, "missed_acks": 0,
        "false_ack_rate": 0.0, "missed_ack_rate": 0.0, "applicable": false, "completion_ms": null}"#;

    #[test]
    fn schema_4_with_restart_rows_on_both_drivers_accepted() {
        let rows = format!(
            "{}, {}, {}, {}",
            with_applicable(GOOD_ROW, true),
            restart_row("simnet"),
            restart_row("tcp"),
            NA_ROW
        );
        assert_eq!(
            validate(&doc(&schema4(&rows)), None, 3.0, 1, None, 0),
            Ok((1, 1, 4, 0))
        );
    }

    #[test]
    fn schema_4_missing_a_restart_driver_is_rejected() {
        let rows = format!(
            "{}, {}",
            with_applicable(GOOD_ROW, true),
            restart_row("simnet")
        );
        let err = validate(&doc(&schema4(&rows)), None, 3.0, 1, None, 0).unwrap_err();
        assert!(err.contains("restart rows"), "{err}");
        assert!(err.contains("tcp"), "{err}");
        // A not-applicable restart row does not count as coverage.
        let na_restart = NA_ROW
            .replace("early_reply_reordering", "restart")
            .replace("rum-sequential", "rum-general");
        let rows = format!(
            "{}, {}, {}",
            with_applicable(GOOD_ROW, true),
            restart_row("simnet"),
            na_restart
        );
        let err = validate(&doc(&schema4(&rows)), None, 3.0, 1, None, 0).unwrap_err();
        assert!(err.contains("restart rows"), "{err}");
    }

    #[test]
    fn schema_4_rows_must_carry_the_applicable_flag() {
        let rows = format!(
            "{GOOD_ROW}, {}, {}",
            restart_row("simnet"),
            restart_row("tcp")
        );
        let err = validate(&doc(&schema4(&rows)), None, 3.0, 1, None, 0).unwrap_err();
        assert!(err.contains("applicable"), "{err}");
    }

    #[test]
    fn not_applicable_rows_must_be_zero_placeholders() {
        let loaded = with_applicable(GOOD_ROW, false);
        let rows = format!(
            "{loaded}, {}, {}",
            restart_row("simnet"),
            restart_row("tcp")
        );
        let err = validate(&doc(&schema4(&rows)), None, 3.0, 1, None, 0).unwrap_err();
        assert!(err.contains("not-applicable"), "{err}");
        // Zero counts are not enough: a smuggled rate or completion time on
        // a never-run cell is rejected too.
        for tainted in [
            NA_ROW.replace("\"false_ack_rate\": 0.0", "\"false_ack_rate\": 0.9"),
            NA_ROW.replace("\"missed_ack_rate\": 0.0", "\"missed_ack_rate\": 0.5"),
            NA_ROW.replace("\"completion_ms\": null", "\"completion_ms\": 50.0"),
        ] {
            let rows = format!(
                "{tainted}, {}, {}",
                restart_row("simnet"),
                restart_row("tcp")
            );
            let err = validate(&doc(&schema4(&rows)), None, 3.0, 1, None, 0).unwrap_err();
            assert!(err.contains("not-applicable"), "{err}");
        }
    }

    #[test]
    fn schema_3_must_not_carry_applicable() {
        let row = with_applicable(GOOD_ROW, true);
        let err = validate(&doc(&schema3(&row)), None, 3.0, 1, None, 0).unwrap_err();
        assert!(err.contains("requires schema 4"), "{err}");
    }

    /// A well-formed telemetry-overhead throughput row (schema 5).
    const OVERHEAD_ROW: &str = r#"{"experiment": "telemetry_overhead/indexed_10", "ops": 10,
        "median_elapsed_ms": 1.02, "ops_per_sec": 9800.0, "runs": 3, "overhead_pct": 1.2}"#;

    /// Builds a schema-5 document: schema 4 with full restart coverage plus
    /// the given telemetry-overhead throughput row.
    fn schema5(overhead_row: &str) -> String {
        let rows = format!(
            "{}, {}, {}",
            with_applicable(GOOD_ROW, true),
            restart_row("simnet"),
            restart_row("tcp")
        );
        schema4(&rows)
            .replace("\"schema\": 4", "\"schema\": 5")
            .replace(
                "\"speedup\": 100.0}]",
                &format!("\"speedup\": 100.0}}, {overhead_row}]"),
            )
    }

    #[test]
    fn schema_5_with_overhead_row_accepted() {
        assert_eq!(
            validate(&doc(&schema5(OVERHEAD_ROW)), None, 3.0, 1, None, 0),
            Ok((1, 2, 3, 0))
        );
        // Slightly-negative overhead is measurement noise, not an error.
        let lucky = OVERHEAD_ROW.replace("\"overhead_pct\": 1.2", "\"overhead_pct\": -0.3");
        assert_eq!(
            validate(&doc(&schema5(&lucky)), None, 3.0, 1, None, 0),
            Ok((1, 2, 3, 0))
        );
    }

    #[test]
    fn schema_5_requires_an_overhead_row() {
        let missing =
            schema5(OVERHEAD_ROW).replace("telemetry_overhead/indexed_10", "codec/encode_10");
        let err = validate(&doc(&missing), None, 3.0, 1, None, 0).unwrap_err();
        assert!(err.contains("overhead_pct"), "{err}");
        let dropped = schema4(&format!(
            "{}, {}, {}",
            with_applicable(GOOD_ROW, true),
            restart_row("simnet"),
            restart_row("tcp")
        ))
        .replace("\"schema\": 4", "\"schema\": 5");
        let err = validate(&doc(&dropped), None, 3.0, 1, None, 0).unwrap_err();
        assert!(err.contains("telemetry_overhead"), "{err}");
    }

    #[test]
    fn overhead_at_or_above_the_cap_is_rejected() {
        let slow = OVERHEAD_ROW.replace("\"overhead_pct\": 1.2", "\"overhead_pct\": 3.0");
        let err = validate(&doc(&schema5(&slow)), None, 3.0, 1, None, 0).unwrap_err();
        assert!(err.contains("at or above"), "{err}");
        // A looser explicit cap admits the same row.
        assert_eq!(
            validate(&doc(&schema5(&slow)), None, 10.0, 1, None, 0),
            Ok((1, 2, 3, 0))
        );
        // A null (NaN) overhead is rejected regardless of cap.
        let nan = OVERHEAD_ROW.replace("\"overhead_pct\": 1.2", "\"overhead_pct\": null");
        assert!(validate(&doc(&schema5(&nan)), None, 100.0, 1, None, 0)
            .unwrap_err()
            .contains("overhead_pct"));
    }

    #[test]
    fn overhead_rows_require_schema_5() {
        let smuggled = schema5(OVERHEAD_ROW).replace("\"schema\": 5", "\"schema\": 4");
        let err = validate(&doc(&smuggled), None, 3.0, 1, None, 0).unwrap_err();
        assert!(err.contains("require schema 5"), "{err}");
    }

    #[test]
    fn overhead_pct_on_other_rows_is_rejected() {
        let tainted = schema5(OVERHEAD_ROW).replace(
            "\"speedup\": 100.0}",
            "\"speedup\": 100.0, \"overhead_pct\": 0.5}",
        );
        let err = validate(&doc(&tainted), None, 3.0, 1, None, 0).unwrap_err();
        assert!(err.contains("unexpected overhead_pct"), "{err}");
    }

    #[test]
    fn schema_2_with_matrix_section_is_rejected() {
        let sneaky = schema3(GOOD_ROW).replace("\"schema\": 3", "\"schema\": 2");
        assert!(validate(&doc(&sneaky), None, 3.0, 1, None, 0)
            .unwrap_err()
            .contains("schema 2 must not carry"));
    }

    #[test]
    fn missing_matrix_section_in_schema_3_is_rejected() {
        let missing = SCHEMA2.replace("\"schema\": 2", "\"schema\": 3");
        assert!(validate(&doc(&missing), None, 3.0, 1, None, 0)
            .unwrap_err()
            .contains("scenario_matrix"));
    }

    /// A clean simnet soak row (schema 6).
    const SOAK_SIMNET_ROW: &str = r#"{"experiment": "session_soak/simnet/early_reply",
        "driver": "simnet", "fault": "early_reply", "sessions": 200, "completed": 200,
        "aborted": 0, "planned_mods": 600, "confirmed_mods": 600, "false_acks": 0,
        "missed_acks": 0, "stray_acks": 0, "p50_confirm_ms": 40.0,
        "p99_confirm_ms": 180.0, "p999_confirm_ms": 523.0, "wall_ms": 2500.0}"#;

    fn soak_tcp_row() -> String {
        SOAK_SIMNET_ROW
            .replace("simnet", "tcp")
            .replace("\"p999_confirm_ms\": 523.0", "\"p999_confirm_ms\": 910.0")
    }

    /// Builds a schema-6 document: schema 5 plus the given session-soak rows
    /// (joined by commas by the caller).
    fn schema6(soak_rows: &str) -> String {
        schema5(OVERHEAD_ROW)
            .replace("\"schema\": 5", "\"schema\": 6")
            .replace(
                "]\n    }",
                &format!("],\n      \"session_soak\": [{soak_rows}]\n    }}"),
            )
    }

    fn both_drivers() -> String {
        format!("{SOAK_SIMNET_ROW}, {}", soak_tcp_row())
    }

    #[test]
    fn schema_6_with_clean_soak_rows_accepted() {
        assert_eq!(
            validate(&doc(&schema6(&both_drivers())), None, 3.0, 1, None, 0),
            Ok((1, 2, 3, 2))
        );
        // A demanding session floor that the rows meet is fine too.
        assert_eq!(
            validate(&doc(&schema6(&both_drivers())), None, 3.0, 200, None, 0),
            Ok((1, 2, 3, 2))
        );
    }

    #[test]
    fn soak_false_acks_are_rejected() {
        let lying = both_drivers().replacen("\"false_acks\": 0", "\"false_acks\": 2", 1);
        let err = validate(&doc(&schema6(&lying)), None, 3.0, 1, None, 0).unwrap_err();
        assert!(err.contains("false acks"), "{err}");
    }

    #[test]
    fn incomplete_soak_is_rejected() {
        // A missed ack must show up as both a shortfall in confirmed_mods
        // and a non-zero missed count; the gate rejects it.
        let stalled = both_drivers()
            .replacen("\"completed\": 200", "\"completed\": 199", 1)
            .replacen("\"confirmed_mods\": 600", "\"confirmed_mods\": 597", 1)
            .replacen("\"missed_acks\": 0", "\"missed_acks\": 3", 1);
        let err = validate(&doc(&schema6(&stalled)), None, 3.0, 1, None, 0).unwrap_err();
        assert!(err.contains("incomplete soak"), "{err}");
        // Inconsistent books (confirmed + missed != planned) are caught
        // before the verdict gates.
        let fudged =
            both_drivers().replacen("\"confirmed_mods\": 600", "\"confirmed_mods\": 599", 1);
        let err = validate(&doc(&schema6(&fudged)), None, 3.0, 1, None, 0).unwrap_err();
        assert!(err.contains("!= planned"), "{err}");
    }

    #[test]
    fn soak_missing_a_driver_is_rejected() {
        let err = validate(&doc(&schema6(SOAK_SIMNET_ROW)), None, 3.0, 1, None, 0).unwrap_err();
        assert!(err.contains("both drivers"), "{err}");
        assert!(err.contains("tcp"), "{err}");
    }

    #[test]
    fn soak_tail_percentiles_must_be_finite_and_monotone() {
        // NaN serialises as null; a soak whose p99.9 could not be measured
        // has not demonstrated its tail.
        let nan =
            both_drivers().replacen("\"p999_confirm_ms\": 523.0", "\"p999_confirm_ms\": null", 1);
        let err = validate(&doc(&schema6(&nan)), None, 3.0, 1, None, 0).unwrap_err();
        assert!(err.contains("p99.9"), "{err}");
        let inverted =
            both_drivers().replacen("\"p999_confirm_ms\": 523.0", "\"p999_confirm_ms\": 90.0", 1);
        let err = validate(&doc(&schema6(&inverted)), None, 3.0, 1, None, 0).unwrap_err();
        assert!(err.contains("not monotone"), "{err}");
    }

    #[test]
    fn soak_below_the_session_floor_is_rejected() {
        let err = validate(&doc(&schema6(&both_drivers())), None, 3.0, 500, None, 0).unwrap_err();
        assert!(err.contains("required >= 500"), "{err}");
    }

    #[test]
    fn soak_section_requires_schema_6() {
        let smuggled = schema6(&both_drivers()).replace("\"schema\": 6", "\"schema\": 5");
        let err = validate(&doc(&smuggled), None, 3.0, 1, None, 0).unwrap_err();
        assert!(err.contains("must not carry a session_soak"), "{err}");
    }

    #[test]
    fn missing_soak_section_in_schema_6_is_rejected() {
        let missing = schema5(OVERHEAD_ROW).replace("\"schema\": 5", "\"schema\": 6");
        let err = validate(&doc(&missing), None, 3.0, 1, None, 0).unwrap_err();
        assert!(err.contains("session_soak"), "{err}");
    }

    /// An applicable restart_resync row with a clean resync verdict
    /// (schema 7).
    fn resync_row(driver: &str) -> String {
        restart_row(driver)
            .replace("restart", "restart_resync")
            .replace(
                "\"completion_ms\": 812.5",
                "\"completion_ms\": 812.5, \"resync_converged\": true, \"resync_rounds\": 2, \
             \"resync_final_diff\": 0, \"resync_delta_mods\": 4, \"resync_table_matches\": true",
            )
    }

    /// Builds a schema-7 document: schema 6 with the given extra matrix rows
    /// appended to the scenario-matrix section.
    fn schema7(resync_rows: &str) -> String {
        schema6(&both_drivers())
            .replace("\"schema\": 6", "\"schema\": 7")
            .replace(
                "],\n      \"session_soak\"",
                &format!(", {resync_rows}],\n      \"session_soak\""),
            )
    }

    #[test]
    fn schema_7_with_converged_resync_rows_accepted() {
        let rows = format!("{}, {}", resync_row("simnet"), resync_row("tcp"));
        assert_eq!(
            validate(&doc(&schema7(&rows)), None, 3.0, 1, None, 0),
            Ok((1, 2, 5, 2))
        );
    }

    #[test]
    fn schema_7_missing_a_resync_driver_is_rejected() {
        let err =
            validate(&doc(&schema7(&resync_row("simnet"))), None, 3.0, 1, None, 0).unwrap_err();
        assert!(err.contains("restart_resync rows"), "{err}");
        assert!(err.contains("tcp"), "{err}");
        // A schema-7 file with no resync rows at all fails the same gate.
        let bare = schema6(&both_drivers()).replace("\"schema\": 6", "\"schema\": 7");
        let err = validate(&doc(&bare), None, 3.0, 1, None, 0).unwrap_err();
        assert!(err.contains("restart_resync rows"), "{err}");
    }

    #[test]
    fn unconverged_resync_is_rejected() {
        for (from, to) in [
            ("\"resync_converged\": true", "\"resync_converged\": false"),
            ("\"resync_final_diff\": 0", "\"resync_final_diff\": 2"),
            (
                "\"resync_table_matches\": true",
                "\"resync_table_matches\": false",
            ),
            ("\"resync_rounds\": 2", "\"resync_rounds\": 0"),
        ] {
            let rows = format!(
                "{}, {}",
                resync_row("simnet").replace(from, to),
                resync_row("tcp")
            );
            let err = validate(&doc(&schema7(&rows)), None, 3.0, 1, None, 0).unwrap_err();
            assert!(err.contains("failed to restore"), "{from} -> {to}: {err}");
        }
    }

    #[test]
    fn schema_7_resync_row_without_verdict_is_rejected() {
        // An applicable restart_resync row that dropped its verdict fields
        // is a broken harness, not a passing gate.
        let bare = restart_row("simnet").replace("restart", "restart_resync");
        let rows = format!("{bare}, {}", resync_row("tcp"));
        let err = validate(&doc(&schema7(&rows)), None, 3.0, 1, None, 0).unwrap_err();
        assert!(err.contains("missing its resync verdict"), "{err}");
    }

    #[test]
    fn resync_fields_require_schema_7_and_the_resync_fault() {
        // Smuggled into a schema-6 file: rejected.
        let rows = format!("{}, {}", resync_row("simnet"), resync_row("tcp"));
        let smuggled = schema7(&rows).replace("\"schema\": 7", "\"schema\": 6");
        let err = validate(&doc(&smuggled), None, 3.0, 1, None, 0).unwrap_err();
        assert!(err.contains("require schema 7"), "{err}");
        // Attached to a plain restart row: rejected.
        let tainted = restart_row("simnet").replace(
            "\"completion_ms\": 812.5",
            "\"completion_ms\": 812.5, \"resync_converged\": true",
        );
        let rows = format!("{tainted}, {}, {}", resync_row("simnet"), resync_row("tcp"));
        let err = validate(&doc(&schema7(&rows)), None, 3.0, 1, None, 0).unwrap_err();
        assert!(err.contains("only valid on restart_resync"), "{err}");
    }

    /// A well-formed end-to-end wire-throughput row (schema 8): sharded
    /// proxy throughput with the legacy proxy as the in-run baseline.
    const WIRE_ROW: &str = r#"{"experiment": "wire_e2e/flow_mods_64sw", "ops": 128000,
        "median_elapsed_ms": 120.0, "ops_per_sec": 1066666.0, "runs": 1,
        "baseline_ops_per_sec": 150000.0, "speedup": 7.1}"#;

    /// Builds a schema-8 document: the full schema-7 document with
    /// `switches` stamped onto every matrix and soak row, the wire row
    /// appended to the throughput section, and the given scale rows (which
    /// carry their own `switches` counts) appended to their sections.
    fn schema8(scale_matrix_rows: &str, scale_soak_rows: &str) -> String {
        let resync = format!("{}, {}", resync_row("simnet"), resync_row("tcp"));
        let mut text = schema7(&resync)
            .replace("\"schema\": 7", "\"schema\": 8")
            .replace("\"planned\":", "\"switches\": 3, \"planned\":")
            .replace("\"sessions\":", "\"switches\": 3, \"sessions\":")
            .replace(
                "\"overhead_pct\": 1.2}",
                &format!("\"overhead_pct\": 1.2}}, {WIRE_ROW}"),
            );
        if !scale_matrix_rows.is_empty() {
            text = text.replace(
                "],\n      \"session_soak\"",
                &format!(", {scale_matrix_rows}],\n      \"session_soak\""),
            );
        }
        if !scale_soak_rows.is_empty() {
            text = text.replace("]\n    }", &format!(", {scale_soak_rows}]\n    }}"));
        }
        text
    }

    /// An applicable probing matrix row at 1,000 switches with a clean
    /// verdict — what the scale gate demands on each driver.
    fn scale_row(driver: &str) -> String {
        with_applicable(GOOD_ROW, true)
            .replace(
                "\"driver\": \"simnet\"",
                &format!("\"driver\": \"{driver}\""),
            )
            .replace("barrier-only", "rum-general")
            .replace("\"false_acks\": 8", "\"false_acks\": 0")
            .replace("\"false_ack_rate\": 1.0", "\"false_ack_rate\": 0.0")
            .replace("\"planned\":", "\"switches\": 1000, \"planned\":")
    }

    /// A clean TCP soak row at 1,000 switches.
    fn scale_soak_row() -> String {
        soak_tcp_row().replace("\"sessions\":", "\"switches\": 1000, \"sessions\":")
    }

    fn full_schema8() -> String {
        schema8(
            &format!("{}, {}", scale_row("simnet"), scale_row("tcp")),
            &scale_soak_row(),
        )
    }

    #[test]
    fn schema_8_with_scale_and_wire_rows_accepted() {
        // No floors: the shape alone validates.
        assert_eq!(
            validate(&doc(&full_schema8()), None, 3.0, 1, None, 0),
            Ok((1, 3, 7, 3))
        );
        // With every scale gate armed: wire speedup floor, 1,000-switch
        // matrix + soak floors.
        assert_eq!(
            validate(&doc(&full_schema8()), None, 3.0, 1, Some(5.0), 1000),
            Ok((1, 3, 7, 3))
        );
    }

    #[test]
    fn schema_8_rows_must_carry_switches() {
        // A matrix row that lost its fleet size.
        let missing = full_schema8().replacen("\"switches\": 3, \"planned\":", "\"planned\":", 1);
        let err = validate(&doc(&missing), None, 3.0, 1, None, 0).unwrap_err();
        assert!(err.contains("switches"), "{err}");
        // A soak row that lost its fleet size.
        let missing = full_schema8().replacen("\"switches\": 3, \"sessions\":", "\"sessions\":", 1);
        let err = validate(&doc(&missing), None, 3.0, 1, None, 0).unwrap_err();
        assert!(err.contains("switches"), "{err}");
    }

    #[test]
    fn switches_fields_require_schema_8() {
        // Drop the wire row too, so the first schema-8 artefact the
        // validator trips over is the smuggled switches field itself.
        let smuggled = full_schema8()
            .replace("\"schema\": 8", "\"schema\": 7")
            .replace(&format!(", {WIRE_ROW}"), "");
        let err = validate(&doc(&smuggled), None, 3.0, 1, None, 0).unwrap_err();
        assert!(err.contains("\"switches\" requires schema 8"), "{err}");
    }

    #[test]
    fn schema_8_requires_a_wire_row() {
        let missing = full_schema8().replace("wire_e2e/flow_mods_64sw", "codec/encode_64");
        let err = validate(&doc(&missing), None, 3.0, 1, None, 0).unwrap_err();
        assert!(err.contains("wire_e2e"), "{err}");
        // And wire rows cannot be smuggled into older schemas.
        let old = schema7(&format!("{}, {}", resync_row("simnet"), resync_row("tcp"))).replace(
            "\"overhead_pct\": 1.2}",
            &format!("\"overhead_pct\": 1.2}}, {WIRE_ROW}"),
        );
        let err = validate(&doc(&old), None, 3.0, 1, None, 0).unwrap_err();
        assert!(err.contains("require schema 8"), "{err}");
    }

    #[test]
    fn wire_speedup_below_the_floor_is_rejected() {
        let err = validate(&doc(&full_schema8()), None, 3.0, 1, Some(10.0), 0).unwrap_err();
        assert!(err.contains("below the required 10"), "{err}");
        // A floor against a pre-wire schema is unprovable, not vacuously
        // satisfied.
        let old = format!("{}, {}", resync_row("simnet"), resync_row("tcp"));
        let err = validate(&doc(&schema7(&old)), None, 3.0, 1, Some(5.0), 0).unwrap_err();
        assert!(err.contains("needs schema 8"), "{err}");
    }

    #[test]
    fn matrix_switch_floor_demands_both_drivers_at_scale() {
        // Only the simnet scale row present: the tcp gate trips.
        let partial = schema8(&scale_row("simnet"), &scale_soak_row());
        let err = validate(&doc(&partial), None, 3.0, 1, None, 1000).unwrap_err();
        assert!(err.contains("switches >= 1000"), "{err}");
        assert!(err.contains("tcp"), "{err}");
        // A scale row with a false ack does not count as coverage.
        let lying = full_schema8().replacen(
            "\"switches\": 1000, \"planned\": 8, \"confirmed\": 8, \"false_acks\": 0",
            "\"switches\": 1000, \"planned\": 8, \"confirmed\": 8, \"false_acks\": 1",
            1,
        );
        let err = validate(&doc(&lying), None, 3.0, 1, None, 1000).unwrap_err();
        assert!(err.contains("switches >= 1000"), "{err}");
        // A floor against a pre-scale schema is unprovable.
        let old = format!("{}, {}", resync_row("simnet"), resync_row("tcp"));
        let err = validate(&doc(&schema7(&old)), None, 3.0, 1, None, 1000).unwrap_err();
        assert!(err.contains("needs schema 8"), "{err}");
    }

    #[test]
    fn soak_switch_floor_demands_a_tcp_fleet_run() {
        // Scale matrix rows present but the soak stayed at 3 switches.
        let no_scale_soak = schema8(
            &format!("{}, {}", scale_row("simnet"), scale_row("tcp")),
            "",
        );
        let err = validate(&doc(&no_scale_soak), None, 3.0, 1, None, 1000).unwrap_err();
        assert!(err.contains("no tcp session_soak row"), "{err}");
    }
}
