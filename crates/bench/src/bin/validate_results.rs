//! Validates a `BENCH_results.json` document against the schema-2 shape
//! `bench_results` writes (see `rum_bench::report::results_json`), so CI
//! catches a broken harness before a stale or malformed results file lands.
//!
//! Usage: `validate_results [path] [min_speedup]`
//! (defaults: `BENCH_results.json`, no speedup floor).  When `min_speedup`
//! is given, every `flow_mod_install/indexed_*` row must carry a `speedup`
//! field of at least that factor over the linear-scan baseline.
//!
//! The build environment has no serde, so this ships a minimal JSON parser —
//! enough for the flat document the harness emits.

use std::collections::BTreeMap;
use std::process::ExitCode;

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.error("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or_else(|| self.error("unclosed string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through byte by byte;
                    // the input came from a &str so it is valid UTF-8.
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn document(mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.error("trailing garbage"));
        }
        Ok(v)
    }
}

fn get<'a>(obj: &'a BTreeMap<String, Json>, key: &str) -> Result<&'a Json, String> {
    obj.get(key).ok_or_else(|| format!("missing key \"{key}\""))
}

fn num(obj: &BTreeMap<String, Json>, key: &str) -> Result<f64, String> {
    match get(obj, key)? {
        Json::Num(n) => Ok(*n),
        Json::Null => Ok(f64::NAN), // latency of an incomplete run
        other => Err(format!("\"{key}\" is not a number: {other:?}")),
    }
}

fn validate(doc: &Json, min_speedup: Option<f64>) -> Result<(usize, usize), String> {
    let Json::Obj(root) = doc else {
        return Err("document root is not an object".into());
    };
    match get(root, "schema")? {
        Json::Num(v) if *v == 2.0 => {}
        other => return Err(format!("schema must be 2, got {other:?}")),
    }
    let Json::Arr(results) = get(root, "results")? else {
        return Err("\"results\" is not an array".into());
    };
    for (i, row) in results.iter().enumerate() {
        let Json::Obj(row) = row else {
            return Err(format!("results[{i}] is not an object"));
        };
        match get(row, "experiment")? {
            Json::Str(_) => {}
            other => return Err(format!("results[{i}].experiment: {other:?}")),
        }
        num(row, "median_completion_ms")?;
        num(row, "p95_completion_ms")?;
        num(row, "confirms")?;
        num(row, "runs")?;
    }
    let Json::Arr(throughput) = get(root, "throughput")? else {
        return Err("\"throughput\" is not an array".into());
    };
    if throughput.is_empty() {
        return Err("no throughput rows".into());
    }
    let mut install_rows = 0usize;
    for (i, row) in throughput.iter().enumerate() {
        let Json::Obj(row) = row else {
            return Err(format!("throughput[{i}] is not an object"));
        };
        let Json::Str(name) = get(row, "experiment")? else {
            return Err(format!("throughput[{i}].experiment is not a string"));
        };
        num(row, "ops")?;
        num(row, "runs")?;
        let elapsed = num(row, "median_elapsed_ms")?;
        let ops_per_sec = num(row, "ops_per_sec")?;
        if !elapsed.is_finite() || !ops_per_sec.is_finite() || ops_per_sec <= 0.0 {
            return Err(format!("throughput[{i}] has non-finite measurements"));
        }
        if name.starts_with("flow_mod_install/indexed") {
            install_rows += 1;
            let speedup = num(row, "speedup")?;
            if !speedup.is_finite() || speedup <= 0.0 {
                return Err(format!("{name}: bad speedup {speedup}"));
            }
            if let Some(floor) = min_speedup {
                if speedup < floor {
                    return Err(format!(
                        "{name}: speedup {speedup:.1}x below the required {floor}x"
                    ));
                }
            }
        }
    }
    if install_rows == 0 {
        return Err("no flow_mod_install/indexed_* throughput row".into());
    }
    Ok((results.len(), throughput.len()))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let path = args
        .get(1)
        .map(String::as_str)
        .unwrap_or("BENCH_results.json");
    let min_speedup: Option<f64> = args.get(2).and_then(|s| s.parse().ok());

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("validate_results: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match Parser::new(&text).document() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("validate_results: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate(&doc, min_speedup) {
        Ok((latency, throughput)) => {
            println!(
                "validate_results: {path} OK ({latency} latency rows, {throughput} throughput rows)"
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("validate_results: {path} failed validation: {e}");
            ExitCode::FAILURE
        }
    }
}
