//! `rumtop` — a refreshing terminal dashboard for a running RUM
//! deployment's telemetry endpoint.
//!
//! ```text
//! rumtop <addr> [--once] [--interval <ms>]
//! ```
//!
//! Scrapes `addr` (a `telemetry::serve` endpoint, e.g. the one the
//! `tcp_consistent_update --telemetry` example prints) every `--interval`
//! milliseconds (default 500) and redraws the per-switch dashboard in
//! place.  `--once` prints a single snapshot without touching the screen —
//! useful in scripts and CI.

use rum_bench::observer::render;
use std::net::SocketAddr;
use std::time::Duration;

fn usage() -> ! {
    eprintln!("usage: rumtop <addr> [--once] [--interval <ms>]");
    std::process::exit(2);
}

fn main() {
    let mut addr: Option<SocketAddr> = None;
    let mut once = false;
    let mut interval = Duration::from_millis(500);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--once" => once = true,
            "--interval" => {
                let Some(ms) = args.next().and_then(|v| v.parse().ok()) else {
                    usage();
                };
                interval = Duration::from_millis(ms);
            }
            other => match other.parse() {
                Ok(a) => addr = Some(a),
                Err(_) => usage(),
            },
        }
    }
    let Some(addr) = addr else { usage() };

    let scrape_timeout = Duration::from_secs(2);
    if once {
        match telemetry::scrape(addr, scrape_timeout) {
            Ok(snapshot) => print!("{}", render(&snapshot)),
            Err(err) => {
                eprintln!("rumtop: scraping {addr}: {err}");
                std::process::exit(1);
            }
        }
        return;
    }

    let mut failures = 0u32;
    loop {
        match telemetry::scrape(addr, scrape_timeout) {
            Ok(snapshot) => {
                failures = 0;
                // Clear the screen and home the cursor, then redraw.
                print!("\x1b[2J\x1b[H{}", render(&snapshot));
                println!("\n(refreshing every {interval:?}, ^C to quit)");
            }
            Err(err) => {
                failures += 1;
                // The observed process may simply have exited; give up
                // after a few consecutive failures instead of spinning.
                if failures >= 5 {
                    eprintln!("rumtop: scraping {addr}: {err}");
                    std::process::exit(1);
                }
            }
        }
        std::thread::sleep(interval);
    }
}
