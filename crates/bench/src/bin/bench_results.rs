//! Runs the end-to-end experiment for every acknowledgment technique across
//! several seeds, the throughput microbenchmarks (bulk flow-mod install
//! indexed vs. linear-scan baseline, telemetry-instrumented install for the
//! metric-overhead row, codec encode/decode, engine/session drains), and
//! the technique × fault scenario matrix on both drivers, and writes
//! machine-readable aggregates to `BENCH_results.json` (schema 5 — see
//! `rum_bench::report::results_json`), so the performance and reliability
//! trajectory is tracked across PRs instead of only being pretty-printed.
//!
//! Usage: `bench_results [n_flows] [output_path] [install_n] [matrix_rules]
//! [soak_sessions] [scale_switches]` (defaults: 40 flows,
//! `BENCH_results.json` in the current directory, a 100 000-entry bulk
//! install, a 10-rule scenario matrix, a 200-tenant session soak on both
//! drivers, and a 1,000-switch scale layer; pass `matrix_rules = 0` to
//! skip the matrix, `soak_sessions = 0` to skip the soaks,
//! `scale_switches = 0` to skip the scale layer).  CI's smoke job passes
//! small values so the quadratic linear-scan baseline, the wall-clock TCP
//! matrix and the soak stay fast there; the committed `BENCH_results.json`
//! is produced with the defaults.
//!
//! The scale layer (schema 8) runs the sharded proxy against a
//! `scale_switches`-switch early-reply ring on both drivers (zero
//! false-ack matrix rows at fleet size), measures end-to-end wire
//! throughput against the legacy thread-per-connection proxy (the
//! `wire_e2e/*` row whose `speedup` is the sharding win), and re-runs the
//! multi-tenant TCP soak with its tenants spread across the whole fleet.

use ofswitch::SwitchModel;
use rum_bench::experiments::{run_end_to_end, EndToEndTechnique};
use rum_bench::report::{write_results, ExperimentRecord, MatrixRecord, ThroughputRecord};
use rum_bench::scale::{run_simnet_scale_cell, run_tcp_scale_cell, run_tcp_scale_soak};
use rum_bench::scenario_matrix::{render_grid, run_simnet_matrix, run_tcp_matrix};
use rum_bench::session_soak::{early_reply_fault, run_simnet_soak, run_tcp_soak, SoakConfig};
use rum_bench::throughput;
use rum_bench::wire::{run_wire_throughput, WireConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const SEEDS: [u64; 5] = [11, 22, 33, 44, 55];

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Medians are over this many repetitions of each throughput workload
/// (except the linear-scan baseline, whose quadratic cost makes one run
/// representative enough).
const THROUGHPUT_RUNS: usize = 3;

/// The bulk-install workloads get extra repetitions: the telemetry-overhead
/// row compares two nearly identical measurements, so its noise floor has
/// to be well under the 3% acceptance bar — and single-core boxes swing
/// individual runs by several percent, so the best-of comparison needs a
/// deep pool to draw from.
const INSTALL_RUNS: usize = 9;

fn throughput_records(install_n: usize) -> Vec<ThroughputRecord> {
    let mut records = Vec::new();

    // Bulk flow-mod install: indexed table vs. the linear-scan oracle on the
    // identical workload.  This is the acceptance measurement for the
    // indexed-table redesign (target: >= 10x at 100k entries).  The
    // instrumented variant is interleaved with the plain one (after warming
    // both) so clock/cache drift hits both sides of the overhead comparison
    // equally instead of masquerading as instrumentation cost.
    let mods = throughput::bulk_flow_mods(install_n);
    throughput::install_indexed(&mods);
    throughput::install_indexed_instrumented(&mods, &telemetry::Registry::new());
    let mut indexed = Vec::new();
    let mut instrumented = Vec::new();
    for _ in 0..INSTALL_RUNS {
        indexed.push(ms(throughput::install_indexed(&mods)));
        instrumented.push(ms(throughput::install_indexed_instrumented(
            &mods,
            &telemetry::Registry::new(),
        )));
    }
    let linear = ms(throughput::install_linear(&mods));
    let baseline_ops_per_sec = install_n as f64 / (linear / 1e3);
    records.push(
        ThroughputRecord::from_runs(
            format!("flow_mod_install/indexed_{install_n}"),
            install_n as u64,
            &indexed,
        )
        .with_baseline(baseline_ops_per_sec),
    );
    records.push(ThroughputRecord::from_runs(
        format!("flow_mod_install/linear_{install_n}"),
        install_n as u64,
        &[linear],
    ));

    // Telemetry overhead: the identical indexed install with the hot-path
    // metric operations active (sharded counter, per-thread recorder, one
    // gauge publish), measured above.  The overhead is computed from the
    // best run of each variant so scheduler noise does not masquerade as a
    // regression; the acceptance bar is < 3% (checked by
    // `validate_results`).
    let best = |runs: &[f64]| runs.iter().copied().fold(f64::INFINITY, f64::min);
    let overhead_pct = (best(&instrumented) - best(&indexed)) / best(&indexed) * 100.0;
    records.push(
        ThroughputRecord::from_runs(
            format!("telemetry_overhead/indexed_{install_n}"),
            install_n as u64,
            &instrumented,
        )
        .with_overhead(overhead_pct),
    );

    // Codec throughput over a proxy-shaped message mix.
    let n_msgs = 4096.min(install_n.max(64));
    let msgs = throughput::codec_messages(n_msgs);
    let mut wire = Vec::new();
    let encode: Vec<f64> = (0..THROUGHPUT_RUNS)
        .map(|_| ms(throughput::encode_throughput(&msgs, &mut wire)))
        .collect();
    records.push(ThroughputRecord::from_runs(
        format!("codec/encode_{n_msgs}"),
        n_msgs as u64,
        &encode,
    ));
    let decode: Vec<f64> = (0..THROUGHPUT_RUNS)
        .map(|_| ms(throughput::decode_throughput(&wire, n_msgs)))
        .collect();
    records.push(ThroughputRecord::from_runs(
        format!("codec/decode_{n_msgs}"),
        n_msgs as u64,
        &decode,
    ));

    // Sans-IO engine and session drains through the reused-buffer entry
    // points.
    let n_inputs = 8192.min(install_n.max(64));
    let engine: Vec<f64> = (0..THROUGHPUT_RUNS)
        .map(|_| ms(throughput::engine_drain_throughput(n_inputs)))
        .collect();
    records.push(ThroughputRecord::from_runs(
        format!("engine/drain_{n_inputs}"),
        n_inputs as u64,
        &engine,
    ));
    let session: Vec<f64> = (0..THROUGHPUT_RUNS)
        .map(|_| ms(throughput::session_drain_throughput(n_inputs)))
        .collect();
    records.push(ThroughputRecord::from_runs(
        format!("session/drain_{n_inputs}"),
        n_inputs as u64,
        &session,
    ));

    records
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_flows: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(40);
    let path: PathBuf = args
        .get(2)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_results.json"));
    let install_n: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(100_000);
    let matrix_rules: usize = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(10);
    let soak_sessions: usize = args.get(5).and_then(|s| s.parse().ok()).unwrap_or(200);
    let scale_switches: usize = args.get(6).and_then(|s| s.parse().ok()).unwrap_or(1_000);

    let mut records = Vec::new();
    for technique in EndToEndTechnique::all() {
        let mut times = Vec::new();
        let mut confirms = u64::MAX;
        for seed in SEEDS {
            let r = run_end_to_end(technique, n_flows, 250, seed);
            times.push(r.controller_completion_ms.unwrap_or(f64::NAN));
            // Worst case across seeds, so a partially-completed run is not
            // masked by the others.
            confirms = confirms.min(r.confirmed_mods as u64);
        }
        let name = format!("end_to_end/{}", technique.label());
        let record = ExperimentRecord::from_runs(&name, &times, confirms);
        println!(
            "{name:<40} median {:>10.1} ms  p95 {:>8.1} ms  confirms {confirms}",
            record.median_completion_ms, record.p95_completion_ms
        );
        records.push(record);
    }

    let mut throughput = throughput_records(install_n);
    if scale_switches > 0 {
        // End-to-end wire throughput: sharded event-loop proxy vs the
        // legacy thread-per-connection proxy on the identical blast.
        let wire_cfg = if scale_switches >= 256 {
            WireConfig::full()
        } else {
            WireConfig::smoke()
        };
        throughput.push(run_wire_throughput(&wire_cfg));
    }
    for r in &throughput {
        let annotation = match (r.speedup(), r.overhead_pct) {
            (Some(speedup), _) if r.experiment.starts_with("wire_e2e/") => {
                format!("  ({speedup:.1}x legacy proxy)")
            }
            (Some(speedup), _) => format!("  ({speedup:.0}x linear baseline)"),
            (None, Some(overhead)) => format!("  ({overhead:+.2}% vs uninstrumented)"),
            (None, None) => String::new(),
        };
        println!(
            "{:<40} median {:>10.1} ms  {:>12.0} ops/s{annotation}",
            r.experiment, r.median_elapsed_ms, r.ops_per_sec
        );
    }

    let mut matrix = Vec::new();
    if matrix_rules > 0 {
        let mut cells = run_simnet_matrix(matrix_rules, 42);
        cells.extend(run_tcp_matrix(matrix_rules, 42));
        println!("\n{}", render_grid(&cells));
        matrix = cells.iter().map(MatrixRecord::from).collect();
    }
    if scale_switches > 0 {
        // The fleet-scale rows: the sharded proxy against a
        // `scale_switches`-switch early-reply ring on both drivers.
        let registry = telemetry::Registry::new();
        let cells = [
            run_simnet_scale_cell(scale_switches, 2, 42, &registry).cell,
            run_tcp_scale_cell(scale_switches, 2, 42, &registry).cell,
        ];
        for cell in &cells {
            println!(
                "scale/{}/{:<12} switches {:>5}  planned {:>5}  false {} missed {}  completion {}",
                cell.driver,
                cell.technique,
                cell.switches,
                cell.planned,
                cell.false_acks,
                cell.missed_acks,
                cell.completion_ms
                    .map(|ms| format!("{ms:.0} ms"))
                    .unwrap_or_else(|| "stalled".into()),
            );
            matrix.push(MatrixRecord::from(cell));
        }
    }

    let mut soak = Vec::new();
    if soak_sessions > 0 {
        let cfg = SoakConfig {
            sessions: soak_sessions,
            ..SoakConfig::default()
        };
        let registry = Arc::new(telemetry::Registry::new());
        for outcome in [
            run_simnet_soak(
                &cfg,
                &early_reply_fault(&SwitchModel::hp5406zl(), cfg.seed),
                &registry,
            ),
            run_tcp_soak(
                &cfg,
                &early_reply_fault(&SwitchModel::fast_buggy(), cfg.seed),
                &registry,
            ),
        ] {
            let r = outcome.record;
            println!(
                "session_soak/{}/{:<14} sessions {:>4} done {:>4}  false {} missed {} stray {}  p50 {:>8.1} ms  p99 {:>8.1} ms  p99.9 {:>8.1} ms",
                r.driver, r.fault, r.sessions, r.completed, r.false_acks, r.missed_acks,
                r.stray_acks, r.p50_confirm_ms, r.p99_confirm_ms, r.p999_confirm_ms
            );
            soak.push(r);
        }
        if scale_switches > 0 {
            // The same tenant population spread across the whole sharded
            // fleet: the schema-8 scale soak row.
            let scale_cfg = SoakConfig {
                sessions: soak_sessions,
                budget: Duration::from_secs(45)
                    + Duration::from_millis(100) * scale_switches as u32,
                ..SoakConfig::default()
            };
            let r = run_tcp_scale_soak(&scale_cfg, scale_switches, &registry).record;
            println!(
                "session_soak/{}/{:<14} switches {:>5} sessions {:>4} done {:>4}  false {} missed {} stray {}  p50 {:>8.1} ms  p99 {:>8.1} ms  p99.9 {:>8.1} ms",
                r.driver, r.fault, r.switches, r.sessions, r.completed, r.false_acks,
                r.missed_acks, r.stray_acks, r.p50_confirm_ms, r.p99_confirm_ms, r.p999_confirm_ms
            );
            soak.push(r);
        }
    }

    write_results(&path, &records, &throughput, &matrix, &soak).expect("write BENCH_results.json");
    println!(
        "\nwrote {} latency + {} throughput + {} matrix + {} soak records to {}",
        records.len(),
        throughput.len(),
        matrix.len(),
        soak.len(),
        path.display()
    );
}
