//! Runs the end-to-end experiment for every acknowledgment technique across
//! several seeds and writes machine-readable aggregates (median/p95 update
//! completion time, confirm counts) to `BENCH_results.json`, so the
//! performance trajectory is tracked across PRs instead of only being
//! pretty-printed.
//!
//! Usage: `bench_results [n_flows] [output_path]`
//! (defaults: 40 flows, `BENCH_results.json` in the current directory).

use rum_bench::experiments::{run_end_to_end, EndToEndTechnique};
use rum_bench::report::{write_results, ExperimentRecord};
use std::path::PathBuf;

const SEEDS: [u64; 5] = [11, 22, 33, 44, 55];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_flows: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(40);
    let path: PathBuf = args
        .get(2)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_results.json"));

    let mut records = Vec::new();
    for technique in EndToEndTechnique::all() {
        let mut times = Vec::new();
        let mut confirms = u64::MAX;
        for seed in SEEDS {
            let r = run_end_to_end(technique, n_flows, 250, seed);
            times.push(r.controller_completion_ms.unwrap_or(f64::NAN));
            // Worst case across seeds, so a partially-completed run is not
            // masked by the others.
            confirms = confirms.min(r.confirmed_mods as u64);
        }
        let name = format!("end_to_end/{}", technique.label());
        let record = ExperimentRecord::from_runs(&name, &times, confirms);
        println!(
            "{name:<32} median {:>8.1} ms  p95 {:>8.1} ms  confirms {confirms}",
            record.median_completion_ms, record.p95_completion_ms
        );
        records.push(record);
    }

    write_results(&path, &records).expect("write BENCH_results.json");
    println!("\nwrote {} records to {}", records.len(), path.display());
}
