//! Table 1: usable rule update rate with sequential probing, normalised to
//! the barrier baseline, as a function of probing frequency and the number of
//! allowed unconfirmed modifications K.
//!
//! Usage: `table1_update_rate [n_rules]` (default 4000, the paper's value;
//! pass a smaller number for a quick run).

use rum_bench::experiments::run_update_rate;
use rum_bench::report;

fn main() {
    let n_rules: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4000);
    let probe_batches = [1usize, 2, 5, 10, 20];
    let windows = [20usize, 50, 100];
    println!("# Table 1 — usable modification rate with sequential probing (R = {n_rules})");
    let mut grid = Vec::new();
    for &batch in &probe_batches {
        let mut row = Vec::new();
        for &k in &windows {
            let result = run_update_rate(batch, k, n_rules, 21);
            eprintln!(
                "probe every {batch} mods, K={k}: probing {:.1} mods/s, baseline {:.1} mods/s, normalized {:.2}",
                result.probing_rate,
                result.baseline_rate,
                result.normalized()
            );
            row.push(result.normalized());
        }
        grid.push(row);
    }
    println!("{}", report::table1_grid(&probe_batches, &windows, &grid));
    println!(
        "paper: 51% when probing after every update, rising to 93-98% when probing after 10-20 \
         updates with K >= 50; small K limits the achievable rate because confirmations do not \
         come back fast enough to keep the switch busy."
    );
}
