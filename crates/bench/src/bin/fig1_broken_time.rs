//! Figure 1b: CDF of per-flow broken time during a consistent path migration,
//! with plain OpenFlow barriers versus working (RUM) acknowledgments.
//!
//! Usage: `fig1_broken_time [n_flows] [packets_per_sec]` (defaults: 300, 250).

use rum_bench::experiments::{run_end_to_end, EndToEndTechnique};
use rum_bench::report;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_flows: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(300);
    let rate: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(250);

    println!("# Figure 1b — consistent update on a buggy switch, {n_flows} flows at {rate} pkt/s");
    let barriers = run_end_to_end(EndToEndTechnique::Barriers, n_flows, rate, 42);
    let general = run_end_to_end(EndToEndTechnique::General, n_flows, rate, 42);
    let sequential = run_end_to_end(EndToEndTechnique::Sequential, n_flows, rate, 42);

    for r in [&barriers, &general, &sequential] {
        println!("{}", report::end_to_end_summary(r));
    }
    println!();
    println!("## CDF (fraction of flows broken longer than x), barriers:");
    print!("{}", report::broken_time_cdf(&barriers, 320.0, 20.0));
    println!();
    println!("## CDF, with working acks (general probing):");
    print!("{}", report::broken_time_cdf(&general, 320.0, 20.0));
    println!();
    println!(
        "paper: with OF barriers most flows lose packets for up to ~290 ms and 6000-7500 packets \
         are lost in total; with working acknowledgments no packets are dropped."
    );
    println!(
        "measured: barriers max_broken={:.0} ms drops={} | general max_broken={:.0} ms drops={}",
        barriers.max_broken_ms(),
        barriers.total_drops,
        general.max_broken_ms(),
        general.total_drops
    );
}
