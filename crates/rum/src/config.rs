//! Configuration of the RUM layer, and the [`RumBuilder`] fluent API that
//! produces it.
//!
//! Deployments construct an engine like this:
//!
//! ```
//! use rum::{RumBuilder, TechniqueConfig};
//! use std::time::Duration;
//!
//! let engine = RumBuilder::new(3)
//!     .technique(TechniqueConfig::default_sequential())
//!     .reliable_barriers(true)
//!     .fine_grained_acks(true)
//!     .control_latency(Duration::from_micros(100))
//!     .probe_links(&[(0, 1), (1, 2)])
//!     .build_config();
//! assert_eq!(engine.n_switches(), 3);
//! ```

use crate::coloring::assign_probe_colors;
use crate::engine::{RumEngine, SwitchId};
use openflow::PortNo;
use std::collections::HashMap;
use std::time::Duration;

/// The reserved "pre-probe" DSCP value carried by freshly injected sequential
/// probes (paper §3.2.1: `H1 == preprobe`).  Expressed as a full ToS byte.
pub const PREPROBE_TOS: u8 = 0xFC;

/// First ToS byte used for per-switch probe-catch values; switch colours map
/// to `CATCH_TOS_BASE - 4 * colour` so they never collide with the pre-probe
/// value and stay within the 64 DSCP codepoints.
pub const CATCH_TOS_BASE: u8 = 0xF8;

/// The largest fleet that can hold a globally unique catch codepoint per
/// switch (`CATCH_TOS_BASE / 4` usable DSCP values).  Beyond this the
/// deployment must share codepoints via vertex colouring over the monitored
/// topology (paper §3.2.2) — [`RumBuilder`] derives that colouring from the
/// port maps automatically when no explicit plan is given.
pub const MAX_UNIQUE_CATCH_SWITCHES: usize = (CATCH_TOS_BASE / 4) as usize;

/// Priority of the probe-catch rule RUM installs on every switch.
pub const CATCH_RULE_PRIORITY: u16 = 65_535;
/// Priority of the versioned sequential-probing rule.
pub const PROBE_RULE_PRIORITY: u16 = 65_534;

/// Which acknowledgment technique a RUM instance runs, with its parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum TechniqueConfig {
    /// Trust the switch's barrier replies (the unreliable baseline).
    BarrierBaseline,
    /// Confirm a fixed delay after the switch's barrier reply.
    StaticTimeout {
        /// The delay added after each barrier reply.
        delay: Duration,
    },
    /// Estimate data-plane activation from an assumed modification rate.
    AdaptiveDelay {
        /// Assumed switch modification rate (rules per second).
        assumed_rate: f64,
        /// Assumed worst-case control-to-data-plane synchronisation lag.
        assumed_sync_lag: Duration,
    },
    /// Versioned probe rule confirming whole batches (requires the switch not
    /// to reorder modifications across barriers).
    SequentialProbing {
        /// Real modifications per probe-rule version bump.
        batch_size: usize,
        /// How often probes are injected while confirmations are outstanding.
        probe_interval: Duration,
    },
    /// Per-rule probe packets; works even on reordering switches.
    GeneralProbing {
        /// How often outstanding rules are (re-)probed.
        probe_interval: Duration,
        /// At most this many oldest unconfirmed rules are probed per round
        /// (the paper probes "up to 30 oldest flow modifications at once").
        max_outstanding: usize,
        /// Confirmation delay used when no distinguishing probe exists.
        fallback_delay: Duration,
    },
}

impl TechniqueConfig {
    /// The paper's default parameters for each technique.
    pub fn default_sequential() -> Self {
        TechniqueConfig::SequentialProbing {
            batch_size: 10,
            probe_interval: Duration::from_millis(10),
        }
    }

    /// The paper's default parameters for general probing.
    pub fn default_general() -> Self {
        TechniqueConfig::GeneralProbing {
            probe_interval: Duration::from_millis(10),
            max_outstanding: 30,
            fallback_delay: Duration::from_millis(300),
        }
    }

    /// A short name used in experiment reports.
    pub fn label(&self) -> &'static str {
        match self {
            TechniqueConfig::BarrierBaseline => "barriers",
            TechniqueConfig::StaticTimeout { .. } => "timeout",
            TechniqueConfig::AdaptiveDelay { .. } => "adaptive",
            TechniqueConfig::SequentialProbing { .. } => "sequential",
            TechniqueConfig::GeneralProbing { .. } => "general",
        }
    }

    /// True for the data-plane probing techniques.
    pub fn is_probing(&self) -> bool {
        matches!(
            self,
            TechniqueConfig::SequentialProbing { .. } | TechniqueConfig::GeneralProbing { .. }
        )
    }
}

/// What RUM knows about one monitored switch's place in the topology.
///
/// This is configuration a network operator derives from the topology (or
/// RUM could learn via LLDP); the probing techniques need it to pick probe
/// injection points and to know which neighbour will catch a probe forwarded
/// out of a given port.  Deliberately deployment-agnostic: switches are
/// identified by [`SwitchId`], never by simulator nodes or sockets.
#[derive(Debug, Clone, Default)]
pub struct SwitchPortMap {
    /// For each local port: the monitored switch reachable through that port.
    pub port_to_switch: HashMap<PortNo, SwitchId>,
    /// A neighbour to inject probes through: `(neighbour switch, the port on
    /// that neighbour that leads to this switch)`.
    pub inject_via: Option<(SwitchId, PortNo)>,
}

impl SwitchPortMap {
    /// The neighbouring monitored switch reached through `port`, if any.
    pub fn next_hop(&self, port: PortNo) -> Option<SwitchId> {
        self.port_to_switch.get(&port).copied()
    }

    /// True when no topology knowledge has been configured at all (the
    /// simulator driver fills such slots in from its topology).
    pub fn is_unspecified(&self) -> bool {
        self.port_to_switch.is_empty() && self.inject_via.is_none()
    }
}

/// The plan for which header field carries probe identifiers and which values
/// are reserved for RUM (paper §3.2.2 "Reducing the number of switch-specific
/// values").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeFieldPlan {
    /// The ToS byte of freshly injected (pre-probe) packets.
    pub preprobe_tos: u8,
    /// Per-switch probe-catch ToS byte (index = switch index).
    pub catch_tos: Vec<u8>,
}

impl ProbeFieldPlan {
    /// Assigns catch values using vertex colouring over the monitored-switch
    /// adjacency so that adjacent switches always differ, then maps colours to
    /// DSCP codepoints.
    pub fn from_links(links: &[(usize, usize)], n_switches: usize) -> Self {
        let colors = assign_probe_colors(links, n_switches);
        let catch_tos = colors
            .iter()
            .map(|&c| {
                let v = CATCH_TOS_BASE as i32 - 4 * c as i32;
                assert!(v > 0, "ran out of DSCP codepoints for probe colours");
                v as u8
            })
            .collect();
        ProbeFieldPlan {
            preprobe_tos: PREPROBE_TOS,
            catch_tos,
        }
    }

    /// Assigns a globally unique value per switch (no colouring), as the
    /// simple variant of the paper does.
    pub fn unique_per_switch(n_switches: usize) -> Self {
        Self::from_links(
            &(0..n_switches)
                .flat_map(|a| (a + 1..n_switches).map(move |b| (a, b)))
                .collect::<Vec<_>>(),
            n_switches,
        )
    }

    /// The catch value of `switch`.
    pub fn catch_tos(&self, switch: SwitchId) -> u8 {
        self.catch_tos[switch.index()]
    }

    /// True if `tos` is one of the values reserved by RUM (pre-probe or any
    /// catch value), i.e. a packet carrying it is a probe, not user traffic.
    pub fn is_probe_tos(&self, tos: u8) -> bool {
        tos & 0xfc == self.preprobe_tos & 0xfc
            || self.catch_tos.iter().any(|&c| c & 0xfc == tos & 0xfc)
    }

    /// The switch whose catch value is `tos`, if any.
    pub fn switch_for_catch_tos(&self, tos: u8) -> Option<SwitchId> {
        self.catch_tos
            .iter()
            .position(|&c| c & 0xfc == tos & 0xfc)
            .map(SwitchId::new)
    }
}

/// Configuration of a whole RUM deployment (one instance monitoring a set of
/// switches on behalf of one controller).  Built through [`RumBuilder`].
#[derive(Debug, Clone)]
pub struct RumConfig {
    /// The acknowledgment technique to run.
    pub technique: TechniqueConfig,
    /// Send fine-grained per-rule acknowledgments (reserved error code) to
    /// the controller, for RUM-aware controllers.
    pub fine_grained_acks: bool,
    /// Provide reliable barriers: hold `BarrierReply` until every earlier
    /// modification is confirmed.
    pub reliable_barriers: bool,
    /// Buffer controller commands that follow an unconfirmed barrier and
    /// release them only after the barrier is acknowledged (needed for
    /// switches that reorder across barriers).
    pub buffer_across_barriers: bool,
    /// One-way latency RUM adds on each hop of the control channel (used by
    /// drivers that model latency, e.g. the simulator; ignored by real
    /// sockets).
    pub control_latency: Duration,
    /// Record every confirmation (switch, cookie) in order, for post-run
    /// inspection.  Disable in long-running deployments to keep memory flat.
    pub record_confirmations: bool,
    /// Per-switch topology knowledge (index = switch index).
    pub port_maps: Vec<SwitchPortMap>,
    /// Header-field plan for probing.
    pub probe_plan: ProbeFieldPlan,
    /// The telemetry registry engine statistics are published into.  `None`
    /// gives the engine a private registry — the stats surface is identical
    /// either way; pass a shared registry to expose a deployment through
    /// `telemetry::serve` alongside other components.
    pub metrics: Option<std::sync::Arc<telemetry::Registry>>,
    /// Which shard of a sharded deployment this engine instance is.  A
    /// standalone (unsharded) engine is shard 0 of 1; the engine only acts
    /// for switches it owns (see [`RumConfig::owns`]), so a
    /// [`crate::ShardedEngine`] can run one engine per shard without any
    /// cross-shard locking.
    pub shard_index: usize,
    /// Total number of shards in the deployment (1 = unsharded).
    pub shard_count: usize,
}

impl RumConfig {
    /// Number of monitored switches.
    pub fn n_switches(&self) -> usize {
        self.port_maps.len()
    }

    /// True when this engine instance owns `switch`: switches are striped
    /// across shards by index (`index % shard_count == shard_index`), so
    /// consecutive switch ids land on different shards.
    pub fn owns(&self, switch: SwitchId) -> bool {
        self.owns_index(switch.index())
    }

    /// [`RumConfig::owns`] by raw switch index.
    pub fn owns_index(&self, index: usize) -> bool {
        self.shard_count <= 1 || index % self.shard_count == self.shard_index
    }

    /// Starts a fluent builder for `n_switches` monitored switches.
    pub fn builder(n_switches: usize) -> RumBuilder {
        RumBuilder::new(n_switches)
    }
}

/// Fluent construction of a RUM deployment configuration (and engine).
///
/// Defaults match the paper's deployment: fine-grained acks on, reliable
/// barriers on, no cross-barrier buffering, 100 µs control-channel latency,
/// one unique probe-catch value per switch, and empty port maps (the
/// simulator driver derives them from its topology; other deployments set
/// them explicitly via [`RumBuilder::port_map`]).
#[derive(Debug, Clone)]
pub struct RumBuilder {
    config: RumConfig,
    shards: usize,
    /// True while the probe plan is still the placeholder of a fleet too
    /// large for unique codepoints: the real plan is coloured from the
    /// port-map adjacency when the deployment is built.
    derive_probe_plan: bool,
}

impl RumBuilder {
    /// A builder for a deployment monitoring `n_switches` switches.
    ///
    /// Fleets up to [`MAX_UNIQUE_CATCH_SWITCHES`] default to one globally
    /// unique probe-catch codepoint per switch.  Larger fleets cannot — the
    /// DSCP space has 62 usable values — so their default plan is derived at
    /// build time by colouring the adjacency the port maps describe
    /// (adjacent switches always end up with distinct values, which is the
    /// only property probing soundness needs).  An explicit
    /// [`RumBuilder::probe_plan`] / [`RumBuilder::probe_links`] call always
    /// wins over both defaults.
    pub fn new(n_switches: usize) -> Self {
        let derive_probe_plan = n_switches > MAX_UNIQUE_CATCH_SWITCHES;
        let probe_plan = if derive_probe_plan {
            // Placeholder (every switch the same colour) — replaced by the
            // topology-derived colouring in `finalise`.
            ProbeFieldPlan::from_links(&[], n_switches)
        } else {
            ProbeFieldPlan::unique_per_switch(n_switches)
        };
        RumBuilder {
            shards: 1,
            derive_probe_plan,
            config: RumConfig {
                technique: TechniqueConfig::BarrierBaseline,
                fine_grained_acks: true,
                reliable_barriers: true,
                buffer_across_barriers: false,
                control_latency: Duration::from_micros(100),
                record_confirmations: true,
                port_maps: vec![SwitchPortMap::default(); n_switches],
                probe_plan,
                metrics: None,
                shard_index: 0,
                shard_count: 1,
            },
        }
    }

    /// Splits the deployment into `n` shards for [`RumBuilder::build_sharded`]
    /// (default 1: the classic single-engine path, kept as the conformance
    /// oracle).  [`RumBuilder::build`] ignores this and always produces the
    /// unsharded engine.
    pub fn shards(mut self, n: usize) -> Self {
        assert!(n >= 1, "a deployment needs at least one shard");
        self.shards = n;
        self
    }

    /// The shard count configured via [`RumBuilder::shards`].
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Selects the acknowledgment technique (default: barrier baseline).
    pub fn technique(mut self, technique: TechniqueConfig) -> Self {
        self.config.technique = technique;
        self
    }

    /// Whether to send fine-grained per-rule acknowledgments.
    pub fn fine_grained_acks(mut self, on: bool) -> Self {
        self.config.fine_grained_acks = on;
        self
    }

    /// Whether to hold barrier replies until covered rules are confirmed.
    pub fn reliable_barriers(mut self, on: bool) -> Self {
        self.config.reliable_barriers = on;
        self
    }

    /// Whether to buffer commands that follow an unconfirmed barrier.
    pub fn buffer_across_barriers(mut self, on: bool) -> Self {
        self.config.buffer_across_barriers = on;
        self
    }

    /// One-way control-channel latency for latency-modelling drivers.
    pub fn control_latency(mut self, latency: Duration) -> Self {
        self.config.control_latency = latency;
        self
    }

    /// Whether to keep the in-order confirmation log
    /// ([`RumEngine::confirmed_order`]).  On by default; turn it off for
    /// long-running deployments where the log would grow without bound.
    pub fn record_confirmations(mut self, on: bool) -> Self {
        self.config.record_confirmations = on;
        self
    }

    /// Sets the topology knowledge for one switch.
    pub fn port_map(mut self, switch: SwitchId, map: SwitchPortMap) -> Self {
        self.config.port_maps[switch.index()] = map;
        self
    }

    /// Replaces all port maps at once (must match the switch count).
    pub fn port_maps(mut self, maps: Vec<SwitchPortMap>) -> Self {
        assert_eq!(
            maps.len(),
            self.config.port_maps.len(),
            "one port map per monitored switch"
        );
        self.config.port_maps = maps;
        self
    }

    /// Replaces only the port maps the caller left unspecified.  Drivers
    /// that derive topology knowledge themselves (e.g. the simulator
    /// deployment) use this before building, so the probe-plan colouring of
    /// a large fleet sees the completed adjacency rather than the gaps.
    pub fn fill_unspecified_port_maps(mut self, derived: Vec<SwitchPortMap>) -> Self {
        assert_eq!(
            derived.len(),
            self.config.port_maps.len(),
            "one derived port map per monitored switch"
        );
        for (slot, map) in self.config.port_maps.iter_mut().zip(derived) {
            if slot.is_unspecified() {
                *slot = map;
            }
        }
        self
    }

    /// Publishes engine statistics into `registry` (counters and the
    /// unconfirmed gauge under `rum.sw{i}.*`, confirm latency under
    /// `rum.sw{i}.confirm_latency_us`).  Without this the engine uses a
    /// private registry, so `RumEngine::stats` behaves the same either way.
    pub fn metrics(mut self, registry: std::sync::Arc<telemetry::Registry>) -> Self {
        self.config.metrics = Some(registry);
        self
    }

    /// Uses an explicit probe-field plan.
    pub fn probe_plan(mut self, plan: ProbeFieldPlan) -> Self {
        assert_eq!(
            plan.catch_tos.len(),
            self.config.port_maps.len(),
            "one catch value per monitored switch"
        );
        self.config.probe_plan = plan;
        self.derive_probe_plan = false;
        self
    }

    /// Derives the probe-field plan from the monitored-switch adjacency via
    /// vertex colouring (adjacent switches get distinct catch values).
    pub fn probe_links(self, links: &[(usize, usize)]) -> Self {
        let n = self.config.port_maps.len();
        self.probe_plan(ProbeFieldPlan::from_links(links, n))
    }

    /// Resolves the deferred probe plan of a large fleet: colour the
    /// adjacency the port maps describe so adjacent switches get distinct
    /// catch codepoints.  Both directions of every port mapping and the
    /// inject-via neighbour count as adjacency; links are collected in
    /// sorted order (and the colouring itself is BTree-ordered), so the
    /// derived plan is identical across drivers and runs for the same maps.
    fn finalise(mut self) -> RumConfig {
        if self.derive_probe_plan {
            let n = self.config.port_maps.len();
            let mut links: Vec<(usize, usize)> = Vec::new();
            for (i, map) in self.config.port_maps.iter().enumerate() {
                for &neighbour in map.port_to_switch.values() {
                    links.push((i, neighbour.index()));
                }
                if let Some((neighbour, _)) = map.inject_via {
                    links.push((i, neighbour.index()));
                }
            }
            links.sort_unstable();
            links.dedup();
            self.config.probe_plan = ProbeFieldPlan::from_links(&links, n);
        }
        self.config
    }

    /// Finishes the configuration.
    pub fn build_config(self) -> RumConfig {
        self.finalise()
    }

    /// Builds a ready-to-drive [`RumEngine`].
    ///
    /// # Panics
    ///
    /// See [`RumEngine::new`]: sequential probing requires each port map to
    /// name at least one monitored neighbour.
    pub fn build(self) -> RumEngine {
        RumEngine::new(self.finalise())
    }

    /// Builds a [`crate::ShardedEngine`] with the shard count configured via
    /// [`RumBuilder::shards`].  With one shard this is exactly the engine
    /// [`RumBuilder::build`] produces, wrapped.
    ///
    /// # Panics
    ///
    /// See [`RumEngine::new`].
    pub fn build_sharded(self) -> crate::ShardedEngine {
        let shards = self.shards;
        crate::ShardedEngine::new(self.finalise(), shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn technique_labels_and_defaults() {
        assert_eq!(TechniqueConfig::BarrierBaseline.label(), "barriers");
        assert_eq!(TechniqueConfig::default_sequential().label(), "sequential");
        assert_eq!(TechniqueConfig::default_general().label(), "general");
        assert!(TechniqueConfig::default_general().is_probing());
        assert!(!TechniqueConfig::BarrierBaseline.is_probing());
        match TechniqueConfig::default_sequential() {
            TechniqueConfig::SequentialProbing { batch_size, .. } => assert_eq!(batch_size, 10),
            _ => panic!(),
        }
    }

    #[test]
    fn probe_plan_assigns_distinct_values_to_adjacent_switches() {
        // Triangle: all three adjacent.
        let plan = ProbeFieldPlan::from_links(&[(0, 1), (1, 2), (0, 2)], 3);
        let sw = |i| SwitchId::new(i);
        assert_ne!(plan.catch_tos(sw(0)), plan.catch_tos(sw(1)));
        assert_ne!(plan.catch_tos(sw(1)), plan.catch_tos(sw(2)));
        assert_ne!(plan.catch_tos(sw(0)), plan.catch_tos(sw(2)));
        for i in 0..3 {
            assert_ne!(plan.catch_tos(sw(i)) & 0xfc, PREPROBE_TOS & 0xfc);
            assert!(plan.is_probe_tos(plan.catch_tos(sw(i))));
            assert_eq!(
                plan.switch_for_catch_tos(plan.catch_tos(sw(i))),
                Some(sw(i))
            );
        }
        assert!(plan.is_probe_tos(PREPROBE_TOS));
        assert!(!plan.is_probe_tos(0x00));
        assert_eq!(plan.switch_for_catch_tos(0x04), None);
    }

    #[test]
    fn probe_plan_reuses_colors_on_a_path() {
        // A path of 5 switches is 2-colourable, so only 2 catch values are
        // needed even though there are 5 switches.
        let plan = ProbeFieldPlan::from_links(&[(0, 1), (1, 2), (2, 3), (3, 4)], 5);
        let distinct: std::collections::BTreeSet<u8> = plan.catch_tos.iter().copied().collect();
        assert_eq!(distinct.len(), 2);
        // Adjacent still differ.
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 4)] {
            assert_ne!(
                plan.catch_tos(SwitchId::new(a)),
                plan.catch_tos(SwitchId::new(b))
            );
        }
    }

    #[test]
    fn unique_per_switch_gives_all_distinct() {
        let plan = ProbeFieldPlan::unique_per_switch(4);
        let distinct: std::collections::BTreeSet<u8> = plan.catch_tos.iter().copied().collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn port_map_next_hop() {
        let mut m = SwitchPortMap::default();
        assert!(m.is_unspecified());
        m.port_to_switch.insert(2, SwitchId::new(1));
        assert!(!m.is_unspecified());
        assert_eq!(m.next_hop(2), Some(SwitchId::new(1)));
        assert_eq!(m.next_hop(3), None);
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let cfg = RumBuilder::new(3)
            .technique(TechniqueConfig::default_sequential())
            .buffer_across_barriers(true)
            .fine_grained_acks(false)
            .control_latency(Duration::from_micros(250))
            .build_config();
        assert_eq!(cfg.n_switches(), 3);
        assert!(!cfg.fine_grained_acks);
        assert!(cfg.reliable_barriers);
        assert!(cfg.buffer_across_barriers);
        assert_eq!(cfg.control_latency, Duration::from_micros(250));
        assert_eq!(cfg.technique.label(), "sequential");
        assert_eq!(RumConfig::builder(2).build_config().n_switches(), 2);
    }

    #[test]
    fn builder_probe_links_colour_the_plan() {
        let cfg = RumBuilder::new(3)
            .probe_links(&[(0, 1), (1, 2)])
            .build_config();
        // A path is 2-colourable: ends share a value, middle differs.
        assert_eq!(
            cfg.probe_plan.catch_tos(SwitchId::new(0)),
            cfg.probe_plan.catch_tos(SwitchId::new(2))
        );
        assert_ne!(
            cfg.probe_plan.catch_tos(SwitchId::new(0)),
            cfg.probe_plan.catch_tos(SwitchId::new(1))
        );
    }

    #[test]
    #[should_panic(expected = "one port map per monitored switch")]
    fn builder_rejects_wrong_port_map_count() {
        RumBuilder::new(3).port_maps(vec![SwitchPortMap::default(); 2]);
    }

    fn ring_maps(n: usize) -> Vec<SwitchPortMap> {
        (0..n)
            .map(|i| {
                let prev = SwitchId::new((i + n - 1) % n);
                let next = SwitchId::new((i + 1) % n);
                let mut m = SwitchPortMap::default();
                m.port_to_switch.insert(1, prev);
                m.port_to_switch.insert(2, next);
                m.inject_via = Some((prev, 2));
                m
            })
            .collect()
    }

    #[test]
    fn large_fleets_derive_the_probe_plan_from_port_maps() {
        // More switches than DSCP codepoints: the builder must not panic and
        // must colour the catch values from the port-map adjacency so that
        // neighbours never share one.
        let n = MAX_UNIQUE_CATCH_SWITCHES + 938; // 1,000
        let cfg = RumBuilder::new(n).port_maps(ring_maps(n)).build_config();
        for i in 0..n {
            let next = (i + 1) % n;
            assert_ne!(
                cfg.probe_plan.catch_tos(SwitchId::new(i)),
                cfg.probe_plan.catch_tos(SwitchId::new(next)),
                "ring neighbours {i} and {next} share a catch value"
            );
        }
        // An even ring is 2-colourable.
        let distinct: std::collections::BTreeSet<u8> =
            cfg.probe_plan.catch_tos.iter().copied().collect();
        assert_eq!(distinct.len(), 2);
        // Derivation is deterministic: an identical build yields an
        // identical plan (the cross-driver equality tests depend on this).
        let again = RumBuilder::new(n).port_maps(ring_maps(n)).build_config();
        assert_eq!(cfg.probe_plan.catch_tos, again.probe_plan.catch_tos);
    }

    #[test]
    fn explicit_probe_plan_suppresses_derivation() {
        let n = MAX_UNIQUE_CATCH_SWITCHES + 2;
        let plan = ProbeFieldPlan::from_links(&[(0, 1)], n);
        let expected = plan.catch_tos.clone();
        let cfg = RumBuilder::new(n)
            .probe_plan(plan)
            .port_maps(ring_maps(n))
            .build_config();
        assert_eq!(cfg.probe_plan.catch_tos, expected);
    }

    #[test]
    fn fill_unspecified_port_maps_only_fills_gaps() {
        let mut explicit = SwitchPortMap::default();
        explicit.port_to_switch.insert(7, SwitchId::new(2));
        let derived = ring_maps(3);
        let cfg = RumBuilder::new(3)
            .port_map(SwitchId::new(1), explicit)
            .fill_unspecified_port_maps(derived.clone())
            .build_config();
        // Slot 1 keeps the caller's map; slots 0 and 2 take the derived ones.
        assert_eq!(cfg.port_maps[1].next_hop(7), Some(SwitchId::new(2)));
        assert_eq!(cfg.port_maps[1].next_hop(1), None);
        assert_eq!(cfg.port_maps[0].next_hop(2), Some(SwitchId::new(1)));
        assert_eq!(cfg.port_maps[2].next_hop(1), Some(SwitchId::new(1)));
    }
}
