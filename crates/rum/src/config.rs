//! Configuration of the RUM layer.

use crate::coloring::assign_probe_colors;
use openflow::PortNo;
use simnet::{NodeId, SimTime};
use std::collections::HashMap;

/// The reserved "pre-probe" DSCP value carried by freshly injected sequential
/// probes (paper §3.2.1: `H1 == preprobe`).  Expressed as a full ToS byte.
pub const PREPROBE_TOS: u8 = 0xFC;

/// First ToS byte used for per-switch probe-catch values; switch colours map
/// to `CATCH_TOS_BASE - 4 * colour` so they never collide with the pre-probe
/// value and stay within the 64 DSCP codepoints.
pub const CATCH_TOS_BASE: u8 = 0xF8;

/// Priority of the probe-catch rule RUM installs on every switch.
pub const CATCH_RULE_PRIORITY: u16 = 65_535;
/// Priority of the versioned sequential-probing rule.
pub const PROBE_RULE_PRIORITY: u16 = 65_534;

/// Which acknowledgment technique a RUM instance runs, with its parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum TechniqueConfig {
    /// Trust the switch's barrier replies (the unreliable baseline).
    BarrierBaseline,
    /// Confirm a fixed delay after the switch's barrier reply.
    StaticTimeout {
        /// The delay added after each barrier reply.
        delay: SimTime,
    },
    /// Estimate data-plane activation from an assumed modification rate.
    AdaptiveDelay {
        /// Assumed switch modification rate (rules per second).
        assumed_rate: f64,
        /// Assumed worst-case control-to-data-plane synchronisation lag.
        assumed_sync_lag: SimTime,
    },
    /// Versioned probe rule confirming whole batches (requires the switch not
    /// to reorder modifications across barriers).
    SequentialProbing {
        /// Real modifications per probe-rule version bump.
        batch_size: usize,
        /// How often probes are injected while confirmations are outstanding.
        probe_interval: SimTime,
    },
    /// Per-rule probe packets; works even on reordering switches.
    GeneralProbing {
        /// How often outstanding rules are (re-)probed.
        probe_interval: SimTime,
        /// At most this many oldest unconfirmed rules are probed per round
        /// (the paper probes "up to 30 oldest flow modifications at once").
        max_outstanding: usize,
        /// Confirmation delay used when no distinguishing probe exists.
        fallback_delay: SimTime,
    },
}

impl TechniqueConfig {
    /// The paper's default parameters for each technique.
    pub fn default_sequential() -> Self {
        TechniqueConfig::SequentialProbing {
            batch_size: 10,
            probe_interval: SimTime::from_millis(10),
        }
    }

    /// The paper's default parameters for general probing.
    pub fn default_general() -> Self {
        TechniqueConfig::GeneralProbing {
            probe_interval: SimTime::from_millis(10),
            max_outstanding: 30,
            fallback_delay: SimTime::from_millis(300),
        }
    }

    /// A short name used in experiment reports.
    pub fn label(&self) -> &'static str {
        match self {
            TechniqueConfig::BarrierBaseline => "barriers",
            TechniqueConfig::StaticTimeout { .. } => "timeout",
            TechniqueConfig::AdaptiveDelay { .. } => "adaptive",
            TechniqueConfig::SequentialProbing { .. } => "sequential",
            TechniqueConfig::GeneralProbing { .. } => "general",
        }
    }

    /// True for the data-plane probing techniques.
    pub fn is_probing(&self) -> bool {
        matches!(
            self,
            TechniqueConfig::SequentialProbing { .. } | TechniqueConfig::GeneralProbing { .. }
        )
    }
}

/// What RUM knows about one monitored switch's place in the topology.
///
/// This is configuration a network operator derives from the topology (or
/// RUM could learn via LLDP); the probing techniques need it to pick probe
/// injection points and to know which neighbour will catch a probe forwarded
/// out of a given port.
#[derive(Debug, Clone, Default)]
pub struct SwitchPortMap {
    /// The simulation node of the switch itself.
    pub switch_node: Option<NodeId>,
    /// For each local port: the index (within the RUM deployment) of the
    /// monitored switch reachable through that port.
    pub port_to_switch: HashMap<PortNo, usize>,
    /// A neighbour to inject probes through: `(neighbour switch index, the
    /// port on that neighbour that leads to this switch)`.
    pub inject_via: Option<(usize, PortNo)>,
}

impl SwitchPortMap {
    /// The neighbouring monitored switch reached through `port`, if any.
    pub fn next_hop(&self, port: PortNo) -> Option<usize> {
        self.port_to_switch.get(&port).copied()
    }
}

/// The plan for which header field carries probe identifiers and which values
/// are reserved for RUM (paper §3.2.2 "Reducing the number of switch-specific
/// values").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeFieldPlan {
    /// The ToS byte of freshly injected (pre-probe) packets.
    pub preprobe_tos: u8,
    /// Per-switch probe-catch ToS byte (index = switch index).
    pub catch_tos: Vec<u8>,
}

impl ProbeFieldPlan {
    /// Assigns catch values using vertex colouring over the monitored-switch
    /// adjacency so that adjacent switches always differ, then maps colours to
    /// DSCP codepoints.
    pub fn from_links(links: &[(usize, usize)], n_switches: usize) -> Self {
        let colors = assign_probe_colors(links, n_switches);
        let catch_tos = colors
            .iter()
            .map(|&c| {
                let v = CATCH_TOS_BASE as i32 - 4 * c as i32;
                assert!(v > 0, "ran out of DSCP codepoints for probe colours");
                v as u8
            })
            .collect();
        ProbeFieldPlan {
            preprobe_tos: PREPROBE_TOS,
            catch_tos,
        }
    }

    /// Assigns a globally unique value per switch (no colouring), as the
    /// simple variant of the paper does.
    pub fn unique_per_switch(n_switches: usize) -> Self {
        Self::from_links(
            &(0..n_switches)
                .flat_map(|a| (a + 1..n_switches).map(move |b| (a, b)))
                .collect::<Vec<_>>(),
            n_switches,
        )
    }

    /// The catch value of switch `idx`.
    pub fn catch_tos(&self, idx: usize) -> u8 {
        self.catch_tos[idx]
    }

    /// True if `tos` is one of the values reserved by RUM (pre-probe or any
    /// catch value), i.e. a packet carrying it is a probe, not user traffic.
    pub fn is_probe_tos(&self, tos: u8) -> bool {
        tos & 0xfc == self.preprobe_tos & 0xfc
            || self.catch_tos.iter().any(|&c| c & 0xfc == tos & 0xfc)
    }

    /// The switch whose catch value is `tos`, if any.
    pub fn switch_for_catch_tos(&self, tos: u8) -> Option<usize> {
        self.catch_tos.iter().position(|&c| c & 0xfc == tos & 0xfc)
    }
}

/// Configuration of a whole RUM deployment (one instance monitoring a set of
/// switches on behalf of one controller).
#[derive(Debug, Clone)]
pub struct RumConfig {
    /// The acknowledgment technique to run.
    pub technique: TechniqueConfig,
    /// Send fine-grained per-rule acknowledgments (reserved error code) to
    /// the controller, for RUM-aware controllers.
    pub fine_grained_acks: bool,
    /// Provide reliable barriers: hold `BarrierReply` until every earlier
    /// modification is confirmed.
    pub reliable_barriers: bool,
    /// Buffer controller commands that follow an unconfirmed barrier and
    /// release them only after the barrier is acknowledged (needed for
    /// switches that reorder across barriers).
    pub buffer_across_barriers: bool,
    /// One-way latency RUM adds on each hop of the control channel.
    pub control_latency: SimTime,
    /// Per-switch topology knowledge (index = switch index).
    pub port_maps: Vec<SwitchPortMap>,
    /// Header-field plan for probing.
    pub probe_plan: ProbeFieldPlan,
}

impl RumConfig {
    /// A configuration monitoring `n_switches` switches with the given
    /// technique and sensible defaults everywhere else.  Port maps default to
    /// empty and must be filled in for the probing techniques.
    pub fn new(technique: TechniqueConfig, n_switches: usize) -> Self {
        RumConfig {
            technique,
            fine_grained_acks: true,
            reliable_barriers: true,
            buffer_across_barriers: false,
            control_latency: SimTime::from_micros(100),
            port_maps: vec![SwitchPortMap::default(); n_switches],
            probe_plan: ProbeFieldPlan::unique_per_switch(n_switches),
        }
    }

    /// Number of monitored switches.
    pub fn n_switches(&self) -> usize {
        self.port_maps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn technique_labels_and_defaults() {
        assert_eq!(TechniqueConfig::BarrierBaseline.label(), "barriers");
        assert_eq!(TechniqueConfig::default_sequential().label(), "sequential");
        assert_eq!(TechniqueConfig::default_general().label(), "general");
        assert!(TechniqueConfig::default_general().is_probing());
        assert!(!TechniqueConfig::BarrierBaseline.is_probing());
        match TechniqueConfig::default_sequential() {
            TechniqueConfig::SequentialProbing { batch_size, .. } => assert_eq!(batch_size, 10),
            _ => panic!(),
        }
    }

    #[test]
    fn probe_plan_assigns_distinct_values_to_adjacent_switches() {
        // Triangle: all three adjacent.
        let plan = ProbeFieldPlan::from_links(&[(0, 1), (1, 2), (0, 2)], 3);
        assert_ne!(plan.catch_tos(0), plan.catch_tos(1));
        assert_ne!(plan.catch_tos(1), plan.catch_tos(2));
        assert_ne!(plan.catch_tos(0), plan.catch_tos(2));
        for i in 0..3 {
            assert_ne!(plan.catch_tos(i) & 0xfc, PREPROBE_TOS & 0xfc);
            assert!(plan.is_probe_tos(plan.catch_tos(i)));
            assert_eq!(plan.switch_for_catch_tos(plan.catch_tos(i)), Some(i));
        }
        assert!(plan.is_probe_tos(PREPROBE_TOS));
        assert!(!plan.is_probe_tos(0x00));
        assert_eq!(plan.switch_for_catch_tos(0x04), None);
    }

    #[test]
    fn probe_plan_reuses_colors_on_a_path() {
        // A path of 5 switches is 2-colourable, so only 2 catch values are
        // needed even though there are 5 switches.
        let plan = ProbeFieldPlan::from_links(&[(0, 1), (1, 2), (2, 3), (3, 4)], 5);
        let distinct: std::collections::BTreeSet<u8> = plan.catch_tos.iter().copied().collect();
        assert_eq!(distinct.len(), 2);
        // Adjacent still differ.
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 4)] {
            assert_ne!(plan.catch_tos(a), plan.catch_tos(b));
        }
    }

    #[test]
    fn unique_per_switch_gives_all_distinct() {
        let plan = ProbeFieldPlan::unique_per_switch(4);
        let distinct: std::collections::BTreeSet<u8> = plan.catch_tos.iter().copied().collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn port_map_next_hop() {
        let mut m = SwitchPortMap::default();
        m.port_to_switch.insert(2, 1);
        assert_eq!(m.next_hop(2), Some(1));
        assert_eq!(m.next_hop(3), None);
    }

    #[test]
    fn rum_config_defaults() {
        let cfg = RumConfig::new(TechniqueConfig::BarrierBaseline, 3);
        assert_eq!(cfg.n_switches(), 3);
        assert!(cfg.fine_grained_acks);
        assert!(cfg.reliable_barriers);
        assert!(!cfg.buffer_across_barriers);
    }
}
