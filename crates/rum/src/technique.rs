//! The acknowledgment-technique abstraction and the control-plane-only
//! techniques of paper §3.1.
//!
//! A technique is instantiated per monitored switch.  It receives the events
//! the RUM proxy observes (flow modifications from the controller, barrier
//! replies from the switch, probe packets coming back, timers it armed) and
//! emits [`TechniqueOutput`]s: most importantly `Confirm(cookie)`, the claim
//! that the rule with that cookie is now active in the data plane.

use crate::engine::SwitchId;
use openflow::messages::FlowMod;
use openflow::{OfMessage, PacketHeader, Xid};
use std::collections::HashMap;
use std::time::Duration;

/// Something a technique wants the RUM proxy to do.
#[derive(Debug, Clone, PartialEq)]
pub enum TechniqueOutput {
    /// The rule installed by the controller flow-mod with this cookie is now
    /// (believed to be) active in the data plane.
    Confirm(u64),
    /// Send a proxy-originated message to the monitored switch.
    ToSwitch(OfMessage),
    /// Send a proxy-originated message (typically a probe `PacketOut`) on the
    /// connection of another monitored switch.
    InjectVia {
        /// The switch whose connection carries the message.
        switch: SwitchId,
        /// The message.
        msg: OfMessage,
    },
    /// Arm a timer; the proxy will call [`AckTechnique::on_timer`] with the
    /// same token after `delay`.
    SetTimer {
        /// Delay until the timer fires.
        delay: Duration,
        /// Token passed back on expiry.
        token: u64,
    },
}

/// A data-plane acknowledgment technique for one monitored switch.
pub trait AckTechnique: Send {
    /// Short name used in reports ("barriers", "timeout", ...).
    fn name(&self) -> &'static str;

    /// Called once when the proxy starts; setup rules (probe-catch, probe
    /// rules) are emitted here.
    fn start(&mut self, _now: Duration, _out: &mut Vec<TechniqueOutput>) {}

    /// The controller sent a flow modification (already forwarded to the
    /// switch by the proxy).
    fn on_flow_mod(
        &mut self,
        cookie: u64,
        fm: &FlowMod,
        now: Duration,
        out: &mut Vec<TechniqueOutput>,
    );

    /// The switch replied to a proxy-originated barrier.
    fn on_switch_barrier_reply(
        &mut self,
        _xid: Xid,
        _now: Duration,
        _out: &mut Vec<TechniqueOutput>,
    ) {
    }

    /// A probe packet was captured (on any monitored switch's connection).
    /// The technique must ignore probes it does not own.
    fn on_probe_packet(
        &mut self,
        _header: &PacketHeader,
        _now: Duration,
        _out: &mut Vec<TechniqueOutput>,
    ) {
    }

    /// A timer armed by this technique fired.
    fn on_timer(&mut self, _token: u64, _now: Duration, _out: &mut Vec<TechniqueOutput>) {}

    /// The monitored switch restarted (tables wiped) and reattached.  The
    /// proxy has already re-issued the unconfirmed controller modifications
    /// on the fresh channel; the technique re-arms whatever confirmation
    /// machinery the restart invalidated (in-flight barriers, the probe
    /// rule).  Techniques whose pending state survives a restart (pure
    /// timers) keep the default no-op.
    fn on_switch_reconnected(&mut self, _now: Duration, _out: &mut Vec<TechniqueOutput>) {}

    /// Number of modifications seen but not yet confirmed.
    fn unconfirmed(&self) -> usize;
}

/// §3.1 "Using OpenFlow barrier commands" — the unreliable baseline.
///
/// After every controller flow-mod, the proxy sends its own `BarrierRequest`;
/// the switch's reply is taken at face value as proof that the rule is in the
/// data plane.  On a buggy switch this confirms rules hundreds of
/// milliseconds too early — this technique exists to reproduce the problem,
/// not to solve it.
#[derive(Debug)]
pub struct BarrierBaseline {
    next_xid: Xid,
    covers: HashMap<Xid, Vec<u64>>,
    unconfirmed: usize,
}

impl BarrierBaseline {
    /// Creates the baseline technique; `xid_base` namespaces the xids of the
    /// barriers it injects.
    pub fn new(xid_base: Xid) -> Self {
        BarrierBaseline {
            next_xid: xid_base,
            covers: HashMap::new(),
            unconfirmed: 0,
        }
    }

    fn fresh_xid(&mut self) -> Xid {
        let x = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1);
        x
    }
}

impl AckTechnique for BarrierBaseline {
    fn name(&self) -> &'static str {
        "barriers"
    }

    fn on_flow_mod(
        &mut self,
        cookie: u64,
        _fm: &FlowMod,
        _now: Duration,
        out: &mut Vec<TechniqueOutput>,
    ) {
        let xid = self.fresh_xid();
        self.covers.insert(xid, vec![cookie]);
        self.unconfirmed += 1;
        out.push(TechniqueOutput::ToSwitch(OfMessage::BarrierRequest { xid }));
    }

    fn on_switch_barrier_reply(
        &mut self,
        xid: Xid,
        _now: Duration,
        out: &mut Vec<TechniqueOutput>,
    ) {
        if let Some(cookies) = self.covers.remove(&xid) {
            for c in cookies {
                self.unconfirmed = self.unconfirmed.saturating_sub(1);
                out.push(TechniqueOutput::Confirm(c));
            }
        }
    }

    fn on_switch_reconnected(&mut self, _now: Duration, out: &mut Vec<TechniqueOutput>) {
        // In-flight barriers died with the old channel; fold every pending
        // cover into one fresh barrier behind the re-issued modifications.
        if self.covers.is_empty() {
            return;
        }
        let mut cookies: Vec<u64> = self.covers.drain().flat_map(|(_, v)| v).collect();
        cookies.sort_unstable();
        let xid = self.fresh_xid();
        self.covers.insert(xid, cookies);
        out.push(TechniqueOutput::ToSwitch(OfMessage::BarrierRequest { xid }));
    }

    fn unconfirmed(&self) -> usize {
        self.unconfirmed
    }
}

/// §3.1 "Delaying barrier acknowledgments" — wait a fixed, pre-measured bound
/// after the barrier reply before confirming.
#[derive(Debug)]
pub struct StaticTimeout {
    delay: Duration,
    next_xid: Xid,
    next_token: u64,
    barrier_covers: HashMap<Xid, Vec<u64>>,
    timer_covers: HashMap<u64, Vec<u64>>,
    unconfirmed: usize,
}

impl StaticTimeout {
    /// Creates the technique with the given post-barrier delay.
    pub fn new(delay: Duration, xid_base: Xid) -> Self {
        StaticTimeout {
            delay,
            next_xid: xid_base,
            next_token: 0,
            barrier_covers: HashMap::new(),
            timer_covers: HashMap::new(),
            unconfirmed: 0,
        }
    }
}

impl AckTechnique for StaticTimeout {
    fn name(&self) -> &'static str {
        "timeout"
    }

    fn on_flow_mod(
        &mut self,
        cookie: u64,
        _fm: &FlowMod,
        _now: Duration,
        out: &mut Vec<TechniqueOutput>,
    ) {
        let xid = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1);
        self.barrier_covers.insert(xid, vec![cookie]);
        self.unconfirmed += 1;
        out.push(TechniqueOutput::ToSwitch(OfMessage::BarrierRequest { xid }));
    }

    fn on_switch_barrier_reply(
        &mut self,
        xid: Xid,
        _now: Duration,
        out: &mut Vec<TechniqueOutput>,
    ) {
        if let Some(cookies) = self.barrier_covers.remove(&xid) {
            let token = self.next_token;
            self.next_token += 1;
            self.timer_covers.insert(token, cookies);
            out.push(TechniqueOutput::SetTimer {
                delay: self.delay,
                token,
            });
        }
    }

    fn on_timer(&mut self, token: u64, _now: Duration, out: &mut Vec<TechniqueOutput>) {
        if let Some(cookies) = self.timer_covers.remove(&token) {
            for c in cookies {
                self.unconfirmed = self.unconfirmed.saturating_sub(1);
                out.push(TechniqueOutput::Confirm(c));
            }
        }
    }

    fn on_switch_reconnected(&mut self, _now: Duration, out: &mut Vec<TechniqueOutput>) {
        // Covers whose barrier reply never came died with the old channel;
        // re-barrier them behind the re-issued modifications (covers whose
        // hold-down timer is already running confirm on their own).
        if self.barrier_covers.is_empty() {
            return;
        }
        let mut cookies: Vec<u64> = self.barrier_covers.drain().flat_map(|(_, v)| v).collect();
        cookies.sort_unstable();
        let xid = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1);
        self.barrier_covers.insert(xid, cookies);
        out.push(TechniqueOutput::ToSwitch(OfMessage::BarrierRequest { xid }));
    }

    fn unconfirmed(&self) -> usize {
        self.unconfirmed
    }
}

/// §3.1 "Adaptive delay" — predict when the switch will have applied each
/// modification from an assumed modification rate and synchronisation lag,
/// and confirm at the predicted time.  Accurate models give near-optimal
/// latency; optimistic models (assumed rate higher than reality) confirm too
/// early, which is exactly what Figure 6/8 show for "adaptive 250".
#[derive(Debug)]
pub struct AdaptiveDelay {
    assumed_per_mod: Duration,
    assumed_sync_lag: Duration,
    virtual_done: Duration,
    next_token: u64,
    timer_covers: HashMap<u64, u64>,
    unconfirmed: usize,
}

impl AdaptiveDelay {
    /// Creates the technique assuming the switch applies `assumed_rate`
    /// modifications per second and lags the control plane by
    /// `assumed_sync_lag`.
    pub fn new(assumed_rate: f64, assumed_sync_lag: Duration) -> Self {
        assert!(assumed_rate > 0.0, "assumed rate must be positive");
        AdaptiveDelay {
            assumed_per_mod: Duration::from_secs_f64(1.0 / assumed_rate),
            assumed_sync_lag,
            virtual_done: Duration::ZERO,
            next_token: 0,
            timer_covers: HashMap::new(),
            unconfirmed: 0,
        }
    }

    /// The per-modification processing time the model assumes.
    pub fn assumed_per_mod(&self) -> Duration {
        self.assumed_per_mod
    }
}

impl AckTechnique for AdaptiveDelay {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn on_flow_mod(
        &mut self,
        cookie: u64,
        _fm: &FlowMod,
        now: Duration,
        out: &mut Vec<TechniqueOutput>,
    ) {
        // The switch works through modifications serially at the assumed
        // rate; our estimate of when this one lands is the running virtual
        // completion time plus the assumed data-plane lag.
        self.virtual_done = self.virtual_done.max(now) + self.assumed_per_mod;
        let confirm_at = self.virtual_done + self.assumed_sync_lag;
        let token = self.next_token;
        self.next_token += 1;
        self.timer_covers.insert(token, cookie);
        self.unconfirmed += 1;
        out.push(TechniqueOutput::SetTimer {
            delay: confirm_at.saturating_sub(now),
            token,
        });
    }

    fn on_timer(&mut self, token: u64, _now: Duration, out: &mut Vec<TechniqueOutput>) {
        if let Some(cookie) = self.timer_covers.remove(&token) {
            self.unconfirmed = self.unconfirmed.saturating_sub(1);
            out.push(TechniqueOutput::Confirm(cookie));
        }
    }

    fn unconfirmed(&self) -> usize {
        self.unconfirmed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::{Action, OfMatch};
    use std::net::Ipv4Addr;

    fn fm(i: u8) -> FlowMod {
        FlowMod::add(
            OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, i), Ipv4Addr::new(10, 1, 0, i)),
            100,
            vec![Action::output(2)],
        )
    }

    fn confirms(out: &[TechniqueOutput]) -> Vec<u64> {
        out.iter()
            .filter_map(|o| match o {
                TechniqueOutput::Confirm(c) => Some(*c),
                _ => None,
            })
            .collect()
    }

    fn barrier_xids(out: &[TechniqueOutput]) -> Vec<Xid> {
        out.iter()
            .filter_map(|o| match o {
                TechniqueOutput::ToSwitch(OfMessage::BarrierRequest { xid }) => Some(*xid),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn baseline_confirms_on_barrier_reply() {
        let mut t = BarrierBaseline::new(0x9000_0000);
        let mut out = Vec::new();
        t.on_flow_mod(42, &fm(1), Duration::ZERO, &mut out);
        let xids = barrier_xids(&out);
        assert_eq!(xids.len(), 1);
        assert_eq!(t.unconfirmed(), 1);
        assert!(confirms(&out).is_empty());

        let mut out = Vec::new();
        t.on_switch_barrier_reply(xids[0], Duration::from_millis(1), &mut out);
        assert_eq!(confirms(&out), vec![42]);
        assert_eq!(t.unconfirmed(), 0);

        // A reply to an unknown barrier does nothing.
        let mut out = Vec::new();
        t.on_switch_barrier_reply(12345, Duration::from_millis(2), &mut out);
        assert!(out.is_empty());
        assert_eq!(t.name(), "barriers");
    }

    #[test]
    fn static_timeout_defers_confirmation() {
        let mut t = StaticTimeout::new(Duration::from_millis(300), 0x9100_0000);
        let mut out = Vec::new();
        t.on_flow_mod(7, &fm(1), Duration::ZERO, &mut out);
        let xids = barrier_xids(&out);

        let mut out = Vec::new();
        t.on_switch_barrier_reply(xids[0], Duration::from_millis(10), &mut out);
        assert!(
            confirms(&out).is_empty(),
            "confirmation must wait for the timer"
        );
        let timer = out.iter().find_map(|o| match o {
            TechniqueOutput::SetTimer { delay, token } => Some((*delay, *token)),
            _ => None,
        });
        let (delay, token) = timer.expect("a timer must be armed");
        assert_eq!(delay, Duration::from_millis(300));

        let mut out = Vec::new();
        t.on_timer(token, Duration::from_millis(310), &mut out);
        assert_eq!(confirms(&out), vec![7]);
        assert_eq!(t.unconfirmed(), 0);
        assert_eq!(t.name(), "timeout");
    }

    #[test]
    fn adaptive_accumulates_virtual_time() {
        // 200 mods/s assumed -> 5 ms per mod; lag 100 ms.
        let mut t = AdaptiveDelay::new(200.0, Duration::from_millis(100));
        assert_eq!(t.assumed_per_mod(), Duration::from_millis(5));
        let mut delays = Vec::new();
        for i in 0..3u64 {
            let mut out = Vec::new();
            // All issued at t = 0 (burst).
            t.on_flow_mod(i, &fm(i as u8), Duration::ZERO, &mut out);
            let d = out
                .iter()
                .find_map(|o| match o {
                    TechniqueOutput::SetTimer { delay, .. } => Some(*delay),
                    _ => None,
                })
                .unwrap();
            delays.push(d);
        }
        // Confirmation estimates must be 5 ms apart: 105, 110, 115 ms.
        assert_eq!(delays[0], Duration::from_millis(105));
        assert_eq!(delays[1], Duration::from_millis(110));
        assert_eq!(delays[2], Duration::from_millis(115));
        assert_eq!(t.unconfirmed(), 3);

        let mut out = Vec::new();
        t.on_timer(0, Duration::from_millis(105), &mut out);
        assert_eq!(confirms(&out), vec![0]);
        assert_eq!(t.unconfirmed(), 2);
        assert_eq!(t.name(), "adaptive");
    }

    #[test]
    fn adaptive_virtual_time_tracks_idle_gaps() {
        let mut t = AdaptiveDelay::new(100.0, Duration::ZERO);
        let mut out = Vec::new();
        t.on_flow_mod(1, &fm(1), Duration::ZERO, &mut out);
        // Long idle gap: the next mod's estimate restarts from `now`, not
        // from the stale virtual clock.
        let mut out = Vec::new();
        t.on_flow_mod(2, &fm(2), Duration::from_secs(10), &mut out);
        let d = out
            .iter()
            .find_map(|o| match o {
                TechniqueOutput::SetTimer { delay, .. } => Some(*delay),
                _ => None,
            })
            .unwrap();
        assert_eq!(d, Duration::from_millis(10));
    }

    #[test]
    #[should_panic(expected = "assumed rate must be positive")]
    fn adaptive_rejects_zero_rate() {
        AdaptiveDelay::new(0.0, Duration::ZERO);
    }
}
