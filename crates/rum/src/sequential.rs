//! Sequential probing (paper §3.2.1).
//!
//! Works on switches that answer barriers too early but do **not** reorder
//! modifications: if the versioned probe rule installed *after* a batch of
//! real modifications is observed to be active (a probe packet comes back
//! stamped with its version), every modification in the batch must be active
//! as well.
//!
//! Implementation notes, following the paper's refinements:
//! * one probe rule per switch, re-versioned in place (`modify_strict`)
//!   instead of installing and deleting a rule per batch;
//! * the version rides in the VLAN id of the probe packet, the probe marker
//!   in the ToS byte, so a single probe rule serves the whole experiment;
//! * versions are recycled modulo 4094 (the prototype's ToS-only variant had
//!   to recycle after 64 — VLAN ids push that out but the wrap-around logic
//!   is the same);
//! * probes are injected through a neighbouring switch (`PacketOut` on the
//!   neighbour's connection) so the probing rule is exercised by the
//!   *hardware* path, not the switch-local software path.

use crate::config::{ProbeFieldPlan, SwitchPortMap};
use crate::engine::SwitchId;
use crate::probe::{sequential_probe_packet, sequential_probe_rule};
use crate::technique::{AckTechnique, TechniqueOutput};
use openflow::messages::{FlowMod, PacketOut};
use openflow::{Action, OfMessage, PacketHeader, PortNo, Xid};
use std::collections::VecDeque;
use std::time::Duration;

/// Timer token used for the periodic probing tick.
const TOKEN_TICK: u64 = 1;

/// Largest VLAN id usable as a probe version before wrapping.
const MAX_VERSION: u16 = 4094;

/// A batch of real modifications covered by one probe-rule version.
#[derive(Debug, Clone)]
struct Batch {
    version: u16,
    cookies: Vec<u64>,
}

/// The sequential-probing acknowledgment technique for one monitored switch.
#[derive(Debug)]
pub struct SequentialProbing {
    /// The monitored switch within the RUM deployment.
    switch_index: SwitchId,
    /// Real modifications per probe-rule version bump.
    batch_size: usize,
    /// Interval between probe injections while confirmations are pending.
    probe_interval: Duration,
    /// Probe field plan (pre-probe marker + per-switch catch values).
    plan: ProbeFieldPlan,
    /// Topology knowledge for this switch.
    ports: SwitchPortMap,
    /// Port of this switch leading to the neighbour that will catch probes.
    catch_port: PortNo,
    /// The neighbour switch that catches probes.
    catch_switch: SwitchId,

    /// Modifications not yet covered by a probe-rule version.
    unversioned: Vec<u64>,
    /// Batches whose probe has not yet come back, oldest first.
    outstanding: VecDeque<Batch>,
    current_version: u16,
    probe_rule_installed: bool,
    next_xid: Xid,
    unconfirmed: usize,
    ticking: bool,
    /// Statistics: probe rules installed / modified.
    pub probe_rule_updates: u64,
    /// Statistics: probe packets injected.
    pub probes_injected: u64,
    /// Statistics: probe packets received back.
    pub probes_received: u64,
}

impl SequentialProbing {
    /// Creates the technique.
    ///
    /// `catch_port` is the monitored switch's port towards the neighbouring
    /// switch `catch_switch`, which must hold a probe-catch rule (RUM installs
    /// those at start-up on every switch).
    pub fn new(
        switch_index: SwitchId,
        batch_size: usize,
        probe_interval: Duration,
        plan: ProbeFieldPlan,
        ports: SwitchPortMap,
        xid_base: Xid,
    ) -> Self {
        assert!(batch_size > 0, "batch size must be at least 1");
        let (catch_port, catch_switch) = ports
            .port_to_switch
            .iter()
            .map(|(p, s)| (*p, *s))
            .min()
            .expect("sequential probing needs at least one monitored neighbour");
        SequentialProbing {
            switch_index,
            batch_size,
            probe_interval,
            plan,
            ports,
            catch_port,
            catch_switch,
            unversioned: Vec::new(),
            outstanding: VecDeque::new(),
            current_version: 0,
            probe_rule_installed: false,
            next_xid: xid_base,
            unconfirmed: 0,
            ticking: false,
            probe_rule_updates: 0,
            probes_injected: 0,
            probes_received: 0,
        }
    }

    fn fresh_xid(&mut self) -> Xid {
        let x = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1);
        x
    }

    fn bump_version(&mut self, out: &mut Vec<TechniqueOutput>) {
        if self.unversioned.is_empty() {
            return;
        }
        self.current_version = if self.current_version >= MAX_VERSION {
            1
        } else {
            self.current_version + 1
        };
        let cookies = std::mem::take(&mut self.unversioned);
        self.outstanding.push_back(Batch {
            version: self.current_version,
            cookies,
        });
        let xid = self.fresh_xid();
        let catch_tos = self.plan.catch_tos(self.catch_switch);
        let mut fm = sequential_probe_rule(
            self.plan.preprobe_tos,
            catch_tos,
            self.catch_port,
            self.current_version,
            u64::from(xid),
            !self.probe_rule_installed,
        );
        fm.cookie = u64::from(xid);
        self.probe_rule_installed = true;
        self.probe_rule_updates += 1;
        out.push(TechniqueOutput::ToSwitch(OfMessage::FlowMod {
            xid,
            body: fm,
        }));
    }

    fn inject_probe(&mut self, out: &mut Vec<TechniqueOutput>) {
        let Some((via_switch, via_port)) = self.ports.inject_via else {
            return;
        };
        let packet = sequential_probe_packet(self.plan.preprobe_tos);
        let po = PacketOut::inject(vec![Action::output(via_port)], packet.to_bytes());
        let xid = self.fresh_xid();
        self.probes_injected += 1;
        out.push(TechniqueOutput::InjectVia {
            switch: via_switch,
            msg: OfMessage::PacketOut { xid, body: po },
        });
    }

    fn ensure_ticking(&mut self, out: &mut Vec<TechniqueOutput>) {
        if !self.ticking {
            self.ticking = true;
            out.push(TechniqueOutput::SetTimer {
                delay: self.probe_interval,
                token: TOKEN_TICK,
            });
        }
    }
}

impl AckTechnique for SequentialProbing {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn start(&mut self, _now: Duration, out: &mut Vec<TechniqueOutput>) {
        // The probe-catch rules on every switch are installed by the RUM
        // layer itself (they are shared across techniques); nothing to do
        // here until the first modification arrives.
        self.ensure_ticking(out);
    }

    fn on_flow_mod(
        &mut self,
        cookie: u64,
        _fm: &FlowMod,
        _now: Duration,
        out: &mut Vec<TechniqueOutput>,
    ) {
        self.unversioned.push(cookie);
        self.unconfirmed += 1;
        if self.unversioned.len() >= self.batch_size {
            self.bump_version(out);
        }
        self.ensure_ticking(out);
    }

    fn on_probe_packet(
        &mut self,
        header: &PacketHeader,
        _now: Duration,
        out: &mut Vec<TechniqueOutput>,
    ) {
        // Ownership check: the probe must carry the catch value of the switch
        // we forward probes to, and a version we actually issued.
        if header.nw_tos & 0xfc != self.plan.catch_tos(self.catch_switch) & 0xfc {
            return;
        }
        let version = header.dl_vlan;
        if !self.outstanding.iter().any(|b| b.version == version) {
            return;
        }
        self.probes_received += 1;
        // The probe rule with `version` is active, therefore every batch up
        // to and including that version is active as well (the switch does
        // not reorder).
        while let Some(front) = self.outstanding.front() {
            let done = front.version;
            if version_is_at_least(version, done) {
                let batch = self.outstanding.pop_front().expect("front exists");
                for c in batch.cookies {
                    self.unconfirmed = self.unconfirmed.saturating_sub(1);
                    out.push(TechniqueOutput::Confirm(c));
                }
                if done == version {
                    break;
                }
            } else {
                break;
            }
        }
    }

    fn on_switch_reconnected(&mut self, _now: Duration, out: &mut Vec<TechniqueOutput>) {
        // The restart wiped the probe rule together with every version it
        // encoded, so no outstanding batch can ever be confirmed by a probe
        // again.  Fold all outstanding batches (plus the unversioned tail)
        // into one fresh batch and re-install the probe rule from scratch
        // *behind* the re-issued modifications — order preservation then
        // makes the new version vouch for everything re-sent, exactly like
        // on a fresh switch.
        let mut cookies: Vec<u64> = Vec::new();
        for batch in self.outstanding.drain(..) {
            cookies.extend(batch.cookies);
        }
        cookies.append(&mut self.unversioned);
        self.unversioned = cookies;
        self.probe_rule_installed = false;
        if !self.unversioned.is_empty() {
            self.bump_version(out);
        }
        self.ensure_ticking(out);
    }

    fn on_timer(&mut self, token: u64, _now: Duration, out: &mut Vec<TechniqueOutput>) {
        if token != TOKEN_TICK {
            return;
        }
        // Flush a partial batch if nothing else is outstanding, so the tail
        // of an update is not stranded.
        if !self.unversioned.is_empty() && self.outstanding.is_empty() {
            self.bump_version(out);
        }
        if !self.outstanding.is_empty() {
            self.inject_probe(out);
        }
        // Keep ticking while there is anything to confirm.
        if self.unconfirmed > 0 {
            out.push(TechniqueOutput::SetTimer {
                delay: self.probe_interval,
                token: TOKEN_TICK,
            });
        } else {
            self.ticking = false;
        }
    }

    fn unconfirmed(&self) -> usize {
        self.unconfirmed
    }
}

/// Version comparison tolerant of the wrap-around at [`MAX_VERSION`].
fn version_is_at_least(observed: u16, candidate: u16) -> bool {
    if observed >= candidate {
        observed - candidate < MAX_VERSION / 2
    } else {
        // Wrapped: e.g. observed = 3, candidate = 4090.
        candidate - observed > MAX_VERSION / 2
    }
}

/// The monitored switch this technique was built for (used by the engine for
/// bookkeeping and by tests).
impl SequentialProbing {
    /// The monitored switch.
    pub fn switch_index(&self) -> SwitchId {
        self.switch_index
    }

    /// The current probe-rule version.
    pub fn current_version(&self) -> u16 {
        self.current_version
    }

    /// Number of batches awaiting a probe.
    pub fn outstanding_batches(&self) -> usize {
        self.outstanding.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::OfMatch;
    use std::net::Ipv4Addr;

    fn ports() -> SwitchPortMap {
        let mut m = SwitchPortMap {
            port_to_switch: Default::default(),
            inject_via: Some((SwitchId::new(0), 2)),
        };
        // Port 2 leads to monitored switch 2.
        m.port_to_switch.insert(2, SwitchId::new(2));
        m
    }

    fn plan() -> ProbeFieldPlan {
        ProbeFieldPlan::unique_per_switch(3)
    }

    fn fm(i: u8) -> FlowMod {
        FlowMod::add(
            OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, i), Ipv4Addr::new(10, 1, 0, i)),
            100,
            vec![Action::output(2)],
        )
    }

    fn new_technique(batch: usize) -> SequentialProbing {
        SequentialProbing::new(
            SwitchId::new(1),
            batch,
            Duration::from_millis(10),
            plan(),
            ports(),
            0xA000_0000,
        )
    }

    fn probe_header(version: u16) -> PacketHeader {
        let mut h = sequential_probe_packet(plan().preprobe_tos);
        h.nw_tos = plan().catch_tos(SwitchId::new(2));
        h.dl_vlan = version;
        h
    }

    #[test]
    fn batch_completion_triggers_version_bump() {
        let mut t = new_technique(3);
        let mut out = Vec::new();
        t.start(Duration::ZERO, &mut out);
        for i in 0..2u64 {
            let mut out = Vec::new();
            t.on_flow_mod(i, &fm(i as u8), Duration::ZERO, &mut out);
            assert!(
                !out.iter()
                    .any(|o| matches!(o, TechniqueOutput::ToSwitch(_))),
                "no version bump before the batch is full"
            );
        }
        let mut out = Vec::new();
        t.on_flow_mod(2, &fm(2), Duration::ZERO, &mut out);
        let bumps: Vec<_> = out
            .iter()
            .filter(|o| matches!(o, TechniqueOutput::ToSwitch(OfMessage::FlowMod { .. })))
            .collect();
        assert_eq!(bumps.len(), 1, "batch of 3 triggers one probe-rule update");
        assert_eq!(t.current_version(), 1);
        assert_eq!(t.outstanding_batches(), 1);
        assert_eq!(t.unconfirmed(), 3);
    }

    #[test]
    fn probe_return_confirms_whole_batch() {
        let mut t = new_technique(2);
        let mut out = Vec::new();
        t.on_flow_mod(10, &fm(1), Duration::ZERO, &mut out);
        t.on_flow_mod(11, &fm(2), Duration::ZERO, &mut out);
        assert_eq!(t.current_version(), 1);

        let mut out = Vec::new();
        t.on_probe_packet(&probe_header(1), Duration::from_millis(5), &mut out);
        let confirmed: Vec<u64> = out
            .iter()
            .filter_map(|o| match o {
                TechniqueOutput::Confirm(c) => Some(*c),
                _ => None,
            })
            .collect();
        assert_eq!(confirmed, vec![10, 11]);
        assert_eq!(t.unconfirmed(), 0);
        assert_eq!(t.probes_received, 1);
    }

    #[test]
    fn later_version_confirms_earlier_batches_too() {
        let mut t = new_technique(1);
        let mut out = Vec::new();
        t.on_flow_mod(1, &fm(1), Duration::ZERO, &mut out);
        t.on_flow_mod(2, &fm(2), Duration::ZERO, &mut out);
        t.on_flow_mod(3, &fm(3), Duration::ZERO, &mut out);
        assert_eq!(t.outstanding_batches(), 3);

        // Only the probe for version 3 comes back (earlier probes lost).
        let mut out = Vec::new();
        t.on_probe_packet(&probe_header(3), Duration::from_millis(5), &mut out);
        let confirmed: Vec<u64> = out
            .iter()
            .filter_map(|o| match o {
                TechniqueOutput::Confirm(c) => Some(*c),
                _ => None,
            })
            .collect();
        assert_eq!(confirmed, vec![1, 2, 3]);
        assert_eq!(t.outstanding_batches(), 0);
    }

    #[test]
    fn foreign_probes_are_ignored() {
        let mut t = new_technique(1);
        let mut out = Vec::new();
        t.on_flow_mod(1, &fm(1), Duration::ZERO, &mut out);
        // Wrong ToS (someone else's catch value).
        let mut h = probe_header(1);
        h.nw_tos = plan().catch_tos(SwitchId::new(0));
        let mut out = Vec::new();
        t.on_probe_packet(&h, Duration::ZERO, &mut out);
        assert!(out.is_empty());
        // Right ToS but unknown version.
        let mut out = Vec::new();
        t.on_probe_packet(&probe_header(99), Duration::ZERO, &mut out);
        assert!(out.is_empty());
        assert_eq!(t.unconfirmed(), 1);
    }

    #[test]
    fn tick_flushes_partial_batch_and_injects_probe() {
        let mut t = new_technique(10);
        let mut out = Vec::new();
        t.start(Duration::ZERO, &mut out);
        let mut out = Vec::new();
        t.on_flow_mod(5, &fm(5), Duration::ZERO, &mut out);
        assert_eq!(t.current_version(), 0, "partial batch not yet versioned");

        let mut out = Vec::new();
        t.on_timer(TOKEN_TICK, Duration::from_millis(10), &mut out);
        assert_eq!(t.current_version(), 1, "tick flushes the partial batch");
        assert!(
            out.iter()
                .any(|o| matches!(o, TechniqueOutput::InjectVia { switch, .. } if *switch == SwitchId::new(0))),
            "a probe is injected via the configured neighbour"
        );
        assert!(
            out.iter()
                .any(|o| matches!(o, TechniqueOutput::SetTimer { .. })),
            "ticking continues while work is pending"
        );
        assert_eq!(t.probes_injected, 1);
    }

    #[test]
    fn ticking_stops_when_everything_is_confirmed() {
        let mut t = new_technique(1);
        let mut out = Vec::new();
        t.on_flow_mod(1, &fm(1), Duration::ZERO, &mut out);
        let mut out = Vec::new();
        t.on_probe_packet(&probe_header(1), Duration::ZERO, &mut out);
        let mut out = Vec::new();
        t.on_timer(TOKEN_TICK, Duration::from_millis(10), &mut out);
        assert!(
            !out.iter()
                .any(|o| matches!(o, TechniqueOutput::SetTimer { .. })),
            "no more timers once everything is confirmed"
        );
    }

    #[test]
    fn version_wraparound_comparison() {
        assert!(version_is_at_least(5, 3));
        assert!(version_is_at_least(3, 3));
        assert!(!version_is_at_least(3, 5));
        // Wrapped cases.
        assert!(version_is_at_least(2, 4090));
        assert!(!version_is_at_least(4090, 2));
    }

    #[test]
    #[should_panic(expected = "batch size must be at least 1")]
    fn zero_batch_size_rejected() {
        new_technique(0);
    }
}
