//! General probing (paper §3.2.2).
//!
//! Confirms every rule modification individually by crafting a probe packet
//! that matches exactly that rule, injecting it through a neighbour, and
//! waiting for the next-hop switch's probe-catch rule to punt it back to RUM.
//! Because each rule is confirmed on its own, this works even on switches
//! that reorder modifications across barriers.  Rules for which no
//! distinguishing probe exists (drop rules, rules fully covered by
//! higher-priority entries, rules whose pre-install fallback behaves
//! identically) are confirmed by a control-plane fallback timeout, exactly as
//! the paper prescribes.

use crate::config::{ProbeFieldPlan, SwitchPortMap};
use crate::engine::SwitchId;
use crate::probe::{synthesize_general_probe, GeneralProbe, KnownRule, ProbeSynthesisError};
use crate::technique::{AckTechnique, TechniqueOutput};
use openflow::messages::{FlowMod, FlowModCommand, PacketOut};
use openflow::{Action, OfMessage, PacketHeader, Xid};
use std::collections::HashMap;
use std::time::Duration;

/// Timer token for the periodic probing tick.
const TOKEN_TICK: u64 = 1;
/// Timer tokens >= this value are fallback confirmations (token - base = cookie).
const TOKEN_FALLBACK_BASE: u64 = 1 << 32;

/// State of one rule modification awaiting confirmation.
#[derive(Debug)]
struct PendingRule {
    cookie: u64,
    probe: GeneralProbe,
    probe_id: u16,
    sent_probes: u64,
}

/// The general-probing acknowledgment technique for one monitored switch.
#[derive(Debug)]
pub struct GeneralProbing {
    switch_index: SwitchId,
    probe_interval: Duration,
    max_outstanding: usize,
    fallback_delay: Duration,
    plan: ProbeFieldPlan,
    ports: SwitchPortMap,

    /// RUM's model of the switch's flow table (controller rules + RUM rules).
    known_rules: Vec<KnownRule>,
    /// Pending probe-confirmable rules, oldest first.
    pending: Vec<PendingRule>,
    /// Pending fallback confirmations: cookie -> armed.
    fallback_pending: HashMap<u64, ProbeSynthesisError>,
    /// First probe id of this instance's id range (ids are partitioned per
    /// monitored switch so probes can never be attributed to the wrong
    /// switch's technique).
    probe_id_base: u16,
    next_probe_id: u16,
    next_xid: Xid,
    unconfirmed: usize,
    ticking: bool,

    /// Statistics: probes injected.
    pub probes_injected: u64,
    /// Statistics: probes received.
    pub probes_received: u64,
    /// Statistics: rules confirmed through the fallback path.
    pub fallback_confirmations: u64,
}

impl GeneralProbing {
    /// Creates the technique.
    pub fn new(
        switch_index: SwitchId,
        probe_interval: Duration,
        max_outstanding: usize,
        fallback_delay: Duration,
        plan: ProbeFieldPlan,
        ports: SwitchPortMap,
        xid_base: Xid,
    ) -> Self {
        assert!(max_outstanding > 0, "max_outstanding must be at least 1");
        // Each monitored switch gets its own 4096-wide band of probe ids.
        let probe_id_base = 1 + (switch_index.index() as u16 % 15) * 4096;
        GeneralProbing {
            switch_index,
            probe_interval,
            max_outstanding,
            fallback_delay,
            plan,
            ports,
            known_rules: Vec::new(),
            pending: Vec::new(),
            fallback_pending: HashMap::new(),
            probe_id_base,
            next_probe_id: probe_id_base,
            next_xid: xid_base,
            unconfirmed: 0,
            ticking: false,
            probes_injected: 0,
            probes_received: 0,
            fallback_confirmations: 0,
        }
    }

    /// The monitored switch.
    pub fn switch_index(&self) -> SwitchId {
        self.switch_index
    }

    /// Number of rules currently confirmed only by the fallback timer.
    pub fn fallback_pending(&self) -> usize {
        self.fallback_pending.len()
    }

    /// Seeds RUM's model of the switch table with rules known to be installed
    /// before the update starts (e.g. the pre-installed drop-all rule and
    /// RUM's own catch rules).
    pub fn seed_known_rule(
        &mut self,
        match_: openflow::OfMatch,
        priority: u16,
        actions: Vec<Action>,
    ) {
        self.known_rules.push(KnownRule {
            match_,
            priority,
            actions,
        });
    }

    fn fresh_xid(&mut self) -> Xid {
        let x = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1);
        x
    }

    fn fresh_probe_id(&mut self) -> u16 {
        let id = self.next_probe_id;
        self.next_probe_id = if self.next_probe_id >= self.probe_id_base + 4000 {
            self.probe_id_base
        } else {
            self.next_probe_id + 1
        };
        id
    }

    fn ensure_ticking(&mut self, out: &mut Vec<TechniqueOutput>) {
        if !self.ticking {
            self.ticking = true;
            out.push(TechniqueOutput::SetTimer {
                delay: self.probe_interval,
                token: TOKEN_TICK,
            });
        }
    }

    fn update_known_rules(&mut self, fm: &FlowMod) {
        match fm.command {
            FlowModCommand::Add => self.known_rules.push(KnownRule {
                match_: fm.match_,
                priority: fm.priority,
                actions: fm.actions.clone(),
            }),
            FlowModCommand::Modify | FlowModCommand::ModifyStrict => {
                let mut any = false;
                for k in &mut self.known_rules {
                    let selected = if fm.command == FlowModCommand::ModifyStrict {
                        k.match_ == fm.match_ && k.priority == fm.priority
                    } else {
                        fm.match_.covers(&k.match_)
                    };
                    if selected {
                        k.actions = fm.actions.clone();
                        any = true;
                    }
                }
                if !any {
                    self.known_rules.push(KnownRule {
                        match_: fm.match_,
                        priority: fm.priority,
                        actions: fm.actions.clone(),
                    });
                }
            }
            FlowModCommand::Delete | FlowModCommand::DeleteStrict => {
                self.known_rules.retain(|k| {
                    let selected = if fm.command == FlowModCommand::DeleteStrict {
                        k.match_ == fm.match_ && k.priority == fm.priority
                    } else {
                        fm.match_.covers(&k.match_)
                    };
                    !selected
                });
            }
        }
    }

    fn arm_fallback(
        &mut self,
        cookie: u64,
        reason: ProbeSynthesisError,
        out: &mut Vec<TechniqueOutput>,
    ) {
        self.fallback_pending.insert(cookie, reason);
        out.push(TechniqueOutput::SetTimer {
            delay: self.fallback_delay,
            token: TOKEN_FALLBACK_BASE + cookie,
        });
    }

    fn inject_probe_for(&mut self, idx: usize, out: &mut Vec<TechniqueOutput>) {
        let Some((via_switch, via_port)) = self.ports.inject_via else {
            return;
        };
        let pending = &mut self.pending[idx];
        pending.sent_probes += 1;
        self.probes_injected += 1;
        let po = PacketOut::inject(
            vec![Action::output(via_port)],
            pending.probe.packet.to_bytes(),
        );
        let xid = self.fresh_xid();
        out.push(TechniqueOutput::InjectVia {
            switch: via_switch,
            msg: OfMessage::PacketOut { xid, body: po },
        });
    }
}

impl AckTechnique for GeneralProbing {
    fn name(&self) -> &'static str {
        "general"
    }

    fn start(&mut self, _now: Duration, out: &mut Vec<TechniqueOutput>) {
        self.ensure_ticking(out);
    }

    fn on_flow_mod(
        &mut self,
        cookie: u64,
        fm: &FlowMod,
        _now: Duration,
        out: &mut Vec<TechniqueOutput>,
    ) {
        self.unconfirmed += 1;
        self.ensure_ticking(out);

        // Deletions cannot be confirmed by a positive probe; fall back.
        if fm.command.is_delete() {
            self.update_known_rules(fm);
            self.arm_fallback(cookie, ProbeSynthesisError::NoForwardingOutput, out);
            return;
        }

        let probe_id = self.fresh_probe_id();
        let rule = KnownRule {
            match_: fm.match_,
            priority: fm.priority,
            actions: fm.actions.clone(),
        };
        // Determine which neighbour will catch the probe: the switch behind
        // the rule's output port.
        let catch_switch =
            crate::probe::first_physical_output(&fm.actions).and_then(|p| self.ports.next_hop(p));
        let result = match catch_switch {
            Some(next) => synthesize_general_probe(
                &rule,
                &self.known_rules,
                self.plan.catch_tos(next),
                probe_id,
            ),
            None => Err(ProbeSynthesisError::NoForwardingOutput),
        };
        // The rule is now part of RUM's table model either way.
        self.update_known_rules(fm);
        match result {
            Ok(probe) => {
                self.pending.push(PendingRule {
                    cookie,
                    probe,
                    probe_id,
                    sent_probes: 0,
                });
                // Probe immediately rather than waiting for the next tick: the
                // paper's general probing is limited by probe round-trips, not
                // by extra rule installations.
                let idx = self.pending.len() - 1;
                if idx < self.max_outstanding {
                    self.inject_probe_for(idx, out);
                }
            }
            Err(reason) => self.arm_fallback(cookie, reason, out),
        }
    }

    fn on_probe_packet(
        &mut self,
        header: &PacketHeader,
        _now: Duration,
        out: &mut Vec<TechniqueOutput>,
    ) {
        // Attribute the probe to a pending rule by probe id (or full header
        // comparison when the id field was constrained by the rule).  The
        // ToS byte must carry the expected neighbour's catch value — a probe
        // surfacing with a different marker was not punted by the catch rule
        // this probe was aimed at and proves nothing about the rule.
        let position = self.pending.iter().position(|p| {
            let expected = &p.probe.expected_at_catch;
            let tos_match = expected.nw_tos & 0xfc == header.nw_tos & 0xfc;
            let addresses_match =
                expected.nw_src == header.nw_src && expected.nw_dst == header.nw_dst;
            let id_match = header.tp_src == p.probe_id || header.tp_dst == p.probe_id;
            let ports_match = expected.tp_src == header.tp_src && expected.tp_dst == header.tp_dst;
            tos_match && addresses_match && (id_match || ports_match)
        });
        let Some(idx) = position else {
            return;
        };
        self.probes_received += 1;
        let pending = self.pending.remove(idx);
        self.unconfirmed = self.unconfirmed.saturating_sub(1);
        out.push(TechniqueOutput::Confirm(pending.cookie));
    }

    fn on_timer(&mut self, token: u64, _now: Duration, out: &mut Vec<TechniqueOutput>) {
        if token >= TOKEN_FALLBACK_BASE {
            let cookie = token - TOKEN_FALLBACK_BASE;
            if self.fallback_pending.remove(&cookie).is_some() {
                self.fallback_confirmations += 1;
                self.unconfirmed = self.unconfirmed.saturating_sub(1);
                out.push(TechniqueOutput::Confirm(cookie));
            }
            return;
        }
        if token != TOKEN_TICK {
            return;
        }
        // Re-probe the oldest outstanding rules, up to the configured cap.
        let n = self.pending.len().min(self.max_outstanding);
        for idx in 0..n {
            self.inject_probe_for(idx, out);
        }
        if self.unconfirmed > 0 {
            out.push(TechniqueOutput::SetTimer {
                delay: self.probe_interval,
                token: TOKEN_TICK,
            });
        } else {
            self.ticking = false;
        }
    }

    fn unconfirmed(&self) -> usize {
        self.unconfirmed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::OfMatch;
    use std::net::Ipv4Addr;

    fn ports() -> SwitchPortMap {
        let mut m = SwitchPortMap {
            port_to_switch: Default::default(),
            inject_via: Some((SwitchId::new(0), 2)),
        };
        m.port_to_switch.insert(2, SwitchId::new(2));
        m
    }

    fn plan() -> ProbeFieldPlan {
        ProbeFieldPlan::unique_per_switch(3)
    }

    fn new_technique() -> GeneralProbing {
        let mut t = GeneralProbing::new(
            SwitchId::new(1),
            Duration::from_millis(10),
            30,
            Duration::from_millis(300),
            plan(),
            ports(),
            0xB000_0000,
        );
        // Mirror the pre-installed drop-all rule.
        t.seed_known_rule(OfMatch::wildcard_all(), 0, vec![]);
        t
    }

    fn forwarding_mod(i: u8) -> FlowMod {
        FlowMod::add(
            OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, i), Ipv4Addr::new(10, 1, 0, i)),
            100,
            vec![Action::output(2)],
        )
    }

    fn confirms(out: &[TechniqueOutput]) -> Vec<u64> {
        out.iter()
            .filter_map(|o| match o {
                TechniqueOutput::Confirm(c) => Some(*c),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn forwarding_rule_gets_probed_and_confirmed() {
        let mut t = new_technique();
        let mut out = Vec::new();
        t.on_flow_mod(42, &forwarding_mod(1), Duration::ZERO, &mut out);
        // A probe is injected immediately via the configured neighbour.
        let probe_msg = out.iter().find_map(|o| match o {
            TechniqueOutput::InjectVia { switch, msg } => Some((*switch, msg.clone())),
            _ => None,
        });
        let (via, msg) = probe_msg.expect("probe injected");
        assert_eq!(via, SwitchId::new(0));
        let OfMessage::PacketOut { body, .. } = msg else {
            panic!("expected a PacketOut")
        };
        let probe_header = PacketHeader::from_bytes(&body.data).unwrap();
        assert_eq!(probe_header.nw_src, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(
            probe_header.nw_tos & 0xfc,
            plan().catch_tos(SwitchId::new(2)) & 0xfc
        );
        assert_eq!(t.unconfirmed(), 1);

        // The probe comes back (as rewritten by the rule — here unchanged).
        let mut out = Vec::new();
        t.on_probe_packet(&probe_header, Duration::from_millis(2), &mut out);
        assert_eq!(confirms(&out), vec![42]);
        assert_eq!(t.unconfirmed(), 0);
        assert_eq!(t.probes_received, 1);
    }

    #[test]
    fn unrelated_probe_is_ignored() {
        let mut t = new_technique();
        let mut out = Vec::new();
        t.on_flow_mod(42, &forwarding_mod(1), Duration::ZERO, &mut out);
        let foreign = PacketHeader {
            nw_tos: plan().catch_tos(SwitchId::new(2)),
            tp_src: 9999,
            ..Default::default()
        };
        let mut out = Vec::new();
        t.on_probe_packet(&foreign, Duration::ZERO, &mut out);
        assert!(out.is_empty());
        assert_eq!(t.unconfirmed(), 1);
    }

    #[test]
    fn drop_rule_falls_back_to_timeout() {
        let mut t = new_technique();
        let drop_rule = FlowMod::add(
            OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, 9), Ipv4Addr::new(10, 1, 0, 9)),
            100,
            vec![],
        );
        let mut out = Vec::new();
        t.on_flow_mod(7, &drop_rule, Duration::ZERO, &mut out);
        assert_eq!(t.fallback_pending(), 1);
        let token = out
            .iter()
            .find_map(|o| match o {
                TechniqueOutput::SetTimer { token, delay } if *token >= TOKEN_FALLBACK_BASE => {
                    assert_eq!(*delay, Duration::from_millis(300));
                    Some(*token)
                }
                _ => None,
            })
            .expect("fallback timer armed");
        let mut out = Vec::new();
        t.on_timer(token, Duration::from_millis(300), &mut out);
        assert_eq!(confirms(&out), vec![7]);
        assert_eq!(t.fallback_confirmations, 1);
        assert_eq!(t.unconfirmed(), 0);
    }

    #[test]
    fn deletion_falls_back_and_updates_table_model() {
        let mut t = new_technique();
        let mut out = Vec::new();
        t.on_flow_mod(1, &forwarding_mod(1), Duration::ZERO, &mut out);
        let del = FlowMod::delete_strict(forwarding_mod(1).match_, 100);
        let mut out = Vec::new();
        t.on_flow_mod(2, &del, Duration::ZERO, &mut out);
        assert_eq!(t.fallback_pending(), 1);
        // The deleted rule is gone from the model, so re-adding it later
        // synthesises a probe without tripping the "identical fallback" check.
        let mut out = Vec::new();
        t.on_flow_mod(3, &forwarding_mod(1), Duration::ZERO, &mut out);
        assert!(out
            .iter()
            .any(|o| matches!(o, TechniqueOutput::InjectVia { .. })));
    }

    #[test]
    fn tick_reprobes_oldest_rules_up_to_cap() {
        let mut t = GeneralProbing::new(
            SwitchId::new(1),
            Duration::from_millis(10),
            2, // cap at 2 outstanding probes per round
            Duration::from_millis(300),
            plan(),
            ports(),
            0xB000_0000,
        );
        t.seed_known_rule(OfMatch::wildcard_all(), 0, vec![]);
        let mut out = Vec::new();
        for i in 0..5u8 {
            t.on_flow_mod(u64::from(i), &forwarding_mod(i), Duration::ZERO, &mut out);
        }
        let injected_before = t.probes_injected;
        let mut out = Vec::new();
        t.on_timer(TOKEN_TICK, Duration::from_millis(10), &mut out);
        let injections = out
            .iter()
            .filter(|o| matches!(o, TechniqueOutput::InjectVia { .. }))
            .count();
        assert_eq!(injections, 2, "re-probing is capped at max_outstanding");
        assert_eq!(t.probes_injected, injected_before + 2);
    }

    #[test]
    fn rule_forwarding_to_unmonitored_port_uses_fallback() {
        let mut t = new_technique();
        // Port 7 leads to a host, not to a monitored switch.
        let fm = FlowMod::add(
            OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, 3), Ipv4Addr::new(10, 1, 0, 3)),
            100,
            vec![Action::output(7)],
        );
        let mut out = Vec::new();
        t.on_flow_mod(9, &fm, Duration::ZERO, &mut out);
        assert_eq!(t.fallback_pending(), 1);
    }

    #[test]
    fn identical_lower_priority_rule_forces_fallback() {
        let mut t = new_technique();
        t.seed_known_rule(
            OfMatch::wildcard_all().with_nw_dst_prefix(Ipv4Addr::new(10, 1, 0, 0), 16),
            50,
            vec![Action::output(2)],
        );
        let mut out = Vec::new();
        t.on_flow_mod(4, &forwarding_mod(4), Duration::ZERO, &mut out);
        assert_eq!(
            t.fallback_pending(),
            1,
            "indistinguishable rules cannot be probed"
        );
    }
}
