//! Sharding the RUM deployment by switch: [`ShardedEngine`] runs one
//! [`RumEngine`] per shard so concurrent drivers (one lock per shard) never
//! contend on a single engine mutex, while per-switch semantics stay
//! byte-identical to the unsharded engine.
//!
//! # Shard → switch mapping
//!
//! Switches are striped: shard `k` of `n` owns every switch whose index
//! satisfies `index % n == k`.  Each shard engine is built over the *full*
//! switch set but acts only for the switches it owns (see
//! [`RumConfig::owns`]); every input affecting a switch is routed to its
//! owner shard, so all state transitions of one switch serialize through one
//! engine in arrival order — exactly as in the unsharded engine.
//!
//! The one exception is probe PacketIns: a probe injected for switch A can
//! surface at any neighbour, so a probe-marked PacketIn is broadcast to all
//! shards ([`Routing::Broadcast`]) and each shard runs only the probe
//! matching of switches it owns.  The arrival switch's owner alone does the
//! consumption accounting and non-probe passthrough, so nothing is
//! double-counted or double-sent.
//!
//! # Why confirm order is preserved
//!
//! A confirmation for switch `s` is emitted only by `s`'s owner shard, in
//! response to inputs delivered in arrival order, and catch-rule xids are a
//! pure function of `(switch, generation)` rather than a shared counter —
//! so for any fixed input schedule the per-switch confirmation sequence (and
//! every byte sent on `s`'s connections) is identical to the unsharded
//! engine's.  Only the interleaving *across* switches may differ, which no
//! per-switch invariant (and no connection byte stream) observes.

use crate::config::{ProbeFieldPlan, RumConfig};
use crate::engine::{ConfirmRecord, Effect, Input, ProxyStats, RumEngine, SwitchId};
use openflow::OfMessage;
use std::sync::Arc;
use std::time::Duration;
use telemetry::Registry;

/// Where a sharded driver must deliver one [`Input`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// Deliver to exactly this shard (the owner of the affected switch).
    Shard(usize),
    /// Deliver to every shard, in shard order (probe PacketIns and ticks).
    Broadcast,
}

/// Pure input → shard routing, shared by [`ShardedEngine`] and the TCP
/// driver (which wraps each shard in its own mutex and must route before
/// locking).
#[derive(Debug, Clone)]
pub struct ShardRouter {
    n_shards: usize,
    probe_plan: ProbeFieldPlan,
}

impl ShardRouter {
    /// A router for `n_shards` shards over `config`'s deployment.
    pub fn new(config: &RumConfig, n_shards: usize) -> Self {
        assert!(n_shards >= 1, "a deployment needs at least one shard");
        ShardRouter {
            n_shards,
            probe_plan: config.probe_plan.clone(),
        }
    }

    /// Number of shards routed over.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// The shard owning `switch`.
    pub fn shard_of(&self, switch: SwitchId) -> usize {
        switch.index() % self.n_shards
    }

    /// Routes one input.  Everything affecting a single switch goes to its
    /// owner; probe PacketIns (which may confirm rules of switches on any
    /// shard) and ticks are broadcast.
    pub fn route(&self, input: &Input) -> Routing {
        match input {
            Input::FromController { switch, .. } | Input::SwitchReconnected { switch } => {
                Routing::Shard(self.shard_of(*switch))
            }
            Input::FromSwitch { switch, message } => {
                if self.n_shards > 1 && self.is_probe_packet_in(message) {
                    Routing::Broadcast
                } else {
                    Routing::Shard(self.shard_of(*switch))
                }
            }
            // Timer tokens encode the arming switch in the top 16 bits
            // (see `RumEngine`'s token encoding).
            Input::TimerFired { token } => {
                Routing::Shard(((token.raw() >> 48) as usize) % self.n_shards)
            }
            Input::Tick => Routing::Broadcast,
        }
    }

    /// True for a PacketIn punting one of RUM's own probe packets (reserved
    /// ToS, explicit to-controller action) — the only switch-side input that
    /// concerns techniques beyond the arrival switch's.
    fn is_probe_packet_in(&self, message: &OfMessage) -> bool {
        let OfMessage::PacketIn { body, .. } = message else {
            return false;
        };
        if body.reason != openflow::constants::packet_in_reason::ACTION {
            return false;
        }
        match openflow::PacketHeader::from_bytes(&body.data) {
            Ok(header) => self.probe_plan.is_probe_tos(header.nw_tos),
            Err(_) => false,
        }
    }
}

/// A set of per-shard [`RumEngine`]s behind the same input → effects
/// interface as a single engine, routing each input to the shard(s) it
/// concerns.  Built via [`crate::RumBuilder::build_sharded`]; with one shard
/// this is exactly the unsharded engine, wrapped.
///
/// All shards publish statistics into one shared telemetry registry (the
/// registry deduplicates handles by name, and only a switch's owner shard
/// ever touches its counters), so the stats surface is identical to the
/// unsharded engine's.
pub struct ShardedEngine {
    shards: Vec<RumEngine>,
    router: ShardRouter,
}

impl ShardedEngine {
    /// Builds `n_shards` engines over `config`.  Prefer
    /// [`crate::RumBuilder::build_sharded`].
    ///
    /// # Panics
    ///
    /// See [`RumEngine::new`]; additionally `n_shards` must be at least 1.
    pub fn new(mut config: RumConfig, n_shards: usize) -> Self {
        assert!(n_shards >= 1, "a deployment needs at least one shard");
        // One registry across all shards, so every stats surface (owner or
        // not) reads the same counters.
        if config.metrics.is_none() {
            config.metrics = Some(Arc::new(Registry::new()));
        }
        let router = ShardRouter::new(&config, n_shards);
        let shards = (0..n_shards)
            .map(|k| {
                let mut shard_config = config.clone();
                shard_config.shard_index = k;
                shard_config.shard_count = n_shards;
                RumEngine::new(shard_config)
            })
            .collect();
        ShardedEngine { shards, router }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of monitored switches.
    pub fn n_switches(&self) -> usize {
        self.shards[0].n_switches()
    }

    /// All switch ids, in order.
    pub fn switch_ids(&self) -> impl Iterator<Item = SwitchId> {
        (0..self.n_switches()).map(SwitchId::new)
    }

    /// The input router (shard → switch mapping).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The shard index owning `switch`.
    pub fn owner_of(&self, switch: SwitchId) -> usize {
        self.router.shard_of(switch)
    }

    /// Read access to one shard's engine.
    pub fn shard(&self, index: usize) -> &RumEngine {
        &self.shards[index]
    }

    /// The deployment configuration (shard 0's copy).
    pub fn config(&self) -> &RumConfig {
        self.shards[0].config()
    }

    /// The shared telemetry registry all shards publish into.
    pub fn metrics(&self) -> &Arc<Registry> {
        self.shards[0].metrics()
    }

    /// The technique name running for `switch`.
    pub fn technique_name(&self, switch: SwitchId) -> &'static str {
        self.shards[self.owner_of(switch)].technique_name(switch)
    }

    /// Statistics for one monitored switch, read from its owner shard.
    pub fn stats(&self, switch: SwitchId) -> ProxyStats {
        self.shards[self.owner_of(switch)].stats(switch)
    }

    /// Total statistics summed over all monitored switches.
    pub fn total_stats(&self) -> ProxyStats {
        let mut total = ProxyStats::default();
        for switch in self.switch_ids() {
            total += self.stats(switch);
        }
        total
    }

    /// Starts every shard, in shard order, concatenating their start-up
    /// effects.  Each switch's effects are emitted exactly once (by its
    /// owner).
    pub fn start(&mut self, now: Duration) -> Vec<Effect> {
        let mut effects = Vec::new();
        for shard in &mut self.shards {
            effects.append(&mut shard.start(now));
        }
        effects
    }

    /// Routes one input to the shard(s) it concerns and returns the combined
    /// effects.
    pub fn handle(&mut self, now: Duration, input: Input) -> Vec<Effect> {
        let mut effects = Vec::new();
        self.handle_into(now, input, &mut effects);
        effects
    }

    /// Appending form of [`ShardedEngine::handle`].
    pub fn handle_into(&mut self, now: Duration, input: Input, effects: &mut Vec<Effect>) {
        match self.router.route(&input) {
            Routing::Shard(k) => self.shards[k].handle_into(now, input, effects),
            Routing::Broadcast => {
                let last = self.shards.len() - 1;
                for k in 0..last {
                    self.shards[k].handle_into(now, input.clone(), effects);
                }
                self.shards[last].handle_into(now, input, effects);
            }
        }
    }

    /// Every confirmation across all shards, merged by emission time (ties
    /// resolved in shard order).  Per-switch subsequences are exact; the
    /// cross-switch interleaving of equal-time confirmations is the merge's
    /// choice, as it is for any concurrent deployment.
    pub fn confirmations(&self) -> Vec<ConfirmRecord> {
        if self.shards.len() == 1 {
            return self.shards[0].confirmations().to_vec();
        }
        // Each shard's log is already time-sorted (engines only move
        // forward in time), so a k-way stable merge suffices.
        let mut cursors: Vec<(usize, &[ConfirmRecord])> = self
            .shards
            .iter()
            .map(|s| (0usize, s.confirmations()))
            .collect();
        let total: usize = cursors.iter().map(|(_, log)| log.len()).sum();
        let mut merged = Vec::with_capacity(total);
        while merged.len() < total {
            let mut best: Option<usize> = None;
            for (k, (pos, log)) in cursors.iter().enumerate() {
                if *pos >= log.len() {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some(b) => log[*pos].at < cursors[b].1[cursors[b].0].at,
                };
                if better {
                    best = Some(k);
                }
            }
            let k = best.expect("an unfinished shard exists");
            merged.push(cursors[k].1[cursors[k].0]);
            cursors[k].0 += 1;
        }
        merged
    }

    /// Every confirmation `(switch, cookie)` in merged order — see
    /// [`ShardedEngine::confirmations`].
    pub fn confirmed_order(&self) -> Vec<(SwitchId, u64)> {
        self.confirmations()
            .iter()
            .map(|r| (r.switch, r.cookie))
            .collect()
    }

    /// The confirmation cookie sequence of one switch — the invariant that
    /// must be byte-identical between sharded and unsharded runs.
    pub fn confirmed_order_for(&self, switch: SwitchId) -> Vec<u64> {
        self.shards[self.owner_of(switch)]
            .confirmations()
            .iter()
            .filter(|r| r.switch == switch)
            .map(|r| r.cookie)
            .collect()
    }

    /// Decomposes into the per-shard engines plus the router — the TCP
    /// driver wraps each engine in its own lock.
    pub fn into_parts(self) -> (Vec<RumEngine>, ShardRouter) {
        (self.shards, self.router)
    }
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("n_shards", &self.shards.len())
            .field("n_switches", &self.n_switches())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RumBuilder, TechniqueConfig};
    use crate::engine::TimerToken;
    use openflow::messages::FlowMod;
    use openflow::{Action, OfMatch};
    use std::net::Ipv4Addr;

    fn flow_mod(xid: u32) -> OfMessage {
        OfMessage::FlowMod {
            xid,
            body: FlowMod::add(
                OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 1, 0, 1)),
                100,
                vec![Action::output(2)],
            ),
        }
    }

    /// One shard is literally the unsharded engine: identical effects for an
    /// identical input schedule.
    #[test]
    fn single_shard_matches_unsharded_engine() {
        let mut single = RumBuilder::new(2)
            .technique(TechniqueConfig::BarrierBaseline)
            .build();
        let mut sharded = RumBuilder::new(2)
            .technique(TechniqueConfig::BarrierBaseline)
            .build_sharded();
        assert_eq!(sharded.n_shards(), 1);
        assert_eq!(single.start(Duration::ZERO), sharded.start(Duration::ZERO));
        for (t, input) in [
            Input::FromController {
                switch: SwitchId::new(0),
                message: flow_mod(5),
            },
            Input::FromController {
                switch: SwitchId::new(1),
                message: flow_mod(6),
            },
        ]
        .into_iter()
        .enumerate()
        {
            let now = Duration::from_millis(t as u64);
            assert_eq!(
                single.handle(now, input.clone()),
                sharded.handle(now, input)
            );
        }
        assert_eq!(single.confirmed_order(), sharded.confirmed_order());
    }

    /// Striped ownership: each switch's inputs act only on its owner shard,
    /// and per-switch confirm order matches the unsharded oracle.
    #[test]
    fn sharded_confirms_match_oracle_per_switch() {
        let n = 5;
        let build = || RumBuilder::new(n).technique(TechniqueConfig::BarrierBaseline);
        let mut oracle = build().build();
        let mut sharded = build().shards(3).build_sharded();
        oracle.start(Duration::ZERO);
        sharded.start(Duration::ZERO);

        // Interleave flow-mods across switches, then confirm via the proxy
        // barriers each engine injected.
        let mut oracle_barriers = Vec::new();
        let mut sharded_barriers = Vec::new();
        for i in 0..n {
            let sw = SwitchId::new(i);
            let now = Duration::from_millis(i as u64);
            let input = Input::FromController {
                switch: sw,
                message: flow_mod(100 + i as u32),
            };
            let barrier_of = |fx: &[Effect]| {
                fx.iter()
                    .find_map(|e| match e {
                        Effect::ToSwitch {
                            message: OfMessage::BarrierRequest { xid },
                            ..
                        } => Some(*xid),
                        _ => None,
                    })
                    .expect("proxy barrier")
            };
            oracle_barriers.push((sw, barrier_of(&oracle.handle(now, input.clone()))));
            sharded_barriers.push((sw, barrier_of(&sharded.handle(now, input))));
        }
        assert_eq!(
            oracle_barriers, sharded_barriers,
            "technique xid streams must be shard-invariant"
        );
        // Reply in reverse switch order so the global confirm order differs
        // from the install order.
        for &(sw, xid) in oracle_barriers.iter().rev() {
            let now = Duration::from_millis(50);
            let reply = Input::FromSwitch {
                switch: sw,
                message: OfMessage::BarrierReply { xid },
            };
            oracle.handle(now, reply.clone());
            sharded.handle(now, reply);
        }
        for i in 0..n {
            let sw = SwitchId::new(i);
            let oracle_seq: Vec<u64> = oracle
                .confirmations()
                .iter()
                .filter(|r| r.switch == sw)
                .map(|r| r.cookie)
                .collect();
            assert_eq!(oracle_seq, sharded.confirmed_order_for(sw));
            assert_eq!(oracle.stats(sw), sharded.stats(sw));
        }
        assert_eq!(oracle.total_stats(), sharded.total_stats());
    }

    /// Start-up emits each switch's catch rule exactly once across shards,
    /// with the same xids the oracle uses.
    #[test]
    fn start_effects_partition_across_shards() {
        let n = 6;
        let build = || RumBuilder::new(n).technique(TechniqueConfig::default_general());
        let catch_rules = |fx: &[Effect]| {
            let mut seen: Vec<(usize, u32)> = fx
                .iter()
                .filter_map(|e| match e {
                    Effect::ToSwitch {
                        switch,
                        message: OfMessage::FlowMod { xid, .. },
                    } => Some((switch.index(), *xid)),
                    _ => None,
                })
                .collect();
            seen.sort_unstable();
            seen
        };
        let oracle_fx = build().build().start(Duration::ZERO);
        let sharded_fx = build().shards(4).build_sharded().start(Duration::ZERO);
        let oracle_rules = catch_rules(&oracle_fx);
        assert_eq!(oracle_rules.len(), n);
        assert_eq!(oracle_rules, catch_rules(&sharded_fx));
    }

    /// The router sends per-switch inputs to the owner, broadcasts probe
    /// PacketIns, and decodes timer tokens back to the arming switch's
    /// shard.
    #[test]
    fn router_routes_by_ownership() {
        let config = RumBuilder::new(7)
            .technique(TechniqueConfig::default_general())
            .build_config();
        let plan = config.probe_plan.clone();
        let router = ShardRouter::new(&config, 3);
        assert_eq!(router.n_shards(), 3);
        assert_eq!(
            router.route(&Input::FromController {
                switch: SwitchId::new(5),
                message: flow_mod(1),
            }),
            Routing::Shard(2)
        );
        assert_eq!(
            router.route(&Input::SwitchReconnected {
                switch: SwitchId::new(4)
            }),
            Routing::Shard(1)
        );
        assert_eq!(router.route(&Input::Tick), Routing::Broadcast);
        // Timer armed by switch 6's technique: token top bits carry the
        // index.
        assert_eq!(
            router.route(&Input::TimerFired {
                token: TimerToken::from_raw((6u64 << 48) | 7),
            }),
            Routing::Shard(0)
        );
        // A probe-marked PacketIn broadcasts; ordinary PacketIns go to the
        // arrival switch's owner.
        let probe = openflow::PacketHeader {
            nw_tos: plan.catch_tos(SwitchId::new(0)),
            ..Default::default()
        };
        let packet_in = |data: Vec<u8>| OfMessage::PacketIn {
            xid: 0,
            body: openflow::messages::PacketIn {
                buffer_id: 0,
                total_len: data.len() as u16,
                in_port: 1,
                reason: openflow::constants::packet_in_reason::ACTION,
                data,
            },
        };
        assert_eq!(
            router.route(&Input::FromSwitch {
                switch: SwitchId::new(1),
                message: packet_in(probe.to_bytes()),
            }),
            Routing::Broadcast
        );
        let user = openflow::PacketHeader { nw_tos: 0, ..probe };
        assert_eq!(
            router.route(&Input::FromSwitch {
                switch: SwitchId::new(1),
                message: packet_in(user.to_bytes()),
            }),
            Routing::Shard(1)
        );
    }
}
