//! The simulator driver for the sans-IO [`crate::RumEngine`]: per-switch proxy
//! nodes, topology-derived port maps, and one-call deployment.
//!
//! The paper's prototype is a chain of TCP proxies: every switch connects to
//! RUM believing it is the controller, and RUM connects onward to the real
//! controller impersonating the switches.  In the simulator the same
//! structure appears as one [`RumProxy`] node per monitored switch, all
//! sharing a single [`crate::RumEngine`] (RUM is one logical process), exactly like
//! the prototype's proxy chain shares one POX process.
//!
//! All message-level logic lives in the engine; this module only translates
//! simulator events into [`Input`]s and executes the returned [`Effect`]s
//! through the simulator [`Context`].  The `rum-tcp` crate does the same over
//! real sockets.

use crate::config::{RumBuilder, SwitchPortMap};
use crate::engine::{Effect, Input, ProxyStats, SwitchId, TimerToken};
use crate::shard::ShardedEngine;
use simnet::{Context, EventPayload, Node, NodeId, SimTime, Topology};
use std::any::Any;
use std::cell::RefCell;
use std::rc::Rc;

/// The shared state of one simulated RUM deployment: the engine plus the
/// routing the driver needs to execute effects.
struct SimRum {
    engine: ShardedEngine,
    controller: NodeId,
    switch_nodes: Vec<NodeId>,
    control_latency: SimTime,
}

impl SimRum {
    /// Feeds one input and executes the effects through `ctx`.
    fn drive(&mut self, input: Input, ctx: &mut Context<'_>) {
        let effects = self.engine.handle(ctx.now().into(), input);
        self.execute(effects, ctx);
    }

    fn execute(&mut self, effects: Vec<Effect>, ctx: &mut Context<'_>) {
        for effect in effects {
            match effect {
                Effect::ToController { message, .. } => {
                    ctx.send_control(self.controller, message, self.control_latency);
                }
                Effect::ToSwitch { switch, message } | Effect::InjectVia { switch, message } => {
                    ctx.send_control(
                        self.switch_nodes[switch.index()],
                        message,
                        self.control_latency,
                    );
                }
                Effect::ArmTimer { delay, token } => {
                    ctx.set_timer(delay.into(), token.raw());
                }
                Effect::Confirmed { .. } => {
                    // Observational; the controller learns through the ack /
                    // barrier messages emitted alongside.
                }
            }
        }
    }
}

/// A handle to a deployed RUM layer, for post-run inspection.
#[derive(Clone)]
pub struct RumHandle {
    shared: Rc<RefCell<SimRum>>,
}

impl RumHandle {
    /// Statistics for one monitored switch.
    pub fn stats(&self, switch: SwitchId) -> ProxyStats {
        self.shared.borrow().engine.stats(switch)
    }

    /// The technique name running for `switch`.
    pub fn technique_name(&self, switch: SwitchId) -> &'static str {
        self.shared.borrow().engine.technique_name(switch)
    }

    /// Number of monitored switches.
    pub fn n_switches(&self) -> usize {
        self.shared.borrow().engine.n_switches()
    }

    /// Every confirmation the engine emitted, in order.
    pub fn confirmed_order(&self) -> Vec<(SwitchId, u64)> {
        self.shared.borrow().engine.confirmed_order()
    }

    /// The confirmation cookie sequence of one switch — the cross-driver /
    /// cross-shard conformance invariant.
    pub fn confirmed_order_for(&self, switch: SwitchId) -> Vec<u64> {
        self.shared.borrow().engine.confirmed_order_for(switch)
    }

    /// Number of engine shards driving this deployment.
    pub fn n_shards(&self) -> usize {
        self.shared.borrow().engine.n_shards()
    }

    /// Total statistics summed over all monitored switches.  Derived from
    /// the engine's telemetry registry, like every other stats surface.
    pub fn total_stats(&self) -> ProxyStats {
        self.shared.borrow().engine.total_stats()
    }

    /// The telemetry registry the deployment's statistics live in.
    pub fn metrics(&self) -> std::sync::Arc<telemetry::Registry> {
        std::sync::Arc::clone(self.shared.borrow().engine.metrics())
    }
}

/// A per-switch proxy node: the switch's OpenFlow peer on one side, one of
/// the controller's "switches" on the other.  A thin driver — every decision
/// is made by the shared [`crate::RumEngine`].
pub struct RumProxy {
    shared: Rc<RefCell<SimRum>>,
    switch: SwitchId,
    controller: NodeId,
    label: String,
}

impl RumProxy {
    /// The RUM deployment handle (for inspection after a run).
    pub fn handle(&self) -> RumHandle {
        RumHandle {
            shared: Rc::clone(&self.shared),
        }
    }

    /// The switch identity this proxy front-ends.
    pub fn switch(&self) -> SwitchId {
        self.switch
    }
}

impl Node for RumProxy {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn start(&mut self, ctx: &mut Context<'_>) {
        // The engine starts exactly once; whichever proxy node starts first
        // kicks it off and executes the start-up effects (catch rules,
        // initial technique timers) for every switch.
        let mut shared = self.shared.borrow_mut();
        let effects = shared.engine.start(ctx.now().into());
        shared.execute(effects, ctx);
    }

    fn handle(&mut self, event: EventPayload, ctx: &mut Context<'_>) {
        let mut shared = self.shared.borrow_mut();
        match event {
            EventPayload::Control { from, message } => {
                let input = if from == self.controller {
                    Input::FromController {
                        switch: self.switch,
                        message,
                    }
                } else {
                    // From our switch — or from an unrelated node (e.g. a
                    // switch we only inject probes through): treat it as
                    // switch-side traffic so probe PacketIns are captured.
                    //
                    // A switch-side Hello is the handshake replay of a
                    // restarted switch reattaching (nothing else initiates
                    // one mid-session in the simulator); tell the engine so
                    // it re-installs its rules and re-issues unconfirmed
                    // modifications, then forward the Hello so the
                    // controller answers it end to end.
                    if matches!(message, openflow::OfMessage::Hello { .. }) {
                        shared.drive(
                            Input::SwitchReconnected {
                                switch: self.switch,
                            },
                            ctx,
                        );
                    }
                    Input::FromSwitch {
                        switch: self.switch,
                        message,
                    }
                };
                shared.drive(input, ctx);
            }
            EventPayload::Timer { token } => {
                shared.drive(
                    Input::TimerFired {
                        token: TimerToken::from_raw(token),
                    },
                    ctx,
                );
            }
            EventPayload::Packet { .. } => {
                // The proxy sits on the control path only.
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Derives per-switch [`SwitchPortMap`]s from the data-plane topology: which
/// local port leads to which other monitored switch, and through which
/// neighbour probes can be injected.
pub fn derive_port_maps(topology: &Topology, switches: &[NodeId]) -> Vec<SwitchPortMap> {
    let index_of = |node: NodeId| switches.iter().position(|&s| s == node).map(SwitchId::new);
    switches
        .iter()
        .map(|&sw| {
            let mut map = SwitchPortMap::default();
            for (port, peer) in topology.neighbors(sw) {
                if let Some(peer_idx) = index_of(peer) {
                    map.port_to_switch.insert(port, peer_idx);
                    if map.inject_via.is_none() {
                        // The port on the neighbour that points back at us.
                        if let Some(back_port) = topology.port_towards(peer, sw) {
                            map.inject_via = Some((peer_idx, back_port));
                        }
                    }
                }
            }
            map
        })
        .collect()
}

/// Deploys a RUM layer into a simulation: creates one proxy node per switch
/// and returns their node ids (index-aligned with `switches`) plus a handle
/// for post-run inspection.
///
/// Port maps the builder left unspecified are derived from the simulator
/// topology.  After calling this, point the controller's connections at the
/// returned proxy ids and each switch's controller connection at its proxy.
pub fn deploy(
    sim: &mut simnet::Simulator,
    builder: RumBuilder,
    controller: NodeId,
    switches: &[NodeId],
) -> (Vec<NodeId>, RumHandle) {
    let shards = builder.shard_count();
    // Fill in any port maps the caller left empty BEFORE building: a large
    // fleet's probe-plan colouring is derived from this adjacency.
    let derived = derive_port_maps(sim.topology(), switches);
    let config = builder.fill_unspecified_port_maps(derived).build_config();
    assert_eq!(
        config.n_switches(),
        switches.len(),
        "the builder must be sized for exactly the monitored switches"
    );
    let control_latency: SimTime = config.control_latency.into();
    let shared = Rc::new(RefCell::new(SimRum {
        engine: ShardedEngine::new(config, shards),
        controller,
        switch_nodes: switches.to_vec(),
        control_latency,
    }));
    let handle = RumHandle {
        shared: Rc::clone(&shared),
    };
    let proxies = switches
        .iter()
        .enumerate()
        .map(|(i, _)| {
            sim.add_node(RumProxy {
                shared: Rc::clone(&shared),
                switch: SwitchId::new(i),
                controller,
                label: format!("rum-proxy-{i}"),
            })
        })
        .collect();
    (proxies, handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TechniqueConfig;
    use controller::scenarios::BulkUpdateScenario;
    use controller::{AckMode, Controller};
    use ofswitch::SwitchModel;
    use simnet::OpenFlowSwitch;
    use simnet::Simulator;
    use std::time::Duration;

    /// Runs the bulk-update scenario through RUM with the given technique and
    /// returns (simulator, controller id, rum handle).
    fn run_bulk(
        technique: TechniqueConfig,
        n_rules: usize,
        window: usize,
        model: SwitchModel,
        until: SimTime,
    ) -> (Simulator, NodeId, RumHandle) {
        let mut sim = Simulator::new(11);
        let scenario = BulkUpdateScenario {
            n_rules,
            packets_per_sec: 0,
            model,
            ..Default::default()
        };
        let net = scenario.build(&mut sim);
        let ctrl = Controller::new(
            "ctrl",
            net.plan.clone(),
            AckMode::RumAcks,
            window,
            SimTime::from_millis(10),
        );
        let ctrl_id = sim.add_node(ctrl);

        // RUM monitors the whole chain A - B - C so probes can be injected
        // via A and caught at C.  The controller only talks to B (plan
        // target 0 = B), so its single connection points at B's proxy.
        let switches = [net.sw_a, net.sw_b, net.sw_c];
        let builder = RumBuilder::new(switches.len()).technique(technique);
        let (proxies, handle) = deploy(&mut sim, builder, ctrl_id, &switches);
        sim.node_mut::<Controller>(ctrl_id)
            .unwrap()
            .set_connections(vec![proxies[1]]);
        for (idx, sw) in switches.iter().enumerate() {
            sim.node_mut::<OpenFlowSwitch>(*sw)
                .unwrap()
                .connect_controller(proxies[idx]);
        }
        sim.run_until(until);
        (sim, ctrl_id, handle)
    }

    fn assert_never_early(sim: &Simulator, expected: usize) {
        let delays = sim.trace().activation_delays();
        assert_eq!(delays.len(), expected);
        let negative: Vec<_> = delays.iter().filter(|d| d.delay_millis() < 0.0).collect();
        assert!(
            negative.is_empty(),
            "no acknowledgment may precede data-plane activation, got {negative:?}"
        );
    }

    #[test]
    fn baseline_on_buggy_switch_acks_too_early() {
        let (sim, ctrl_id, _) = run_bulk(
            TechniqueConfig::BarrierBaseline,
            30,
            30,
            SwitchModel::hp5406zl(),
            SimTime::from_secs(5),
        );
        let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
        assert!(ctrl.is_complete());
        let delays = sim.trace().activation_delays();
        let negative = delays.iter().filter(|d| d.delay_millis() < 0.0).count();
        assert!(
            negative > 20,
            "the baseline must reproduce the premature acknowledgments ({negative}/30)"
        );
    }

    #[test]
    fn static_timeout_is_never_early_on_buggy_switch() {
        let (sim, ctrl_id, _) = run_bulk(
            TechniqueConfig::StaticTimeout {
                delay: Duration::from_millis(300),
            },
            30,
            30,
            SwitchModel::hp5406zl(),
            SimTime::from_secs(10),
        );
        let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
        assert!(ctrl.is_complete());
        assert_never_early(&sim, 30);
    }

    #[test]
    fn sequential_probing_is_never_early_and_uses_probes() {
        let (sim, ctrl_id, handle) = run_bulk(
            TechniqueConfig::default_sequential(),
            40,
            40,
            SwitchModel::hp5406zl(),
            SimTime::from_secs(20),
        );
        let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
        assert!(
            ctrl.is_complete(),
            "confirmed {} of 40",
            ctrl.confirmed_count()
        );
        assert_never_early(&sim, 40);
        let stats = handle.stats(SwitchId::new(1));
        assert!(stats.proxy_flow_mods > 0, "probe rule must be installed");
        assert!(stats.probes_injected > 0);
        // Probes are caught at a neighbouring switch, so the consumption is
        // attributed to whichever proxy received the PacketIn.
        assert!(handle.total_stats().probes_consumed > 0);
        assert!(stats.acks_sent >= 40);
    }

    #[test]
    fn general_probing_is_never_early_even_on_reordering_switch() {
        let (sim, ctrl_id, handle) = run_bulk(
            TechniqueConfig::default_general(),
            40,
            40,
            SwitchModel::reordering(),
            SimTime::from_secs(20),
        );
        let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
        assert!(
            ctrl.is_complete(),
            "confirmed {} of 40",
            ctrl.confirmed_count()
        );
        let delays = sim.trace().activation_delays();
        // Only the controller's own rules have confirmations (probe rules are
        // proxy-internal); none may be negative.
        assert!(delays.iter().all(|d| d.delay_millis() >= -1e-9));
        let stats = handle.stats(SwitchId::new(1));
        assert!(stats.probes_injected > 0);
        assert!(handle.total_stats().probes_consumed > 0);
        // Every confirmation in the engine log belongs to switch B.
        assert!(handle
            .confirmed_order()
            .iter()
            .all(|(sw, _)| *sw == SwitchId::new(1)));
        assert_eq!(handle.confirmed_order().len(), 40);
    }

    #[test]
    fn general_probing_acks_are_close_to_data_plane_activation() {
        let (sim, ctrl_id, _) = run_bulk(
            TechniqueConfig::default_general(),
            30,
            30,
            SwitchModel::hp5406zl(),
            SimTime::from_secs(20),
        );
        let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
        assert!(ctrl.is_complete());
        let delays = sim.trace().activation_delays();
        let controller_rules: Vec<_> = delays
            .iter()
            .filter(|d| d.cookie >= 1_000 && d.cookie < 1_000 + 30)
            .collect();
        assert_eq!(controller_rules.len(), 30);
        // Paper: within 30 ms of the data-plane modification for 90% of
        // modifications.  Allow a little slack for the simulated timing.
        let close = controller_rules
            .iter()
            .filter(|d| d.delay_millis() >= 0.0 && d.delay_millis() <= 60.0)
            .count();
        assert!(
            close * 10 >= controller_rules.len() * 9,
            "only {close}/30 acks were within 60 ms"
        );
    }

    #[test]
    fn reliable_barriers_wait_for_data_plane() {
        // Controller uses plain barriers (transparent mode); RUM makes them
        // honest via sequential probing.
        let mut sim = Simulator::new(5);
        let scenario = BulkUpdateScenario {
            n_rules: 20,
            packets_per_sec: 0,
            model: SwitchModel::hp5406zl(),
            ..Default::default()
        };
        let net = scenario.build(&mut sim);
        let ctrl = Controller::new(
            "ctrl",
            net.plan.clone(),
            AckMode::Barriers { batch: 10 },
            20,
            SimTime::from_millis(10),
        );
        let ctrl_id = sim.add_node(ctrl);
        let switches = [net.sw_a, net.sw_b, net.sw_c];
        let builder = RumBuilder::new(switches.len())
            .technique(TechniqueConfig::default_sequential())
            .fine_grained_acks(false);
        let (proxies, _handle) = deploy(&mut sim, builder, ctrl_id, &switches);
        sim.node_mut::<Controller>(ctrl_id)
            .unwrap()
            .set_connections(vec![proxies[1]]);
        for (idx, sw) in switches.iter().enumerate() {
            sim.node_mut::<OpenFlowSwitch>(*sw)
                .unwrap()
                .connect_controller(proxies[idx]);
        }
        sim.run_until(SimTime::from_secs(20));
        let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
        assert!(ctrl.is_complete());
        // Confirmation through RUM-held barriers must never precede the data
        // plane.
        let delays = sim.trace().activation_delays();
        let controller_rules: Vec<_> = delays
            .iter()
            .filter(|d| d.cookie >= 1_000 && d.cookie < 1_020)
            .collect();
        assert_eq!(controller_rules.len(), 20);
        assert!(controller_rules.iter().all(|d| d.delay_millis() >= 0.0));
    }

    #[test]
    fn derive_port_maps_from_topology() {
        let mut sim = Simulator::new(1);
        let scenario = BulkUpdateScenario {
            n_rules: 1,
            packets_per_sec: 0,
            ..Default::default()
        };
        let net = scenario.build(&mut sim);
        let switches = [net.sw_a, net.sw_b, net.sw_c];
        let maps = derive_port_maps(sim.topology(), &switches);
        assert_eq!(maps.len(), 3);
        // B (index 1) reaches A through port 1 and C through port 2.
        assert_eq!(maps[1].next_hop(1), Some(SwitchId::new(0)));
        assert_eq!(maps[1].next_hop(2), Some(SwitchId::new(2)));
        // B's probes can be injected via A (which reaches B through port 2).
        assert_eq!(maps[1].inject_via, Some((SwitchId::new(0), 2)));
        // A has only one monitored neighbour: B.
        assert_eq!(maps[0].next_hop(2), Some(SwitchId::new(1)));
    }
}
