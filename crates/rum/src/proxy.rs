//! The RUM proxy layer: message interception, reliable barriers, and the glue
//! between acknowledgment techniques and the rest of the system.
//!
//! The paper's prototype is a chain of TCP proxies: every switch connects to
//! RUM believing it is the controller, and RUM connects onward to the real
//! controller impersonating the switches.  In the simulator the same
//! structure appears as one [`RumProxy`] node per monitored switch, all
//! sharing a single [`RumLayer`] state (RUM is one logical process), exactly
//! like the prototype's proxy chain shares one POX process.

use crate::config::{RumConfig, SwitchPortMap, TechniqueConfig};
use crate::general::GeneralProbing;
use crate::probe::catch_rule;
use crate::sequential::SequentialProbing;
use crate::technique::{AckTechnique, TechniqueOutput};
use crate::technique::{AdaptiveDelay, BarrierBaseline, StaticTimeout};
use openflow::{OfMessage, PacketHeader, Xid};
use simnet::{Context, EventPayload, Node, NodeId, Topology};
use std::any::Any;
use std::cell::RefCell;
use std::collections::{HashSet, VecDeque};
use std::rc::Rc;

/// Transaction ids at or above this value belong to RUM, not the controller.
pub const PROXY_XID_BASE: Xid = 0x8000_0000;

/// A controller barrier whose reply is being withheld.
#[derive(Debug)]
struct PendingBarrier {
    xid: Xid,
    required: HashSet<u64>,
    switch_replied: bool,
}

/// Per-monitored-switch proxy state.
struct SwitchState {
    technique: Box<dyn AckTechnique>,
    unconfirmed: HashSet<u64>,
    confirmed: HashSet<u64>,
    failed: HashSet<u64>,
    pending_barriers: Vec<PendingBarrier>,
    buffered: VecDeque<OfMessage>,
    // Statistics.
    controller_flow_mods: u64,
    controller_barriers: u64,
    proxy_flow_mods: u64,
    probes_injected: u64,
    probes_consumed: u64,
    acks_sent: u64,
    barrier_replies_released: u64,
}

impl SwitchState {
    fn new(technique: Box<dyn AckTechnique>) -> Self {
        SwitchState {
            technique,
            unconfirmed: HashSet::new(),
            confirmed: HashSet::new(),
            failed: HashSet::new(),
            pending_barriers: Vec::new(),
            buffered: VecDeque::new(),
            controller_flow_mods: 0,
            controller_barriers: 0,
            proxy_flow_mods: 0,
            probes_injected: 0,
            probes_consumed: 0,
            acks_sent: 0,
            barrier_replies_released: 0,
        }
    }
}

/// Per-switch statistics exposed to experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProxyStats {
    /// Flow modifications received from the controller and forwarded.
    pub controller_flow_mods: u64,
    /// Barrier requests received from the controller.
    pub controller_barriers: u64,
    /// Flow modifications RUM originated itself (probe rules).
    pub proxy_flow_mods: u64,
    /// Probe packets injected (PacketOut messages).
    pub probes_injected: u64,
    /// Probe packets captured and consumed.
    pub probes_consumed: u64,
    /// Fine-grained acknowledgments sent to the controller.
    pub acks_sent: u64,
    /// Barrier replies released to the controller.
    pub barrier_replies_released: u64,
    /// Modifications currently awaiting confirmation.
    pub unconfirmed: u64,
}

/// The shared state of one RUM deployment.
pub struct RumLayer {
    config: RumConfig,
    controller: NodeId,
    switch_nodes: Vec<NodeId>,
    switches: Vec<SwitchState>,
    next_xid: Xid,
}

impl RumLayer {
    /// Creates the layer for the given controller and monitored switches.
    pub fn new(config: RumConfig, controller: NodeId, switch_nodes: Vec<NodeId>) -> Self {
        assert_eq!(
            config.n_switches(),
            switch_nodes.len(),
            "config must describe exactly the monitored switches"
        );
        let switches = (0..switch_nodes.len())
            .map(|i| SwitchState::new(build_technique(&config, i)))
            .collect();
        RumLayer {
            config,
            controller,
            switch_nodes,
            switches,
            next_xid: PROXY_XID_BASE + 0x0100_0000,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RumConfig {
        &self.config
    }

    /// Statistics for the `i`-th monitored switch.
    pub fn stats(&self, i: usize) -> ProxyStats {
        let s = &self.switches[i];
        ProxyStats {
            controller_flow_mods: s.controller_flow_mods,
            controller_barriers: s.controller_barriers,
            proxy_flow_mods: s.proxy_flow_mods,
            probes_injected: s.probes_injected,
            probes_consumed: s.probes_consumed,
            acks_sent: s.acks_sent,
            barrier_replies_released: s.barrier_replies_released,
            unconfirmed: s.unconfirmed.len() as u64,
        }
    }

    /// The technique name running for switch `i`.
    pub fn technique_name(&self, i: usize) -> &'static str {
        self.switches[i].technique.name()
    }

    fn fresh_xid(&mut self) -> Xid {
        let x = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1);
        x
    }

    fn send_to_switch(&self, i: usize, msg: OfMessage, ctx: &mut Context<'_>) {
        ctx.send_control(self.switch_nodes[i], msg, self.config.control_latency);
    }

    fn send_to_controller(&self, msg: OfMessage, ctx: &mut Context<'_>) {
        ctx.send_control(self.controller, msg, self.config.control_latency);
    }

    // ------------------------------------------------------------------
    // Startup
    // ------------------------------------------------------------------

    /// Called by each per-switch proxy node when the simulation starts.
    pub fn start_switch(&mut self, i: usize, ctx: &mut Context<'_>) {
        // Install the probe-catch rule on every switch when any probing
        // technique is active (general probing needs catch rules on
        // neighbours of the probed switch, so install everywhere).
        if self.config.technique.is_probing() {
            let xid = self.fresh_xid();
            let fm = catch_rule(self.config.probe_plan.catch_tos(i), u64::from(xid));
            self.switches[i].proxy_flow_mods += 1;
            self.send_to_switch(i, OfMessage::FlowMod { xid, body: fm }, ctx);
        }
        let mut out = Vec::new();
        self.switches[i].technique.start(ctx.now(), &mut out);
        self.apply_outputs(i, out, ctx);
    }

    // ------------------------------------------------------------------
    // Controller-side messages
    // ------------------------------------------------------------------

    /// Handles a message the controller sent on switch `i`'s connection.
    pub fn on_controller_msg(&mut self, i: usize, msg: OfMessage, ctx: &mut Context<'_>) {
        if self.config.buffer_across_barriers && !self.switches[i].pending_barriers.is_empty() {
            // Everything after an unconfirmed barrier is held back so a
            // reordering switch cannot let later commands overtake it.
            self.switches[i].buffered.push_back(msg);
            return;
        }
        self.process_controller_msg(i, msg, ctx);
    }

    fn process_controller_msg(&mut self, i: usize, msg: OfMessage, ctx: &mut Context<'_>) {
        match msg {
            OfMessage::FlowMod { xid, ref body } => {
                let id = u64::from(xid);
                self.switches[i].controller_flow_mods += 1;
                self.switches[i].unconfirmed.insert(id);
                self.send_to_switch(i, msg.clone(), ctx);
                let mut out = Vec::new();
                self.switches[i]
                    .technique
                    .on_flow_mod(id, body, ctx.now(), &mut out);
                self.apply_outputs(i, out, ctx);
            }
            OfMessage::BarrierRequest { xid } => {
                self.switches[i].controller_barriers += 1;
                if self.config.reliable_barriers {
                    let required = self.switches[i].unconfirmed.clone();
                    self.switches[i].pending_barriers.push(PendingBarrier {
                        xid,
                        required,
                        switch_replied: false,
                    });
                    // Still forward the barrier so the switch's own ordering
                    // machinery (such as it is) stays engaged.
                    self.send_to_switch(i, OfMessage::BarrierRequest { xid }, ctx);
                    self.try_release_barriers(i, ctx);
                } else {
                    self.send_to_switch(i, OfMessage::BarrierRequest { xid }, ctx);
                }
            }
            other => {
                self.send_to_switch(i, other, ctx);
            }
        }
    }

    // ------------------------------------------------------------------
    // Switch-side messages
    // ------------------------------------------------------------------

    /// Handles a message switch `i` sent towards the controller.
    pub fn on_switch_msg(&mut self, i: usize, msg: OfMessage, ctx: &mut Context<'_>) {
        match msg {
            OfMessage::BarrierReply { xid } => {
                if xid >= PROXY_XID_BASE {
                    let mut out = Vec::new();
                    self.switches[i]
                        .technique
                        .on_switch_barrier_reply(xid, ctx.now(), &mut out);
                    self.apply_outputs(i, out, ctx);
                } else if self.config.reliable_barriers {
                    if let Some(b) = self.switches[i]
                        .pending_barriers
                        .iter_mut()
                        .find(|b| b.xid == xid)
                    {
                        b.switch_replied = true;
                    }
                    self.try_release_barriers(i, ctx);
                } else {
                    self.send_to_controller(OfMessage::BarrierReply { xid }, ctx);
                }
            }
            OfMessage::PacketIn { ref body, .. } => {
                match PacketHeader::from_bytes(&body.data) {
                    Ok(header) if self.config.probe_plan.is_probe_tos(header.nw_tos) => {
                        self.switches[i].probes_consumed += 1;
                        // Probes may belong to any monitored switch's
                        // technique; each technique ignores probes that are
                        // not its own.
                        for s in 0..self.switches.len() {
                            let mut out = Vec::new();
                            self.switches[s]
                                .technique
                                .on_probe_packet(&header, ctx.now(), &mut out);
                            self.apply_outputs(s, out, ctx);
                        }
                    }
                    _ => self.send_to_controller(msg, ctx),
                }
            }
            OfMessage::Error { xid, .. } => {
                if xid >= PROXY_XID_BASE {
                    // One of RUM's own rules failed; nothing sensible to tell
                    // the controller.  The technique will fall back on
                    // timeouts (probes simply never return).
                } else {
                    // A controller modification failed: the rule will never
                    // appear in the data plane, so treat it as resolved for
                    // barrier purposes and pass the error through.
                    let id = u64::from(xid);
                    if self.switches[i].unconfirmed.remove(&id) {
                        self.switches[i].failed.insert(id);
                    }
                    self.send_to_controller(msg, ctx);
                    self.try_release_barriers(i, ctx);
                }
            }
            other => self.send_to_controller(other, ctx),
        }
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// Handles a timer fired on any proxy node.  The token encodes which
    /// switch's technique armed it.
    pub fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        let switch = (token >> 48) as usize;
        let tech_token = token & 0x0000_FFFF_FFFF_FFFF;
        if switch >= self.switches.len() {
            return;
        }
        let mut out = Vec::new();
        self.switches[switch]
            .technique
            .on_timer(tech_token, ctx.now(), &mut out);
        self.apply_outputs(switch, out, ctx);
    }

    // ------------------------------------------------------------------
    // Technique output handling
    // ------------------------------------------------------------------

    fn apply_outputs(&mut self, i: usize, outputs: Vec<TechniqueOutput>, ctx: &mut Context<'_>) {
        for output in outputs {
            match output {
                TechniqueOutput::Confirm(cookie) => self.confirm(i, cookie, ctx),
                TechniqueOutput::ToSwitch(msg) => {
                    if matches!(msg, OfMessage::FlowMod { .. }) {
                        self.switches[i].proxy_flow_mods += 1;
                    }
                    self.send_to_switch(i, msg, ctx);
                }
                TechniqueOutput::InjectVia { switch, msg } => {
                    self.switches[i].probes_injected += 1;
                    self.send_to_switch(switch, msg, ctx);
                }
                TechniqueOutput::SetTimer { delay, token } => {
                    let encoded = ((i as u64) << 48) | token;
                    ctx.set_timer(delay, encoded);
                }
            }
        }
    }

    fn confirm(&mut self, i: usize, cookie: u64, ctx: &mut Context<'_>) {
        let state = &mut self.switches[i];
        if !state.unconfirmed.remove(&cookie) {
            return;
        }
        state.confirmed.insert(cookie);
        if self.config.fine_grained_acks {
            state.acks_sent += 1;
            let ack = OfMessage::rum_ack(cookie as Xid);
            self.send_to_controller(ack, ctx);
        }
        self.try_release_barriers(i, ctx);
    }

    fn try_release_barriers(&mut self, i: usize, ctx: &mut Context<'_>) {
        loop {
            let state = &mut self.switches[i];
            let Some(front) = state.pending_barriers.first() else {
                break;
            };
            let resolved = |id: &u64| state.confirmed.contains(id) || state.failed.contains(id);
            let ready = front.switch_replied && front.required.iter().all(resolved);
            if !ready {
                break;
            }
            let barrier = state.pending_barriers.remove(0);
            state.barrier_replies_released += 1;
            self.send_to_controller(OfMessage::BarrierReply { xid: barrier.xid }, ctx);
            // Release buffered commands until the next barrier becomes
            // pending (or the buffer drains).
            if self.config.buffer_across_barriers {
                while self.switches[i].pending_barriers.is_empty() {
                    let Some(msg) = self.switches[i].buffered.pop_front() else {
                        break;
                    };
                    self.process_controller_msg(i, msg, ctx);
                }
            }
        }
    }
}

fn build_technique(config: &RumConfig, i: usize) -> Box<dyn AckTechnique> {
    let xid_base = PROXY_XID_BASE + (i as u32 + 1) * 0x0001_0000;
    match &config.technique {
        TechniqueConfig::BarrierBaseline => Box::new(BarrierBaseline::new(xid_base)),
        TechniqueConfig::StaticTimeout { delay } => Box::new(StaticTimeout::new(*delay, xid_base)),
        TechniqueConfig::AdaptiveDelay {
            assumed_rate,
            assumed_sync_lag,
        } => Box::new(AdaptiveDelay::new(*assumed_rate, *assumed_sync_lag)),
        TechniqueConfig::SequentialProbing {
            batch_size,
            probe_interval,
        } => Box::new(SequentialProbing::new(
            i,
            *batch_size,
            *probe_interval,
            config.probe_plan.clone(),
            config.port_maps[i].clone(),
            xid_base,
        )),
        TechniqueConfig::GeneralProbing {
            probe_interval,
            max_outstanding,
            fallback_delay,
        } => {
            let mut t = GeneralProbing::new(
                i,
                *probe_interval,
                *max_outstanding,
                *fallback_delay,
                config.probe_plan.clone(),
                config.port_maps[i].clone(),
                xid_base,
            );
            // Every experiment pre-installs a low-priority drop-all rule;
            // seed the table model so probe synthesis sees it.
            t.seed_known_rule(openflow::OfMatch::wildcard_all(), 0, vec![]);
            Box::new(t)
        }
    }
}

/// A per-switch proxy node: the switch's OpenFlow peer on one side, one of
/// the controller's "switches" on the other.
pub struct RumProxy {
    shared: Rc<RefCell<RumLayer>>,
    switch_index: usize,
    controller: NodeId,
    switch_node: NodeId,
    label: String,
}

impl RumProxy {
    /// Creates a proxy front-end for switch `switch_index`.
    pub fn new(
        shared: Rc<RefCell<RumLayer>>,
        switch_index: usize,
        controller: NodeId,
        switch_node: NodeId,
    ) -> Self {
        RumProxy {
            shared,
            switch_index,
            controller,
            switch_node,
            label: format!("rum-proxy-{switch_index}"),
        }
    }

    /// The shared RUM layer (for inspection after a run).
    pub fn layer(&self) -> Rc<RefCell<RumLayer>> {
        Rc::clone(&self.shared)
    }
}

impl Node for RumProxy {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn start(&mut self, ctx: &mut Context<'_>) {
        self.shared.borrow_mut().start_switch(self.switch_index, ctx);
    }

    fn handle(&mut self, event: EventPayload, ctx: &mut Context<'_>) {
        match event {
            EventPayload::Control { from, message } => {
                if from == self.controller {
                    self.shared
                        .borrow_mut()
                        .on_controller_msg(self.switch_index, message, ctx);
                } else if from == self.switch_node {
                    self.shared
                        .borrow_mut()
                        .on_switch_msg(self.switch_index, message, ctx);
                } else {
                    // A message from an unrelated node (e.g. a switch we only
                    // inject probes through): treat it as switch-side traffic
                    // so probe PacketIns are still captured.
                    self.shared
                        .borrow_mut()
                        .on_switch_msg(self.switch_index, message, ctx);
                }
            }
            EventPayload::Timer { token } => {
                self.shared.borrow_mut().on_timer(token, ctx);
            }
            EventPayload::Packet { .. } => {
                // The proxy sits on the control path only.
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Derives per-switch [`SwitchPortMap`]s from the data-plane topology: which
/// local port leads to which other monitored switch, and through which
/// neighbour probes can be injected.
pub fn derive_port_maps(topology: &Topology, switches: &[NodeId]) -> Vec<SwitchPortMap> {
    let index_of = |node: NodeId| switches.iter().position(|&s| s == node);
    switches
        .iter()
        .map(|&sw| {
            let mut map = SwitchPortMap {
                switch_node: Some(sw),
                ..Default::default()
            };
            for (port, peer) in topology.neighbors(sw) {
                if let Some(peer_idx) = index_of(peer) {
                    map.port_to_switch.insert(port, peer_idx);
                    if map.inject_via.is_none() {
                        // The port on the neighbour that points back at us.
                        if let Some(back_port) = topology.port_towards(peer, sw) {
                            map.inject_via = Some((peer_idx, back_port));
                        }
                    }
                }
            }
            map
        })
        .collect()
}

/// Deploys a RUM layer into a simulation: creates one proxy node per switch
/// and returns their node ids (index-aligned with `switches`) plus a handle
/// to the shared layer for post-run inspection.
///
/// After calling this, point the controller's connections at the returned
/// proxy ids and each switch's controller connection at its proxy.
pub fn deploy(
    sim: &mut simnet::Simulator,
    mut config: RumConfig,
    controller: NodeId,
    switches: &[NodeId],
) -> (Vec<NodeId>, Rc<RefCell<RumLayer>>) {
    // Fill in any port maps the caller left empty.
    let derived = derive_port_maps(sim.topology(), switches);
    for (slot, derived_map) in config.port_maps.iter_mut().zip(derived) {
        if slot.switch_node.is_none() {
            *slot = derived_map;
        }
    }
    let layer = Rc::new(RefCell::new(RumLayer::new(
        config,
        controller,
        switches.to_vec(),
    )));
    let proxies = switches
        .iter()
        .enumerate()
        .map(|(i, &sw)| sim.add_node(RumProxy::new(Rc::clone(&layer), i, controller, sw)))
        .collect();
    (proxies, layer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use controller::{AckMode, Controller};
    use controller::scenarios::BulkUpdateScenario;
    use ofswitch::{OpenFlowSwitch, SwitchModel};
    use simnet::{SimTime, Simulator};

    /// Runs the bulk-update scenario through RUM with the given technique and
    /// returns (simulator, controller id, rum layer).
    fn run_bulk(
        technique: TechniqueConfig,
        n_rules: usize,
        window: usize,
        model: SwitchModel,
        until: SimTime,
    ) -> (Simulator, NodeId, Rc<RefCell<RumLayer>>) {
        let mut sim = Simulator::new(11);
        let scenario = BulkUpdateScenario {
            n_rules,
            packets_per_sec: 0,
            model,
            ..Default::default()
        };
        let net = scenario.build(&mut sim);
        let ctrl = Controller::new(
            "ctrl",
            net.plan.clone(),
            AckMode::RumAcks,
            window,
            SimTime::from_millis(10),
        );
        let ctrl_id = sim.add_node(ctrl);

        // RUM monitors the whole chain A - B - C so probes can be injected
        // via A and caught at C.  The controller only talks to B (plan
        // target 0 = B), so its single connection points at B's proxy.
        let switches = [net.sw_a, net.sw_b, net.sw_c];
        let config = RumConfig::new(technique, switches.len());
        let (proxies, layer) = deploy(&mut sim, config, ctrl_id, &switches);
        sim.node_mut::<Controller>(ctrl_id)
            .unwrap()
            .set_connections(vec![proxies[1]]);
        for (idx, sw) in switches.iter().enumerate() {
            sim.node_mut::<OpenFlowSwitch>(*sw)
                .unwrap()
                .connect_controller(proxies[idx]);
        }
        sim.run_until(until);
        (sim, ctrl_id, layer)
    }

    fn assert_never_early(sim: &Simulator, expected: usize) {
        let delays = sim.trace().activation_delays();
        assert_eq!(delays.len(), expected);
        let negative: Vec<_> = delays.iter().filter(|d| d.delay_millis() < 0.0).collect();
        assert!(
            negative.is_empty(),
            "no acknowledgment may precede data-plane activation, got {negative:?}"
        );
    }

    #[test]
    fn baseline_on_buggy_switch_acks_too_early() {
        let (sim, ctrl_id, _) = run_bulk(
            TechniqueConfig::BarrierBaseline,
            30,
            30,
            SwitchModel::hp5406zl(),
            SimTime::from_secs(5),
        );
        let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
        assert!(ctrl.is_complete());
        let delays = sim.trace().activation_delays();
        let negative = delays.iter().filter(|d| d.delay_millis() < 0.0).count();
        assert!(
            negative > 20,
            "the baseline must reproduce the premature acknowledgments ({negative}/30)"
        );
    }

    #[test]
    fn static_timeout_is_never_early_on_buggy_switch() {
        let (sim, ctrl_id, _) = run_bulk(
            TechniqueConfig::StaticTimeout {
                delay: SimTime::from_millis(300),
            },
            30,
            30,
            SwitchModel::hp5406zl(),
            SimTime::from_secs(10),
        );
        let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
        assert!(ctrl.is_complete());
        assert_never_early(&sim, 30);
    }

    #[test]
    fn sequential_probing_is_never_early_and_uses_probes() {
        let (sim, ctrl_id, layer) = run_bulk(
            TechniqueConfig::default_sequential(),
            40,
            40,
            SwitchModel::hp5406zl(),
            SimTime::from_secs(20),
        );
        let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
        assert!(
            ctrl.is_complete(),
            "confirmed {} of 40",
            ctrl.confirmed_count()
        );
        assert_never_early(&sim, 40);
        let layer = layer.borrow();
        let stats = layer.stats(1);
        assert!(stats.proxy_flow_mods > 0, "probe rule must be installed");
        assert!(stats.probes_injected > 0);
        // Probes are caught at a neighbouring switch, so the consumption is
        // attributed to whichever proxy received the PacketIn.
        let consumed: u64 = (0..3).map(|i| layer.stats(i).probes_consumed).sum();
        assert!(consumed > 0);
        assert!(stats.acks_sent >= 40);
    }

    #[test]
    fn general_probing_is_never_early_even_on_reordering_switch() {
        let (sim, ctrl_id, layer) = run_bulk(
            TechniqueConfig::default_general(),
            40,
            40,
            SwitchModel::reordering(),
            SimTime::from_secs(20),
        );
        let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
        assert!(
            ctrl.is_complete(),
            "confirmed {} of 40",
            ctrl.confirmed_count()
        );
        let delays = sim.trace().activation_delays();
        // Only the controller's own rules have confirmations (probe rules are
        // proxy-internal); none may be negative.
        assert!(delays.iter().all(|d| d.delay_millis() >= -1e-9));
        let layer = layer.borrow();
        let stats = layer.stats(1);
        assert!(stats.probes_injected > 0);
        let consumed: u64 = (0..3).map(|i| layer.stats(i).probes_consumed).sum();
        assert!(consumed > 0);
    }

    #[test]
    fn general_probing_acks_are_close_to_data_plane_activation() {
        let (sim, ctrl_id, _) = run_bulk(
            TechniqueConfig::default_general(),
            30,
            30,
            SwitchModel::hp5406zl(),
            SimTime::from_secs(20),
        );
        let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
        assert!(ctrl.is_complete());
        let delays = sim.trace().activation_delays();
        let controller_rules: Vec<_> = delays
            .iter()
            .filter(|d| d.cookie >= 1_000 && d.cookie < 1_000 + 30)
            .collect();
        assert_eq!(controller_rules.len(), 30);
        // Paper: within 30 ms of the data-plane modification for 90% of
        // modifications.  Allow a little slack for the simulated timing.
        let close = controller_rules
            .iter()
            .filter(|d| d.delay_millis() >= 0.0 && d.delay_millis() <= 60.0)
            .count();
        assert!(
            close * 10 >= controller_rules.len() * 9,
            "only {close}/30 acks were within 60 ms"
        );
    }

    #[test]
    fn reliable_barriers_wait_for_data_plane() {
        // Controller uses plain barriers (transparent mode); RUM makes them
        // honest via sequential probing.
        let mut sim = Simulator::new(5);
        let scenario = BulkUpdateScenario {
            n_rules: 20,
            packets_per_sec: 0,
            model: SwitchModel::hp5406zl(),
            ..Default::default()
        };
        let net = scenario.build(&mut sim);
        let ctrl = Controller::new(
            "ctrl",
            net.plan.clone(),
            AckMode::Barriers { batch: 10 },
            20,
            SimTime::from_millis(10),
        );
        let ctrl_id = sim.add_node(ctrl);
        let switches = [net.sw_a, net.sw_b, net.sw_c];
        let mut config = RumConfig::new(TechniqueConfig::default_sequential(), switches.len());
        config.fine_grained_acks = false;
        let (proxies, _layer) = deploy(&mut sim, config, ctrl_id, &switches);
        sim.node_mut::<Controller>(ctrl_id)
            .unwrap()
            .set_connections(vec![proxies[1]]);
        for (idx, sw) in switches.iter().enumerate() {
            sim.node_mut::<OpenFlowSwitch>(*sw)
                .unwrap()
                .connect_controller(proxies[idx]);
        }
        sim.run_until(SimTime::from_secs(20));
        let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
        assert!(ctrl.is_complete());
        // Confirmation through RUM-held barriers must never precede the data
        // plane.
        let delays = sim.trace().activation_delays();
        let controller_rules: Vec<_> = delays
            .iter()
            .filter(|d| d.cookie >= 1_000 && d.cookie < 1_020)
            .collect();
        assert_eq!(controller_rules.len(), 20);
        assert!(controller_rules.iter().all(|d| d.delay_millis() >= 0.0));
    }

    #[test]
    fn derive_port_maps_from_topology() {
        let mut sim = Simulator::new(1);
        let scenario = BulkUpdateScenario {
            n_rules: 1,
            packets_per_sec: 0,
            ..Default::default()
        };
        let net = scenario.build(&mut sim);
        let switches = [net.sw_a, net.sw_b, net.sw_c];
        let maps = derive_port_maps(sim.topology(), &switches);
        assert_eq!(maps.len(), 3);
        // B (index 1) reaches A through port 1 and C through port 2.
        assert_eq!(maps[1].next_hop(1), Some(0));
        assert_eq!(maps[1].next_hop(2), Some(2));
        // B's probes can be injected via A (which reaches B through port 2).
        assert_eq!(maps[1].inject_via, Some((0, 2)));
        // A has only one monitored neighbour: B.
        assert_eq!(maps[0].next_hop(2), Some(1));
    }
}
