//! The sans-IO RUM engine: one deployment-agnostic acknowledgment core.
//!
//! [`RumEngine`] is a pure state machine.  It performs no I/O, owns no
//! sockets, simulator handles or clocks; a *driver* feeds it typed [`Input`]s
//! (decoded OpenFlow messages from either side, timer expiries, clock ticks)
//! together with the current time, and executes the typed [`Effect`]s it
//! returns (messages to send, timers to arm, confirmations to observe).
//!
//! Two drivers ship with the workspace and run the **same** engine:
//!
//! * [`crate::proxy::RumProxy`] — a node for the deterministic discrete-event
//!   simulator (`simnet`); all paper experiments run this way.
//! * `rum-tcp` — a real TCP proxy chain on std sockets, mirroring the paper's
//!   POX prototype.
//!
//! Time is expressed as [`core::time::Duration`] since an arbitrary driver
//! epoch (simulation start, proxy start-up, ...).  The engine only compares
//! and adds times, so any monotonic origin works.
//!
//! ```
//! use rum::{Effect, Input, RumBuilder, TechniqueConfig};
//! use std::time::Duration;
//!
//! let mut engine = RumBuilder::new(1)
//!     .technique(TechniqueConfig::BarrierBaseline)
//!     .build();
//! let effects = engine.start(Duration::ZERO);
//! assert!(effects.is_empty()); // the baseline installs nothing up front
//! ```

use crate::config::{RumConfig, TechniqueConfig};
use crate::general::GeneralProbing;
use crate::probe::catch_rule;
use crate::sequential::SequentialProbing;
use crate::technique::{AckTechnique, TechniqueOutput};
use crate::technique::{AdaptiveDelay, BarrierBaseline, StaticTimeout};
use openflow::messages::FlowMod;
use openflow::{OfMessage, PacketHeader, Xid};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;
use telemetry::{AtomicHistogram, Counter, Gauge, Registry};

/// Transaction ids at or above this value belong to RUM, not the controller.
///
/// Controller messages carrying such an xid are rejected (see
/// [`ProxyStats::rejected_xids`]) instead of being silently misattributed to
/// RUM's own machinery.
pub const PROXY_XID_BASE: Xid = 0x8000_0000;

/// The xid region for probe-catch rules: `CATCH_XID_BASE | (switch << 8) |
/// generation`.  Above every per-switch technique xid stream (which start at
/// `PROXY_XID_BASE + (index + 1) * 0x0001_0000`), and deliberately shard
/// invariant — see `RumEngine::install_catch_rule`.
const CATCH_XID_BASE: Xid = 0xF000_0000;

/// Identifies one monitored switch within a RUM deployment.
///
/// Deployments are free to map these to whatever they like (simulator node
/// ids, TCP connections, datapath ids); inside the engine a `SwitchId` is
/// just a dense index `0..n_switches`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SwitchId(usize);

impl SwitchId {
    /// The `index`-th monitored switch.
    pub const fn new(index: usize) -> Self {
        SwitchId(index)
    }

    /// The dense index within the deployment.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sw{}", self.0)
    }
}

/// An opaque handle to a timer the engine asked its driver to arm.
///
/// Drivers must hand the token back unmodified in [`Input::TimerFired`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerToken(u64);

impl TimerToken {
    /// The raw value, for drivers that need to serialise tokens (e.g. into a
    /// simulator timer slot).
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs a token from [`TimerToken::raw`].
    pub const fn from_raw(raw: u64) -> Self {
        TimerToken(raw)
    }
}

/// Everything a driver can feed into the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum Input {
    /// The controller sent `message` on the connection impersonating
    /// `switch`.
    FromController {
        /// The switch whose connection carried the message.
        switch: SwitchId,
        /// The decoded message.
        message: OfMessage,
    },
    /// Switch `switch` sent `message` towards the controller.
    FromSwitch {
        /// The switch that sent the message.
        switch: SwitchId,
        /// The decoded message.
        message: OfMessage,
    },
    /// A timer previously requested via [`Effect::ArmTimer`] expired.
    TimerFired {
        /// The token from the arming effect.
        token: TimerToken,
    },
    /// Switch `switch` re-established its control channel after a restart
    /// (table wiped, connection dropped).  The engine re-installs its own
    /// rules (probe-catch), re-issues every unconfirmed controller
    /// modification so in-flight update plans converge instead of timing
    /// out, and lets the technique re-arm its confirmation machinery.
    SwitchReconnected {
        /// The switch that reattached.
        switch: SwitchId,
    },
    /// The clock advanced with nothing else to report.  Drivers without
    /// fine-grained timer callbacks may tick periodically; the engine uses
    /// ticks to re-examine deferred work (e.g. barrier releases).
    Tick,
}

/// Everything the engine can ask a driver to do.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// Send `message` to the controller on the connection impersonating
    /// `via`.
    ToController {
        /// The switch identity whose connection carries the message.
        via: SwitchId,
        /// The message to send.
        message: OfMessage,
    },
    /// Send `message` to switch `switch`.
    ToSwitch {
        /// The destination switch.
        switch: SwitchId,
        /// The message to send.
        message: OfMessage,
    },
    /// Send a probe-carrying message (a `PacketOut`) to neighbour `switch`
    /// so the probe enters the data plane there.
    InjectVia {
        /// The neighbouring switch used as injection point.
        switch: SwitchId,
        /// The message to send (on `switch`'s connection).
        message: OfMessage,
    },
    /// Arm a timer: feed [`Input::TimerFired`] with `token` back after
    /// `delay`.
    ArmTimer {
        /// How long to wait.
        delay: Duration,
        /// Token identifying the timer.
        token: TimerToken,
    },
    /// The modification with this cookie on `switch` is now confirmed active
    /// in the data plane.  Purely observational — the matching
    /// acknowledgment messages (fine-grained ack, barrier release) are
    /// emitted as separate [`Effect::ToController`] effects.
    Confirmed {
        /// The switch the rule was installed on.
        switch: SwitchId,
        /// The confirmed modification's cookie.
        cookie: u64,
    },
}

/// Per-switch statistics exposed by the engine — the unified report surface
/// for every deployment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProxyStats {
    /// Flow modifications received from the controller and forwarded.
    pub controller_flow_mods: u64,
    /// Barrier requests received from the controller.
    pub controller_barriers: u64,
    /// Flow modifications RUM originated itself (probe rules).
    pub proxy_flow_mods: u64,
    /// Probe packets injected (PacketOut messages).
    pub probes_injected: u64,
    /// Probe packets captured and consumed.
    pub probes_consumed: u64,
    /// Fine-grained acknowledgments sent to the controller.
    pub acks_sent: u64,
    /// Barrier replies released to the controller.
    pub barrier_replies_released: u64,
    /// Modifications currently awaiting confirmation.
    pub unconfirmed: u64,
    /// Controller messages rejected because their xid collided with RUM's
    /// reserved range (≥ [`PROXY_XID_BASE`]).
    pub rejected_xids: u64,
    /// Switch reconnects the engine re-converged after
    /// ([`Input::SwitchReconnected`]).
    pub reconnects: u64,
    /// Unconfirmed controller modifications re-issued on reconnects.
    pub reissued_flow_mods: u64,
}

impl std::ops::AddAssign for ProxyStats {
    fn add_assign(&mut self, rhs: ProxyStats) {
        self.controller_flow_mods += rhs.controller_flow_mods;
        self.controller_barriers += rhs.controller_barriers;
        self.proxy_flow_mods += rhs.proxy_flow_mods;
        self.probes_injected += rhs.probes_injected;
        self.probes_consumed += rhs.probes_consumed;
        self.acks_sent += rhs.acks_sent;
        self.barrier_replies_released += rhs.barrier_replies_released;
        self.unconfirmed += rhs.unconfirmed;
        self.rejected_xids += rhs.rejected_xids;
        self.reconnects += rhs.reconnects;
        self.reissued_flow_mods += rhs.reissued_flow_mods;
    }
}

/// The telemetry handles behind one switch's [`ProxyStats`].
///
/// Every statistic the engine reports lives in the telemetry [`Registry`]
/// under `rum.sw{i}.*` — [`RumEngine::stats`] *derives* `ProxyStats` from
/// these handles, so a live scrape of the registry and a post-run stats
/// report can never disagree, regardless of which driver runs the engine.
struct SwitchMetrics {
    controller_flow_mods: Arc<Counter>,
    controller_barriers: Arc<Counter>,
    proxy_flow_mods: Arc<Counter>,
    probes_injected: Arc<Counter>,
    probes_consumed: Arc<Counter>,
    acks_sent: Arc<Counter>,
    barrier_replies_released: Arc<Counter>,
    rejected_xids: Arc<Counter>,
    reconnects: Arc<Counter>,
    reissued_flow_mods: Arc<Counter>,
    /// Modifications currently awaiting confirmation (mirrors the
    /// `unconfirmed` map for live observers).
    unconfirmed: Arc<Gauge>,
    /// Received-to-confirmed latency per modification, in microseconds.
    confirm_latency_us: Arc<AtomicHistogram>,
}

impl SwitchMetrics {
    fn new(registry: &Registry, switch: SwitchId) -> Self {
        let name = |field: &str| format!("rum.{switch}.{field}");
        SwitchMetrics {
            controller_flow_mods: registry.counter(&name("controller_flow_mods")),
            controller_barriers: registry.counter(&name("controller_barriers")),
            proxy_flow_mods: registry.counter(&name("proxy_flow_mods")),
            probes_injected: registry.counter(&name("probes_injected")),
            probes_consumed: registry.counter(&name("probes_consumed")),
            acks_sent: registry.counter(&name("acks_sent")),
            barrier_replies_released: registry.counter(&name("barrier_replies_released")),
            rejected_xids: registry.counter(&name("rejected_xids")),
            reconnects: registry.counter(&name("reconnects")),
            reissued_flow_mods: registry.counter(&name("reissued_flow_mods")),
            unconfirmed: registry.gauge(&name("unconfirmed")),
            confirm_latency_us: registry.histogram(&name("confirm_latency_us")),
        }
    }

    /// Assembles the stats report from the registry counters — the single
    /// place `ProxyStats` is put together for every driver.
    fn to_stats(&self, unconfirmed: u64) -> ProxyStats {
        ProxyStats {
            controller_flow_mods: self.controller_flow_mods.get(),
            controller_barriers: self.controller_barriers.get(),
            proxy_flow_mods: self.proxy_flow_mods.get(),
            probes_injected: self.probes_injected.get(),
            probes_consumed: self.probes_consumed.get(),
            acks_sent: self.acks_sent.get(),
            barrier_replies_released: self.barrier_replies_released.get(),
            unconfirmed,
            rejected_xids: self.rejected_xids.get(),
            reconnects: self.reconnects.get(),
            reissued_flow_mods: self.reissued_flow_mods.get(),
        }
    }
}

/// One confirmation the engine emitted, with the time it happened — the
/// ground-truth accounting hook: an experiment joins these against the
/// switch behaviour's data-plane timeline (`ofswitch::GroundTruth`) to
/// classify each acknowledgment as true or false.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfirmRecord {
    /// The switch the rule was confirmed on.
    pub switch: SwitchId,
    /// The confirmed modification's cookie.
    pub cookie: u64,
    /// When the engine emitted the confirmation (driver epoch).
    pub at: Duration,
}

/// A controller barrier whose reply is being withheld.
///
/// Instead of a cloned set of required cookies the barrier carries a
/// *count*: it was created at event sequence `created_seq`, so it waits for
/// exactly the modifications whose insertion sequence is below that — a
/// cookie resolving decrements every younger barrier.  This keeps barrier
/// creation O(1) where it used to clone the whole `unconfirmed` set.
#[derive(Debug)]
struct PendingBarrier {
    xid: Xid,
    /// Unresolved modifications this barrier still waits for.
    remaining: usize,
    /// Event sequence at creation; covers cookies inserted before it.
    created_seq: u64,
    switch_replied: bool,
}

/// One unconfirmed controller modification: its insertion sequence (for
/// barrier covers), when it arrived (for the confirm-latency histogram),
/// plus the flow-mod body, retained so a switch restart can be healed by
/// re-issuing exactly what the controller asked for.
struct UnconfirmedMod {
    seq: u64,
    received_at: Duration,
    flow_mod: FlowMod,
}

/// Per-monitored-switch engine state.
///
/// Memory stays bounded by the amount of *outstanding* work: resolved
/// cookies decrement the pending barriers' counters instead of accumulating
/// in ever-growing "confirmed" sets, and a confirmation drops the retained
/// flow-mod body, so a long-running deployment (the TCP proxy) does not leak
/// per-modification state.
struct SwitchState {
    technique: Box<dyn AckTechnique>,
    /// Unconfirmed modification cookies → insertion sequence + retained body.
    unconfirmed: HashMap<u64, UnconfirmedMod>,
    /// Per-switch counter ordering unconfirmed insertions and barrier
    /// creations against each other.
    next_event_seq: u64,
    /// How many catch rules were installed on this switch so far (one at
    /// start, one per reconnect) — makes catch-rule xids a pure function of
    /// (switch, generation) so sharded and unsharded engines emit identical
    /// bytes.
    catch_generation: u64,
    pending_barriers: VecDeque<PendingBarrier>,
    buffered: VecDeque<OfMessage>,
    metrics: SwitchMetrics,
}

impl SwitchState {
    fn new(technique: Box<dyn AckTechnique>, metrics: SwitchMetrics) -> Self {
        SwitchState {
            technique,
            unconfirmed: HashMap::new(),
            next_event_seq: 0,
            catch_generation: 0,
            pending_barriers: VecDeque::new(),
            buffered: VecDeque::new(),
            metrics,
        }
    }

    /// Mirrors the unconfirmed-map size into the live gauge.
    fn sync_unconfirmed_gauge(&self) {
        self.metrics.unconfirmed.set(self.unconfirmed.len() as i64);
    }

    /// A cookie inserted at `inserted_seq` is resolved (confirmed or
    /// failed): every barrier created after it stops waiting for it.
    fn resolve_cookie(&mut self, inserted_seq: u64) {
        for b in &mut self.pending_barriers {
            if b.created_seq > inserted_seq {
                b.remaining -= 1;
            }
        }
    }
}

/// The deployment-agnostic RUM core: techniques, reliable barriers,
/// fine-grained acks and probe bookkeeping behind a pure
/// input → effects interface.
///
/// Construct one through [`crate::RumBuilder`].
pub struct RumEngine {
    config: RumConfig,
    switches: Vec<SwitchState>,
    /// The telemetry registry every statistic lives in — the one configured
    /// through [`crate::RumBuilder::metrics`], or a private registry so the
    /// stats surface works identically with telemetry off.
    registry: Arc<Registry>,
    started: bool,
    confirm_log: Vec<ConfirmRecord>,
    /// Reusable buffer for technique outputs, so the per-message hot path
    /// does not allocate.  Taken with `mem::take` around each technique
    /// call; re-entrant calls (buffered-command replay during a barrier
    /// release) fall back to a fresh vector.
    tech_out: Vec<TechniqueOutput>,
}

impl RumEngine {
    /// Creates an engine from a finished configuration.  Prefer
    /// [`crate::RumBuilder`].
    ///
    /// # Panics
    ///
    /// Sequential probing requires every switch's
    /// [`crate::SwitchPortMap`] to name at least one monitored neighbour;
    /// constructing an engine without one panics here (the simulator
    /// [`crate::deploy`] derives the maps from its topology, other
    /// deployments must set them via [`crate::RumBuilder::port_map`]).
    pub fn new(config: RumConfig) -> Self {
        let registry = config
            .metrics
            .clone()
            .unwrap_or_else(|| Arc::new(Registry::new()));
        let switches = (0..config.n_switches())
            .map(|i| {
                let switch = SwitchId::new(i);
                SwitchState::new(
                    build_technique(&config, switch),
                    SwitchMetrics::new(&registry, switch),
                )
            })
            .collect();
        RumEngine {
            config,
            switches,
            registry,
            started: false,
            confirm_log: Vec::new(),
            tech_out: Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RumConfig {
        &self.config
    }

    /// Number of monitored switches.
    pub fn n_switches(&self) -> usize {
        self.switches.len()
    }

    /// All switch ids, in order.
    pub fn switch_ids(&self) -> impl Iterator<Item = SwitchId> {
        (0..self.switches.len()).map(SwitchId::new)
    }

    /// Statistics for one monitored switch, derived from the telemetry
    /// registry (see [`RumEngine::metrics`]).
    pub fn stats(&self, switch: SwitchId) -> ProxyStats {
        let s = &self.switches[switch.index()];
        s.metrics.to_stats(s.unconfirmed.len() as u64)
    }

    /// Total statistics summed over all monitored switches — the one
    /// assembly point every driver reports through.
    pub fn total_stats(&self) -> ProxyStats {
        let mut total = ProxyStats::default();
        for switch in 0..self.switches.len() {
            total += self.stats(SwitchId::new(switch));
        }
        total
    }

    /// The telemetry registry the engine's statistics live in: the one
    /// passed to [`crate::RumBuilder::metrics`], or a private registry
    /// created at construction.  Serve it with `telemetry::serve` to watch
    /// a running deployment.
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The technique name running for `switch`.
    pub fn technique_name(&self, switch: SwitchId) -> &'static str {
        self.switches[switch.index()].technique.name()
    }

    /// Every confirmation the engine has emitted, in order.  Empty when
    /// recording is disabled ([`crate::RumBuilder::record_confirmations`]).
    pub fn confirmed_order(&self) -> Vec<(SwitchId, u64)> {
        self.confirm_log
            .iter()
            .map(|r| (r.switch, r.cookie))
            .collect()
    }

    /// Every confirmation with its emission time — the ground-truth
    /// accounting hook (see [`ConfirmRecord`]).
    pub fn confirmations(&self) -> &[ConfirmRecord] {
        &self.confirm_log
    }

    /// Starts the engine: installs probe-catch rules (for probing
    /// techniques) and lets every technique arm its initial timers.
    /// Idempotent — a second call returns no effects.
    pub fn start(&mut self, now: Duration) -> Vec<Effect> {
        let mut effects = Vec::new();
        if self.started {
            return effects;
        }
        self.started = true;
        for i in 0..self.switches.len() {
            // A sharded instance acts only for the switches it owns; its
            // peers install the catch rules of theirs.
            if !self.config.owns_index(i) {
                continue;
            }
            let switch = SwitchId::new(i);
            // Install the probe-catch rule on every switch when any probing
            // technique is active (general probing needs catch rules on
            // neighbours of the probed switch, so install everywhere).
            if self.config.technique.is_probing() {
                self.install_catch_rule(switch, &mut effects);
            }
            let mut out = std::mem::take(&mut self.tech_out);
            self.switches[i].technique.start(now, &mut out);
            self.apply_outputs(switch, &mut out, now, &mut effects);
            self.tech_out = out;
        }
        effects
    }

    /// Feeds one input into the engine and returns the effects the driver
    /// must execute, in order.  Allocates a fresh effects vector per call;
    /// hot-path drivers should prefer [`RumEngine::handle_into`].
    pub fn handle(&mut self, now: Duration, input: Input) -> Vec<Effect> {
        let mut effects = Vec::new();
        self.handle_into(now, input, &mut effects);
        effects
    }

    /// Feeds one input into the engine, *appending* the effects the driver
    /// must execute (in order) to a caller-owned buffer.
    ///
    /// The buffer is not cleared: a driver drains several inputs into one
    /// buffer, executes everything in a single batch (one socket write per
    /// destination), then clears and reuses the buffer — no per-input
    /// allocation.
    pub fn handle_into(&mut self, now: Duration, input: Input, effects: &mut Vec<Effect>) {
        match input {
            Input::FromController { switch, message } => {
                self.on_controller_msg(switch, message, now, effects);
            }
            Input::FromSwitch { switch, message } => {
                self.on_switch_msg(switch, message, now, effects);
            }
            Input::TimerFired { token } => {
                self.on_timer(token, now, effects);
            }
            Input::SwitchReconnected { switch } => {
                self.on_switch_reconnected(switch, now, effects);
            }
            Input::Tick => {
                // Nothing is time-deferred outside timers today; re-examine
                // barrier releases so drivers may tick instead of tracking
                // fine-grained timers for liveness.
                for i in 0..self.switches.len() {
                    self.try_release_barriers(SwitchId::new(i), now, effects);
                }
            }
        }
    }

    /// Feeds a batch of inputs sharing one timestamp, appending all effects
    /// to `effects` in input order — the multi-input drain used after one
    /// socket read decodes several messages.
    pub fn drain_into(
        &mut self,
        now: Duration,
        inputs: impl IntoIterator<Item = Input>,
        effects: &mut Vec<Effect>,
    ) {
        for input in inputs {
            self.handle_into(now, input, effects);
        }
    }

    /// Installs the probe-catch rule on `switch`.  The xid (and thus the
    /// rule's cookie, hashed by fault plans) is a pure function of the
    /// switch and its catch generation — not of a shared counter — so a
    /// sharded deployment emits byte-identical catch rules to the unsharded
    /// oracle regardless of which shard owns the switch.
    fn install_catch_rule(&mut self, switch: SwitchId, effects: &mut Vec<Effect>) {
        let i = switch.index();
        let generation = self.switches[i].catch_generation;
        self.switches[i].catch_generation += 1;
        let xid = CATCH_XID_BASE | ((i as Xid) << 8) | (generation as Xid & 0xFF);
        let fm = catch_rule(self.config.probe_plan.catch_tos(switch), u64::from(xid));
        self.switches[i].metrics.proxy_flow_mods.inc();
        effects.push(Effect::ToSwitch {
            switch,
            message: OfMessage::FlowMod { xid, body: fm },
        });
    }

    // ------------------------------------------------------------------
    // Controller-side messages
    // ------------------------------------------------------------------

    fn on_controller_msg(
        &mut self,
        switch: SwitchId,
        msg: OfMessage,
        now: Duration,
        effects: &mut Vec<Effect>,
    ) {
        // xids at or above PROXY_XID_BASE are reserved for RUM's own
        // messages; a controller using them would have its replies swallowed
        // or misattributed.  Reject loudly instead.
        if msg.xid() >= PROXY_XID_BASE {
            self.switches[switch.index()].metrics.rejected_xids.inc();
            effects.push(Effect::ToController {
                via: switch,
                message: OfMessage::Error {
                    xid: msg.xid(),
                    body: openflow::messages::ErrorMsg {
                        err_type: openflow::constants::error_type::BAD_REQUEST,
                        code: 0,
                        data: b"RUM: xid >= 0x80000000 is reserved by the proxy".to_vec(),
                    },
                },
            });
            return;
        }
        if self.config.buffer_across_barriers
            && !self.switches[switch.index()].pending_barriers.is_empty()
            && !is_liveness_msg(&msg)
        {
            // Ordered commands after an unconfirmed barrier are held back so
            // a reordering switch cannot let later commands overtake it.
            // Liveness traffic (hello, echo) has no ordering relationship
            // with rule modifications and passes straight through — holding
            // an echo behind a slow barrier would trip keepalive timers on
            // real switches.
            self.switches[switch.index()].buffered.push_back(msg);
            return;
        }
        self.process_controller_msg(switch, msg, now, effects);
    }

    fn process_controller_msg(
        &mut self,
        switch: SwitchId,
        msg: OfMessage,
        now: Duration,
        effects: &mut Vec<Effect>,
    ) {
        let i = switch.index();
        match msg {
            OfMessage::FlowMod { xid, ref body } => {
                let id = u64::from(xid);
                let state = &mut self.switches[i];
                state.metrics.controller_flow_mods.inc();
                // Record the insertion sequence so later barriers know they
                // cover this modification (fresh cookies only: a re-sent
                // unconfirmed cookie keeps its original position), and
                // retain the body so a switch restart can re-issue it.
                let seq = state.next_event_seq;
                if let std::collections::hash_map::Entry::Vacant(e) = state.unconfirmed.entry(id) {
                    e.insert(UnconfirmedMod {
                        seq,
                        received_at: now,
                        flow_mod: body.clone(),
                    });
                    state.next_event_seq += 1;
                    state.sync_unconfirmed_gauge();
                }
                // Run the technique on the borrowed body first, then move
                // the message into the forwarding effect — no clone.
                let mut out = std::mem::take(&mut self.tech_out);
                self.switches[i]
                    .technique
                    .on_flow_mod(id, body, now, &mut out);
                effects.push(Effect::ToSwitch {
                    switch,
                    message: msg,
                });
                self.apply_outputs(switch, &mut out, now, effects);
                self.tech_out = out;
            }
            OfMessage::BarrierRequest { xid } => {
                self.switches[i].metrics.controller_barriers.inc();
                if self.config.reliable_barriers {
                    let state = &mut self.switches[i];
                    let created_seq = state.next_event_seq;
                    state.next_event_seq += 1;
                    state.pending_barriers.push_back(PendingBarrier {
                        xid,
                        remaining: state.unconfirmed.len(),
                        created_seq,
                        switch_replied: false,
                    });
                    // Still forward the barrier so the switch's own ordering
                    // machinery (such as it is) stays engaged.
                    effects.push(Effect::ToSwitch {
                        switch,
                        message: OfMessage::BarrierRequest { xid },
                    });
                    self.try_release_barriers(switch, now, effects);
                } else {
                    effects.push(Effect::ToSwitch {
                        switch,
                        message: OfMessage::BarrierRequest { xid },
                    });
                }
            }
            other => {
                effects.push(Effect::ToSwitch {
                    switch,
                    message: other,
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // Switch-side messages
    // ------------------------------------------------------------------

    fn on_switch_msg(
        &mut self,
        switch: SwitchId,
        msg: OfMessage,
        now: Duration,
        effects: &mut Vec<Effect>,
    ) {
        let i = switch.index();
        match msg {
            OfMessage::BarrierReply { xid } => {
                if xid >= PROXY_XID_BASE {
                    let mut out = std::mem::take(&mut self.tech_out);
                    self.switches[i]
                        .technique
                        .on_switch_barrier_reply(xid, now, &mut out);
                    self.apply_outputs(switch, &mut out, now, effects);
                    self.tech_out = out;
                } else if self.config.reliable_barriers {
                    if let Some(b) = self.switches[i]
                        .pending_barriers
                        .iter_mut()
                        .find(|b| b.xid == xid)
                    {
                        b.switch_replied = true;
                    }
                    self.try_release_barriers(switch, now, effects);
                } else {
                    effects.push(Effect::ToController {
                        via: switch,
                        message: OfMessage::BarrierReply { xid },
                    });
                }
            }
            OfMessage::PacketIn { ref body, .. } => {
                match PacketHeader::from_bytes(&body.data) {
                    Ok(header) if self.config.probe_plan.is_probe_tos(header.nw_tos) => {
                        // Only a punt performed by a rule's explicit
                        // to-controller action can vouch for the data plane:
                        // a probe-marked packet punted for a *table miss*
                        // (e.g. a restarted switch whose wiped table no
                        // longer holds even the drop-all rule) proves
                        // nothing and must not be mistaken for a probe
                        // return.  Either way the packet is RUM's own and
                        // never reaches the controller.
                        if body.reason != openflow::constants::packet_in_reason::ACTION {
                            return;
                        }
                        // Probe PacketIns are the one input a sharded driver
                        // broadcasts (any switch's probe may return via any
                        // neighbour); the arrival switch's owner alone
                        // accounts for the consumption.
                        if self.config.owns(switch) {
                            self.switches[i].metrics.probes_consumed.inc();
                        }
                        // Probes may belong to any monitored switch's
                        // technique; each technique ignores probes that are
                        // not its own, and each shard runs only the
                        // techniques of switches it owns.
                        for s in 0..self.switches.len() {
                            if !self.config.owns_index(s) {
                                continue;
                            }
                            let mut out = std::mem::take(&mut self.tech_out);
                            self.switches[s]
                                .technique
                                .on_probe_packet(&header, now, &mut out);
                            self.apply_outputs(SwitchId::new(s), &mut out, now, effects);
                            self.tech_out = out;
                        }
                    }
                    _ => effects.push(Effect::ToController {
                        via: switch,
                        message: msg,
                    }),
                }
            }
            OfMessage::Error { xid, .. } => {
                if xid >= PROXY_XID_BASE {
                    // One of RUM's own rules failed; nothing sensible to tell
                    // the controller.  The technique will fall back on
                    // timeouts (probes simply never return).
                } else {
                    // A controller modification failed: the rule will never
                    // appear in the data plane, so treat it as resolved for
                    // barrier purposes and pass the error through.
                    let id = u64::from(xid);
                    if let Some(m) = self.switches[i].unconfirmed.remove(&id) {
                        self.switches[i].resolve_cookie(m.seq);
                        self.switches[i].sync_unconfirmed_gauge();
                    }
                    effects.push(Effect::ToController {
                        via: switch,
                        message: msg,
                    });
                    self.try_release_barriers(switch, now, effects);
                }
            }
            other => effects.push(Effect::ToController {
                via: switch,
                message: other,
            }),
        }
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// The token encodes which switch's technique armed the timer.
    fn on_timer(&mut self, token: TimerToken, now: Duration, effects: &mut Vec<Effect>) {
        let raw = token.raw();
        let switch = (raw >> 48) as usize;
        let tech_token = raw & 0x0000_FFFF_FFFF_FFFF;
        if switch >= self.switches.len() {
            return;
        }
        let mut out = std::mem::take(&mut self.tech_out);
        self.switches[switch]
            .technique
            .on_timer(tech_token, now, &mut out);
        self.apply_outputs(SwitchId::new(switch), &mut out, now, effects);
        self.tech_out = out;
    }

    // ------------------------------------------------------------------
    // Reconnect re-convergence
    // ------------------------------------------------------------------

    /// A restarted switch reattached: the restart wiped its tables (the
    /// catch rule, probe rules, and every not-yet-synced controller rule),
    /// so the engine rebuilds its side of the world on the fresh channel:
    ///
    /// 1. re-install the probe-catch rule (probing techniques);
    /// 2. re-issue every unconfirmed controller modification, oldest first
    ///    — confirmed rules were acknowledged while demonstrably in the
    ///    data plane and are the controller's to re-plan, but unconfirmed
    ///    ones are still RUM's promise to resolve;
    /// 3. re-forward every withheld controller barrier the switch never
    ///    answered — the original requests died with the channel, and a
    ///    reliable barrier releases only once the switch's own reply has
    ///    arrived *and* its covered modifications confirmed;
    /// 4. let the technique re-arm (fresh barriers, re-versioned probe
    ///    rule) so the re-issued modifications actually confirm.
    fn on_switch_reconnected(
        &mut self,
        switch: SwitchId,
        now: Duration,
        effects: &mut Vec<Effect>,
    ) {
        let i = switch.index();
        if i >= self.switches.len() {
            return;
        }
        self.switches[i].metrics.reconnects.inc();
        if self.config.technique.is_probing() {
            self.install_catch_rule(switch, effects);
        }
        let mut pending: Vec<(u64, u64)> = self.switches[i]
            .unconfirmed
            .iter()
            .map(|(&cookie, m)| (m.seq, cookie))
            .collect();
        pending.sort_unstable();
        for (_, cookie) in pending {
            let body = self.switches[i].unconfirmed[&cookie].flow_mod.clone();
            self.switches[i].metrics.reissued_flow_mods.inc();
            effects.push(Effect::ToSwitch {
                switch,
                message: OfMessage::FlowMod {
                    xid: cookie as Xid,
                    body,
                },
            });
        }
        let unanswered: Vec<Xid> = self.switches[i]
            .pending_barriers
            .iter()
            .filter(|b| !b.switch_replied)
            .map(|b| b.xid)
            .collect();
        for xid in unanswered {
            effects.push(Effect::ToSwitch {
                switch,
                message: OfMessage::BarrierRequest { xid },
            });
        }
        let mut out = std::mem::take(&mut self.tech_out);
        self.switches[i]
            .technique
            .on_switch_reconnected(now, &mut out);
        self.apply_outputs(switch, &mut out, now, effects);
        self.tech_out = out;
    }

    // ------------------------------------------------------------------
    // Technique output handling
    // ------------------------------------------------------------------

    fn apply_outputs(
        &mut self,
        switch: SwitchId,
        outputs: &mut Vec<TechniqueOutput>,
        now: Duration,
        effects: &mut Vec<Effect>,
    ) {
        let i = switch.index();
        for output in outputs.drain(..) {
            match output {
                TechniqueOutput::Confirm(cookie) => self.confirm(switch, cookie, now, effects),
                TechniqueOutput::ToSwitch(message) => {
                    if matches!(message, OfMessage::FlowMod { .. }) {
                        self.switches[i].metrics.proxy_flow_mods.inc();
                    }
                    effects.push(Effect::ToSwitch { switch, message });
                }
                TechniqueOutput::InjectVia { switch: via, msg } => {
                    self.switches[i].metrics.probes_injected.inc();
                    effects.push(Effect::InjectVia {
                        switch: via,
                        message: msg,
                    });
                }
                TechniqueOutput::SetTimer { delay, token } => {
                    let encoded = ((i as u64) << 48) | token;
                    effects.push(Effect::ArmTimer {
                        delay,
                        token: TimerToken::from_raw(encoded),
                    });
                }
            }
        }
    }

    fn confirm(&mut self, switch: SwitchId, cookie: u64, now: Duration, effects: &mut Vec<Effect>) {
        let i = switch.index();
        let state = &mut self.switches[i];
        let Some(m) = state.unconfirmed.remove(&cookie) else {
            return;
        };
        state.resolve_cookie(m.seq);
        state.sync_unconfirmed_gauge();
        state
            .metrics
            .confirm_latency_us
            .record(now.saturating_sub(m.received_at).as_micros() as u64);
        if self.config.record_confirmations {
            self.confirm_log.push(ConfirmRecord {
                switch,
                cookie,
                at: now,
            });
        }
        effects.push(Effect::Confirmed { switch, cookie });
        if self.config.fine_grained_acks {
            let state = &mut self.switches[i];
            state.metrics.acks_sent.inc();
            effects.push(Effect::ToController {
                via: switch,
                message: OfMessage::rum_ack(cookie as Xid),
            });
        }
        self.try_release_barriers(switch, now, effects);
    }

    fn try_release_barriers(&mut self, switch: SwitchId, now: Duration, effects: &mut Vec<Effect>) {
        let i = switch.index();
        loop {
            let state = &mut self.switches[i];
            let Some(front) = state.pending_barriers.front() else {
                break;
            };
            if !(front.switch_replied && front.remaining == 0) {
                break;
            }
            let barrier = state.pending_barriers.pop_front().expect("front exists");
            state.metrics.barrier_replies_released.inc();
            effects.push(Effect::ToController {
                via: switch,
                message: OfMessage::BarrierReply { xid: barrier.xid },
            });
            // Release buffered commands until the next barrier becomes
            // pending (or the buffer drains).
            if self.config.buffer_across_barriers {
                while self.switches[i].pending_barriers.is_empty() {
                    let Some(msg) = self.switches[i].buffered.pop_front() else {
                        break;
                    };
                    self.process_controller_msg(switch, msg, now, effects);
                }
            }
        }
    }
}

impl fmt::Debug for RumEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RumEngine")
            .field("technique", &self.config.technique.label())
            .field("n_switches", &self.switches.len())
            .field("started", &self.started)
            .field("confirmed", &self.confirm_log.len())
            .finish()
    }
}

/// Messages with no ordering relationship to rule modifications; they are
/// never held back by the cross-barrier buffer.
fn is_liveness_msg(msg: &OfMessage) -> bool {
    matches!(
        msg,
        OfMessage::Hello { .. } | OfMessage::EchoRequest { .. } | OfMessage::EchoReply { .. }
    )
}

fn build_technique(config: &RumConfig, switch: SwitchId) -> Box<dyn AckTechnique> {
    let xid_base = PROXY_XID_BASE + (switch.index() as u32 + 1) * 0x0001_0000;
    match &config.technique {
        TechniqueConfig::BarrierBaseline => Box::new(BarrierBaseline::new(xid_base)),
        TechniqueConfig::StaticTimeout { delay } => Box::new(StaticTimeout::new(*delay, xid_base)),
        TechniqueConfig::AdaptiveDelay {
            assumed_rate,
            assumed_sync_lag,
        } => Box::new(AdaptiveDelay::new(*assumed_rate, *assumed_sync_lag)),
        TechniqueConfig::SequentialProbing {
            batch_size,
            probe_interval,
        } => Box::new(SequentialProbing::new(
            switch,
            *batch_size,
            *probe_interval,
            config.probe_plan.clone(),
            config.port_maps[switch.index()].clone(),
            xid_base,
        )),
        TechniqueConfig::GeneralProbing {
            probe_interval,
            max_outstanding,
            fallback_delay,
        } => {
            let mut t = GeneralProbing::new(
                switch,
                *probe_interval,
                *max_outstanding,
                *fallback_delay,
                config.probe_plan.clone(),
                config.port_maps[switch.index()].clone(),
                xid_base,
            );
            // Every experiment pre-installs a low-priority drop-all rule;
            // seed the table model so probe synthesis sees it.
            t.seed_known_rule(openflow::OfMatch::wildcard_all(), 0, vec![]);
            Box::new(t)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RumBuilder;
    use openflow::messages::FlowMod;
    use openflow::{Action, OfMatch};
    use std::net::Ipv4Addr;

    fn engine(technique: TechniqueConfig) -> RumEngine {
        RumBuilder::new(1).technique(technique).build()
    }

    fn flow_mod(xid: Xid) -> OfMessage {
        OfMessage::FlowMod {
            xid,
            body: FlowMod::add(
                OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 1, 0, 1)),
                100,
                vec![Action::output(2)],
            ),
        }
    }

    #[test]
    fn baseline_flow_mod_round_trip_confirms() {
        let mut e = engine(TechniqueConfig::BarrierBaseline);
        let sw = SwitchId::new(0);
        assert!(e.start(Duration::ZERO).is_empty());

        let effects = e.handle(
            Duration::ZERO,
            Input::FromController {
                switch: sw,
                message: flow_mod(42),
            },
        );
        // Forwarded flow-mod + a proxy barrier.
        let barrier_xid = effects
            .iter()
            .find_map(|eff| match eff {
                Effect::ToSwitch {
                    message: OfMessage::BarrierRequest { xid },
                    ..
                } => Some(*xid),
                _ => None,
            })
            .expect("proxy barrier injected");
        assert!(barrier_xid >= PROXY_XID_BASE);
        assert!(matches!(
            effects[0],
            Effect::ToSwitch {
                message: OfMessage::FlowMod { xid: 42, .. },
                ..
            }
        ));
        assert_eq!(e.stats(sw).unconfirmed, 1);

        let effects = e.handle(
            Duration::from_millis(1),
            Input::FromSwitch {
                switch: sw,
                message: OfMessage::BarrierReply { xid: barrier_xid },
            },
        );
        assert!(effects.contains(&Effect::Confirmed {
            switch: sw,
            cookie: 42
        }));
        assert!(effects.iter().any(|eff| matches!(
            eff,
            Effect::ToController { message, .. } if message.as_rum_ack() == Some(42)
        )));
        assert_eq!(e.stats(sw).unconfirmed, 0);
        assert_eq!(e.stats(sw).acks_sent, 1);
        assert_eq!(e.confirmed_order(), vec![(sw, 42)]);
        assert_eq!(e.confirmations()[0].cookie, 42);
        assert_eq!(e.confirmations()[0].at, Duration::from_millis(1));
    }

    #[test]
    fn static_timeout_defers_until_timer() {
        let mut e = engine(TechniqueConfig::StaticTimeout {
            delay: Duration::from_millis(300),
        });
        let sw = SwitchId::new(0);
        e.start(Duration::ZERO);
        let effects = e.handle(
            Duration::ZERO,
            Input::FromController {
                switch: sw,
                message: flow_mod(7),
            },
        );
        let barrier_xid = effects
            .iter()
            .find_map(|eff| match eff {
                Effect::ToSwitch {
                    message: OfMessage::BarrierRequest { xid },
                    ..
                } => Some(*xid),
                _ => None,
            })
            .unwrap();
        let effects = e.handle(
            Duration::from_millis(5),
            Input::FromSwitch {
                switch: sw,
                message: OfMessage::BarrierReply { xid: barrier_xid },
            },
        );
        let (delay, token) = effects
            .iter()
            .find_map(|eff| match eff {
                Effect::ArmTimer { delay, token } => Some((*delay, *token)),
                _ => None,
            })
            .expect("timer armed");
        assert_eq!(delay, Duration::from_millis(300));
        assert!(!effects
            .iter()
            .any(|eff| matches!(eff, Effect::Confirmed { .. })));

        let effects = e.handle(Duration::from_millis(305), Input::TimerFired { token });
        assert!(effects.contains(&Effect::Confirmed {
            switch: sw,
            cookie: 7
        }));
    }

    #[test]
    fn reserved_xid_from_controller_is_rejected() {
        let mut e = engine(TechniqueConfig::BarrierBaseline);
        let sw = SwitchId::new(0);
        e.start(Duration::ZERO);
        let effects = e.handle(
            Duration::ZERO,
            Input::FromController {
                switch: sw,
                message: flow_mod(PROXY_XID_BASE + 5),
            },
        );
        // Not forwarded, answered with an error instead.
        assert!(!effects
            .iter()
            .any(|eff| matches!(eff, Effect::ToSwitch { .. })));
        let err = effects
            .iter()
            .find_map(|eff| match eff {
                Effect::ToController {
                    message: OfMessage::Error { xid, body },
                    ..
                } => Some((*xid, body.err_type)),
                _ => None,
            })
            .expect("rejection error sent");
        assert_eq!(err.0, PROXY_XID_BASE + 5);
        assert_eq!(err.1, openflow::constants::error_type::BAD_REQUEST);
        assert_eq!(e.stats(sw).rejected_xids, 1);
        assert_eq!(e.stats(sw).controller_flow_mods, 0);
        assert_eq!(e.stats(sw).unconfirmed, 0);
    }

    #[test]
    fn reliable_barrier_is_held_until_confirmation() {
        let mut e = engine(TechniqueConfig::StaticTimeout {
            delay: Duration::from_millis(100),
        });
        let sw = SwitchId::new(0);
        e.start(Duration::ZERO);
        let effects = e.handle(
            Duration::ZERO,
            Input::FromController {
                switch: sw,
                message: flow_mod(9),
            },
        );
        let proxy_barrier = effects
            .iter()
            .find_map(|eff| match eff {
                Effect::ToSwitch {
                    message: OfMessage::BarrierRequest { xid },
                    ..
                } => Some(*xid),
                _ => None,
            })
            .unwrap();
        // Controller barrier arrives; reply must be withheld.
        let effects = e.handle(
            Duration::from_millis(1),
            Input::FromController {
                switch: sw,
                message: OfMessage::BarrierRequest { xid: 77 },
            },
        );
        assert!(!effects.iter().any(|eff| matches!(
            eff,
            Effect::ToController {
                message: OfMessage::BarrierReply { .. },
                ..
            }
        )));
        // Switch replies to both barriers; still no release (timer pending).
        e.handle(
            Duration::from_millis(2),
            Input::FromSwitch {
                switch: sw,
                message: OfMessage::BarrierReply { xid: proxy_barrier },
            },
        );
        let effects = e.handle(
            Duration::from_millis(2),
            Input::FromSwitch {
                switch: sw,
                message: OfMessage::BarrierReply { xid: 77 },
            },
        );
        assert!(!effects.iter().any(|eff| matches!(
            eff,
            Effect::ToController {
                message: OfMessage::BarrierReply { .. },
                ..
            }
        )));
        // The timeout fires -> cookie 9 confirms -> barrier 77 releases.
        let token = TimerToken::from_raw(0); // switch 0, technique token 0
        let effects = e.handle(Duration::from_millis(102), Input::TimerFired { token });
        assert!(effects.contains(&Effect::Confirmed {
            switch: sw,
            cookie: 9
        }));
        assert!(effects.iter().any(|eff| matches!(
            eff,
            Effect::ToController {
                message: OfMessage::BarrierReply { xid: 77 },
                ..
            }
        )));
        assert_eq!(e.stats(sw).barrier_replies_released, 1);
    }

    #[test]
    fn buffered_commands_replay_with_current_time_not_zero() {
        // Adaptive delay is the time-sensitive technique: if a buffered
        // flow-mod were replayed with now = 0 after a barrier release, its
        // confirmation timer would stretch to the absolute elapsed time.
        let mut e = RumBuilder::new(1)
            .technique(TechniqueConfig::AdaptiveDelay {
                assumed_rate: 100.0, // 10 ms per modification
                assumed_sync_lag: Duration::ZERO,
            })
            .buffer_across_barriers(true)
            .build();
        let sw = SwitchId::new(0);
        e.start(Duration::ZERO);
        e.handle(
            Duration::ZERO,
            Input::FromController {
                switch: sw,
                message: flow_mod(5),
            },
        );
        e.handle(
            Duration::from_millis(1),
            Input::FromController {
                switch: sw,
                message: OfMessage::BarrierRequest { xid: 50 },
            },
        );
        // Arrives behind the pending barrier: buffered.
        let fx = e.handle(
            Duration::from_millis(2),
            Input::FromController {
                switch: sw,
                message: flow_mod(6),
            },
        );
        assert!(fx.is_empty(), "flow-mod behind a barrier must be buffered");
        e.handle(
            Duration::from_millis(3),
            Input::FromSwitch {
                switch: sw,
                message: OfMessage::BarrierReply { xid: 50 },
            },
        );
        // Cookie 5's adaptive timer fires at t = 10 ms; the barrier releases
        // and the buffered flow-mod 6 replays *at t = 10 ms*: its adaptive
        // estimate is 10 ms out (virtual clock 20 ms minus now), not 20 ms
        // (which would mean it was replayed with now = 0).
        let fx = e.handle(
            Duration::from_millis(10),
            Input::TimerFired {
                token: TimerToken::from_raw(0),
            },
        );
        assert!(fx.contains(&Effect::Confirmed {
            switch: sw,
            cookie: 5
        }));
        let replay_delay = fx
            .iter()
            .find_map(|eff| match eff {
                Effect::ArmTimer { delay, .. } => Some(*delay),
                _ => None,
            })
            .expect("replayed flow-mod arms its adaptive timer");
        assert_eq!(replay_delay, Duration::from_millis(10));
    }

    #[test]
    fn liveness_traffic_bypasses_the_barrier_buffer() {
        let mut e = RumBuilder::new(1)
            .technique(TechniqueConfig::StaticTimeout {
                delay: Duration::from_secs(1),
            })
            .buffer_across_barriers(true)
            .build();
        let sw = SwitchId::new(0);
        e.start(Duration::ZERO);
        e.handle(
            Duration::ZERO,
            Input::FromController {
                switch: sw,
                message: flow_mod(1),
            },
        );
        e.handle(
            Duration::ZERO,
            Input::FromController {
                switch: sw,
                message: OfMessage::BarrierRequest { xid: 9 },
            },
        );
        // An echo behind the pending barrier must pass straight through —
        // holding it would trip the switch's keepalive.
        let fx = e.handle(
            Duration::from_millis(1),
            Input::FromController {
                switch: sw,
                message: OfMessage::EchoRequest {
                    xid: 2,
                    data: vec![1],
                },
            },
        );
        assert_eq!(
            fx,
            vec![Effect::ToSwitch {
                switch: sw,
                message: OfMessage::EchoRequest {
                    xid: 2,
                    data: vec![1],
                },
            }]
        );
        // A flow-mod is still buffered.
        let fx = e.handle(
            Duration::from_millis(2),
            Input::FromController {
                switch: sw,
                message: flow_mod(3),
            },
        );
        assert!(fx.is_empty());
    }

    /// A reconnect re-issues exactly the unconfirmed modifications (oldest
    /// first) and re-arms the technique; confirmed ones stay resolved, and
    /// the re-issued ones confirm through the fresh barrier.
    #[test]
    fn reconnect_reissues_unconfirmed_and_rearms() {
        let mut e = engine(TechniqueConfig::BarrierBaseline);
        let sw = SwitchId::new(0);
        e.start(Duration::ZERO);
        let fx = e.handle(
            Duration::ZERO,
            Input::FromController {
                switch: sw,
                message: flow_mod(1),
            },
        );
        let first_barrier = fx
            .iter()
            .find_map(|eff| match eff {
                Effect::ToSwitch {
                    message: OfMessage::BarrierRequest { xid },
                    ..
                } => Some(*xid),
                _ => None,
            })
            .unwrap();
        e.handle(
            Duration::from_millis(1),
            Input::FromController {
                switch: sw,
                message: flow_mod(2),
            },
        );
        e.handle(
            Duration::from_millis(1),
            Input::FromController {
                switch: sw,
                message: flow_mod(3),
            },
        );
        // Cookie 1 confirms pre-restart; 2 and 3 stay unconfirmed.
        e.handle(
            Duration::from_millis(2),
            Input::FromSwitch {
                switch: sw,
                message: OfMessage::BarrierReply { xid: first_barrier },
            },
        );
        assert_eq!(e.stats(sw).unconfirmed, 2);

        let fx = e.handle(
            Duration::from_millis(500),
            Input::SwitchReconnected { switch: sw },
        );
        let reissued: Vec<Xid> = fx
            .iter()
            .filter_map(|eff| match eff {
                Effect::ToSwitch {
                    message: OfMessage::FlowMod { xid, .. },
                    ..
                } => Some(*xid),
                _ => None,
            })
            .collect();
        assert_eq!(reissued, vec![2, 3], "unconfirmed mods re-issued in order");
        let rearm_barrier = fx
            .iter()
            .find_map(|eff| match eff {
                Effect::ToSwitch {
                    message: OfMessage::BarrierRequest { xid },
                    ..
                } => Some(*xid),
                _ => None,
            })
            .expect("technique re-arms a fresh barrier behind the re-issue");
        assert_eq!(e.stats(sw).reconnects, 1);
        assert_eq!(e.stats(sw).reissued_flow_mods, 2);
        // The baseline is not probing: no catch rule re-install.
        assert_eq!(e.stats(sw).proxy_flow_mods, 0);

        // The fresh barrier's reply confirms both re-issued cookies.
        let fx = e.handle(
            Duration::from_millis(501),
            Input::FromSwitch {
                switch: sw,
                message: OfMessage::BarrierReply { xid: rearm_barrier },
            },
        );
        let confirmed: Vec<u64> = fx
            .iter()
            .filter_map(|eff| match eff {
                Effect::Confirmed { cookie, .. } => Some(*cookie),
                _ => None,
            })
            .collect();
        assert_eq!(confirmed, vec![2, 3]);
        assert_eq!(e.stats(sw).unconfirmed, 0);

        // A reconnect with nothing outstanding is quiet.
        let fx = e.handle(
            Duration::from_millis(600),
            Input::SwitchReconnected { switch: sw },
        );
        assert!(fx.is_empty());
        assert_eq!(e.stats(sw).reconnects, 2);
    }

    /// A controller barrier withheld across the restart is re-forwarded on
    /// reconnect (the original request died with the channel) and releases
    /// once the reattached switch replies and the covered modification
    /// confirms — the update does not stall on a pre-restart barrier.
    #[test]
    fn reconnect_reforwards_unanswered_reliable_barriers() {
        let mut e = engine(TechniqueConfig::StaticTimeout {
            delay: Duration::from_millis(100),
        });
        let sw = SwitchId::new(0);
        e.start(Duration::ZERO);
        e.handle(
            Duration::ZERO,
            Input::FromController {
                switch: sw,
                message: flow_mod(9),
            },
        );
        e.handle(
            Duration::from_millis(1),
            Input::FromController {
                switch: sw,
                message: OfMessage::BarrierRequest { xid: 77 },
            },
        );
        // The switch restarts before replying to anything; the reconnect
        // must re-forward barrier 77 alongside the re-issued flow-mod.
        let fx = e.handle(
            Duration::from_millis(400),
            Input::SwitchReconnected { switch: sw },
        );
        let barriers: Vec<Xid> = fx
            .iter()
            .filter_map(|eff| match eff {
                Effect::ToSwitch {
                    message: OfMessage::BarrierRequest { xid },
                    ..
                } => Some(*xid),
                _ => None,
            })
            .collect();
        assert!(
            barriers.contains(&77),
            "the withheld controller barrier must be re-forwarded: {barriers:?}"
        );
        let proxy_barrier = barriers
            .iter()
            .copied()
            .find(|&x| x >= PROXY_XID_BASE)
            .expect("the technique re-arms its own barrier too");

        // The reattached switch answers both; the hold-down timer then
        // confirms cookie 9 and barrier 77 finally releases.
        let fx = e.handle(
            Duration::from_millis(401),
            Input::FromSwitch {
                switch: sw,
                message: OfMessage::BarrierReply { xid: proxy_barrier },
            },
        );
        let token = fx
            .iter()
            .find_map(|eff| match eff {
                Effect::ArmTimer { token, .. } => Some(*token),
                _ => None,
            })
            .expect("hold-down timer armed after the re-armed barrier reply");
        let fx = e.handle(
            Duration::from_millis(401),
            Input::FromSwitch {
                switch: sw,
                message: OfMessage::BarrierReply { xid: 77 },
            },
        );
        assert!(!fx.iter().any(|eff| matches!(
            eff,
            Effect::ToController {
                message: OfMessage::BarrierReply { .. },
                ..
            }
        )));
        let fx = e.handle(Duration::from_millis(502), Input::TimerFired { token });
        assert!(fx.contains(&Effect::Confirmed {
            switch: sw,
            cookie: 9
        }));
        assert!(
            fx.iter().any(|eff| matches!(
                eff,
                Effect::ToController {
                    message: OfMessage::BarrierReply { xid: 77 },
                    ..
                }
            )),
            "{fx:?}"
        );
        assert_eq!(e.stats(sw).barrier_replies_released, 1);
    }

    /// Probing deployments additionally re-install the probe-catch rule on
    /// the reattached switch.
    #[test]
    fn reconnect_reinstalls_catch_rule_for_probing() {
        let mut e = RumBuilder::new(1)
            .technique(TechniqueConfig::default_general())
            .build();
        let sw = SwitchId::new(0);
        let start_mods = e
            .start(Duration::ZERO)
            .iter()
            .filter(|eff| {
                matches!(
                    eff,
                    Effect::ToSwitch {
                        message: OfMessage::FlowMod { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(start_mods, 1, "catch rule installed at start");
        let fx = e.handle(
            Duration::from_millis(5),
            Input::SwitchReconnected { switch: sw },
        );
        let catch_reinstalls = fx
            .iter()
            .filter(|eff| {
                matches!(
                    eff,
                    Effect::ToSwitch {
                        message: OfMessage::FlowMod { xid, .. },
                        ..
                    } if *xid >= PROXY_XID_BASE
                )
            })
            .count();
        assert_eq!(catch_reinstalls, 1, "catch rule re-installed on reconnect");
        assert_eq!(e.stats(sw).proxy_flow_mods, 2);
    }

    #[test]
    fn tick_and_double_start_are_harmless() {
        let mut e = engine(TechniqueConfig::BarrierBaseline);
        e.start(Duration::ZERO);
        assert!(e.start(Duration::from_millis(1)).is_empty());
        assert!(e.handle(Duration::from_millis(2), Input::Tick).is_empty());
        assert_eq!(e.technique_name(SwitchId::new(0)), "barriers");
        assert_eq!(e.n_switches(), 1);
        assert_eq!(format!("{}", SwitchId::new(3)), "sw3");
    }

    #[test]
    fn switch_error_resolves_barrier_and_passes_through() {
        let mut e = engine(TechniqueConfig::StaticTimeout {
            delay: Duration::from_secs(10),
        });
        let sw = SwitchId::new(0);
        e.start(Duration::ZERO);
        e.handle(
            Duration::ZERO,
            Input::FromController {
                switch: sw,
                message: flow_mod(13),
            },
        );
        e.handle(
            Duration::ZERO,
            Input::FromController {
                switch: sw,
                message: OfMessage::BarrierRequest { xid: 50 },
            },
        );
        e.handle(
            Duration::from_millis(1),
            Input::FromSwitch {
                switch: sw,
                message: OfMessage::BarrierReply { xid: 50 },
            },
        );
        // The switch reports the flow-mod failed: error passes through and
        // the held barrier releases without waiting for the (hopeless)
        // confirmation.
        let effects = e.handle(
            Duration::from_millis(2),
            Input::FromSwitch {
                switch: sw,
                message: OfMessage::Error {
                    xid: 13,
                    body: openflow::messages::ErrorMsg {
                        err_type: openflow::constants::error_type::FLOW_MOD_FAILED,
                        code: 0,
                        data: vec![],
                    },
                },
            },
        );
        assert!(effects.iter().any(|eff| matches!(
            eff,
            Effect::ToController {
                message: OfMessage::Error { xid: 13, .. },
                ..
            }
        )));
        assert!(effects.iter().any(|eff| matches!(
            eff,
            Effect::ToController {
                message: OfMessage::BarrierReply { xid: 50 },
                ..
            }
        )));
        assert!(!effects
            .iter()
            .any(|eff| matches!(eff, Effect::Confirmed { .. })));
    }
}
