//! Welsh–Powell greedy vertex colouring.
//!
//! The general-probing technique needs a per-switch header value such that
//! *adjacent* switches never share a value (otherwise the probed switch's own
//! probe-catch rule would swallow the probe before it reaches the neighbour).
//! Using one globally unique value per switch wastes scarce header values
//! (the paper's prototype only has 64 ToS codepoints), so Section 3.2.2
//! suggests solving a vertex-colouring instance instead.  Welsh–Powell is the
//! classic greedy heuristic: order vertices by decreasing degree and give
//! each the smallest colour not used by its neighbours.

use std::collections::{BTreeMap, BTreeSet};

/// An undirected graph over `usize` vertex ids.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    adjacency: BTreeMap<usize, BTreeSet<usize>>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Adds a vertex (no-op if it already exists).
    pub fn add_vertex(&mut self, v: usize) {
        self.adjacency.entry(v).or_default();
    }

    /// Adds an undirected edge (vertices are created as needed).
    pub fn add_edge(&mut self, a: usize, b: usize) {
        if a == b {
            self.add_vertex(a);
            return;
        }
        self.adjacency.entry(a).or_default().insert(b);
        self.adjacency.entry(b).or_default().insert(a);
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.adjacency.len()
    }

    /// The degree of a vertex (0 if absent).
    pub fn degree(&self, v: usize) -> usize {
        self.adjacency.get(&v).map_or(0, BTreeSet::len)
    }

    /// The neighbours of a vertex.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.adjacency.get(&v).into_iter().flatten().copied()
    }

    /// Colours the graph with the Welsh–Powell heuristic, returning a colour
    /// (0-based) per vertex.  Adjacent vertices are guaranteed different
    /// colours; the number of colours is at most `max_degree + 1`.
    pub fn welsh_powell_coloring(&self) -> BTreeMap<usize, usize> {
        let mut order: Vec<usize> = self.adjacency.keys().copied().collect();
        // Sort by decreasing degree, ties by vertex id for determinism.
        order.sort_by_key(|v| (usize::MAX - self.degree(*v), *v));
        let mut colors: BTreeMap<usize, usize> = BTreeMap::new();
        for &v in &order {
            let used: BTreeSet<usize> = self
                .neighbors(v)
                .filter_map(|n| colors.get(&n).copied())
                .collect();
            let mut color = 0;
            while used.contains(&color) {
                color += 1;
            }
            colors.insert(v, color);
        }
        colors
    }

    /// Convenience: builds a graph from an adjacency list.
    pub fn from_edges(edges: &[(usize, usize)]) -> Self {
        let mut g = Graph::new();
        for &(a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    /// Verifies that a colouring is proper (no edge joins equal colours).
    pub fn is_proper_coloring(&self, colors: &BTreeMap<usize, usize>) -> bool {
        self.adjacency.iter().all(|(v, neighbors)| {
            neighbors
                .iter()
                .all(|n| colors.get(v).is_some() && colors.get(v) != colors.get(n))
        })
    }
}

/// Assigns a distinct-from-neighbours probe value to each switch given the
/// links between monitored switches.  Returns colour indices; the caller maps
/// them to actual header values.
pub fn assign_probe_colors(links: &[(usize, usize)], n_switches: usize) -> Vec<usize> {
    let mut g = Graph::from_edges(links);
    for v in 0..n_switches {
        g.add_vertex(v);
    }
    let colors = g.welsh_powell_coloring();
    (0..n_switches).map(|v| colors[&v]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single_vertex() {
        let g = Graph::new();
        assert!(g.welsh_powell_coloring().is_empty());
        let mut g = Graph::new();
        g.add_vertex(3);
        let c = g.welsh_powell_coloring();
        assert_eq!(c[&3], 0);
        assert_eq!(g.vertex_count(), 1);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn self_loop_is_ignored() {
        let mut g = Graph::new();
        g.add_edge(1, 1);
        assert_eq!(g.degree(1), 0);
    }

    #[test]
    fn triangle_needs_three_colors() {
        let g = Graph::from_edges(&[(0, 1), (1, 2), (2, 0)]);
        let colors = g.welsh_powell_coloring();
        assert!(g.is_proper_coloring(&colors));
        let distinct: BTreeSet<usize> = colors.values().copied().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn path_needs_two_colors() {
        let g = Graph::from_edges(&[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let colors = g.welsh_powell_coloring();
        assert!(g.is_proper_coloring(&colors));
        let max = colors.values().max().copied().unwrap();
        assert_eq!(max, 1, "a path is 2-colourable");
    }

    #[test]
    fn star_needs_two_colors() {
        let g = Graph::from_edges(&[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let colors = g.welsh_powell_coloring();
        assert!(g.is_proper_coloring(&colors));
        assert_eq!(colors.values().max().copied().unwrap(), 1);
    }

    #[test]
    fn coloring_never_exceeds_max_degree_plus_one() {
        // A random-ish denser graph.
        let edges: Vec<(usize, usize)> = (0..20)
            .flat_map(|i| {
                ((i + 1)..20)
                    .filter(move |j| (i * j) % 3 == 0)
                    .map(move |j| (i, j))
            })
            .collect();
        let g = Graph::from_edges(&edges);
        let colors = g.welsh_powell_coloring();
        assert!(g.is_proper_coloring(&colors));
        let max_degree = (0..20).map(|v| g.degree(v)).max().unwrap();
        assert!(colors.values().max().unwrap() <= &max_degree);
    }

    #[test]
    fn assign_probe_colors_covers_isolated_switches() {
        let colors = assign_probe_colors(&[(0, 1), (1, 2)], 5);
        assert_eq!(colors.len(), 5);
        assert_ne!(colors[0], colors[1]);
        assert_ne!(colors[1], colors[2]);
        // Switches 3 and 4 have no links; any colour is fine.
        assert_eq!(colors[3], 0);
        assert_eq!(colors[4], 0);
    }
}
