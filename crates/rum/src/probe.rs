//! Probe-packet and probe-rule synthesis (paper §3.2).
//!
//! Sequential probing needs two kinds of rules — a high-priority *probe-catch*
//! rule on every switch that punts marked packets to the controller, and a
//! versioned *probe rule* on the monitored switch that stamps a version number
//! into passing probes.  General probing additionally needs, per probed rule,
//! a concrete packet that (a) matches exactly that rule, (b) is not hijacked
//! by a higher-priority rule, (c) is observably handled differently by
//! whatever lower-priority rule would match it before the probed rule is
//! installed, and (d) will be caught by the next-hop switch's catch rule.

use openflow::messages::FlowMod;
use openflow::{Action, MacAddr, OfMatch, PacketHeader, PortNo, Wildcards};
use std::net::Ipv4Addr;

use crate::config::{CATCH_RULE_PRIORITY, PROBE_RULE_PRIORITY};

/// The IP addresses probe packets use by default (TEST-NET-2, never assigned
/// to real traffic).
pub const PROBE_SRC_IP: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);
/// Default destination of probe packets (TEST-NET-2).
pub const PROBE_DST_IP: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 2);

/// Builds the probe-catch rule RUM installs on a switch: every IP packet
/// whose ToS equals the switch's catch value is punted to the controller.
pub fn catch_rule(catch_tos: u8, cookie: u64) -> FlowMod {
    FlowMod::add(
        OfMatch::wildcard_all().with_nw_tos(catch_tos),
        CATCH_RULE_PRIORITY,
        vec![Action::to_controller()],
    )
    .with_cookie(cookie)
}

/// Builds (or re-versions) the sequential probing rule at a monitored switch:
/// pre-probe packets are stamped with the current version (VLAN id), have
/// their ToS rewritten to the *next-hop* switch's catch value, and are
/// forwarded towards that neighbour.
pub fn sequential_probe_rule(
    preprobe_tos: u8,
    next_hop_catch_tos: u8,
    out_port: PortNo,
    version: u16,
    cookie: u64,
    first_install: bool,
) -> FlowMod {
    let match_ = OfMatch::wildcard_all().with_nw_tos(preprobe_tos);
    let actions = vec![
        Action::SetVlanVid(version),
        Action::SetNwTos(next_hop_catch_tos),
        Action::output(out_port),
    ];
    let fm = if first_install {
        FlowMod::add(match_, PROBE_RULE_PRIORITY, actions)
    } else {
        FlowMod::modify_strict(match_, PROBE_RULE_PRIORITY, actions)
    };
    fm.with_cookie(cookie)
}

/// The packet RUM repeatedly injects for sequential probing.
pub fn sequential_probe_packet(preprobe_tos: u8) -> PacketHeader {
    let mut h = PacketHeader::ipv4_udp(
        MacAddr::from_id(0x52_55_4d_01),
        MacAddr::from_id(0x52_55_4d_02),
        PROBE_SRC_IP,
        PROBE_DST_IP,
        40_000,
        40_001,
    );
    h.nw_tos = preprobe_tos;
    h
}

/// Why no distinguishing probe packet could be synthesised for a rule; RUM
/// falls back to a control-plane technique in these cases (paper §3.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeSynthesisError {
    /// The rule drops packets (or outputs to the controller/local port), so a
    /// probe matching it would never reach a neighbouring switch.
    NoForwardingOutput,
    /// The rule matches on the ToS field RUM needs for probe identification.
    MatchesOnProbeField,
    /// The rule rewrites the ToS field, so the catch value would be destroyed
    /// before the probe reaches the next hop.
    RewritesProbeField,
    /// Every candidate probe packet is covered by a higher-priority rule.
    CoveredByHigherPriority,
    /// The rule that would match the probe before installation behaves
    /// identically, so the probe cannot distinguish "installed" from "not
    /// installed yet".
    IndistinguishableFromFallback,
}

impl std::fmt::Display for ProbeSynthesisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ProbeSynthesisError::NoForwardingOutput => "rule has no forwarding output",
            ProbeSynthesisError::MatchesOnProbeField => "rule matches on the probe header field",
            ProbeSynthesisError::RewritesProbeField => "rule rewrites the probe header field",
            ProbeSynthesisError::CoveredByHigherPriority => {
                "all candidate probes are covered by higher-priority rules"
            }
            ProbeSynthesisError::IndistinguishableFromFallback => {
                "lower-priority rules behave identically to the probed rule"
            }
        };
        f.write_str(s)
    }
}

impl std::error::Error for ProbeSynthesisError {}

/// A rule RUM knows to be (or to soon be) present at a switch, used for the
/// overlap analysis.
#[derive(Debug, Clone)]
pub struct KnownRule {
    /// The rule's match.
    pub match_: OfMatch,
    /// The rule's priority.
    pub priority: u16,
    /// The rule's actions.
    pub actions: Vec<Action>,
}

/// A synthesised probe for one rule.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneralProbe {
    /// The packet to inject (before any rewriting by the probed rule).
    pub packet: PacketHeader,
    /// The header the packet will carry *after* the probed rule's rewrites —
    /// this is what the catch rule at the next hop will punt to RUM.
    pub expected_at_catch: PacketHeader,
    /// The output port of the probed rule the probe will leave through.
    pub out_port: PortNo,
}

/// The first physical output port of an action list, if any.
pub fn first_physical_output(actions: &[Action]) -> Option<PortNo> {
    Action::output_ports(actions)
        .into_iter()
        .find(|p| *p < openflow::constants::port::MAX)
}

/// Synthesises a probe packet for `rule` (paper §3.2.2, including the
/// "Overlapping rules" refinements).
///
/// * `rule` — the rule being probed (as sent by the controller).
/// * `known_rules` — every rule RUM believes is or will be installed at the
///   switch, *including* RUM's own catch/probe rules and the probed rule
///   itself.
/// * `catch_tos` — the catch value of the next-hop switch (the probe's ToS is
///   set to this so the neighbour punts it to RUM).
/// * `probe_id` — a unique id embedded in an unconstrained L4 port field so
///   returning probes can be attributed without ambiguity.
pub fn synthesize_general_probe(
    rule: &KnownRule,
    known_rules: &[KnownRule],
    catch_tos: u8,
    probe_id: u16,
) -> Result<GeneralProbe, ProbeSynthesisError> {
    let out_port =
        first_physical_output(&rule.actions).ok_or(ProbeSynthesisError::NoForwardingOutput)?;

    // The probe is identified downstream by its ToS value; a rule that
    // constrains or rewrites ToS cannot be probed this way.
    if !rule.match_.wildcards.is_wildcarded(Wildcards::NW_TOS) {
        return Err(ProbeSynthesisError::MatchesOnProbeField);
    }
    if rule
        .actions
        .iter()
        .any(|a| matches!(a, Action::SetNwTos(t) if t & 0xfc != catch_tos & 0xfc))
    {
        return Err(ProbeSynthesisError::RewritesProbeField);
    }

    // Build candidate packets: the rule's example packet, then variations of
    // the unconstrained fields in case the first candidate is hijacked by a
    // higher-priority rule.  Finding an exact witness is NP-hard in general
    // (the paper cites header-space analysis); a handful of candidates is
    // enough for realistic forwarding tables.
    let mut template = PacketHeader::ipv4_udp(
        MacAddr::from_id(0x52_55_4d_01),
        MacAddr::from_id(0x52_55_4d_02),
        PROBE_SRC_IP,
        PROBE_DST_IP,
        40_000,
        40_001,
    );
    template.nw_tos = catch_tos;
    // Embed the probe id in an L4 port the rule does not constrain.
    let id_in_src = rule.match_.wildcards.is_wildcarded(Wildcards::TP_SRC);
    let id_in_dst = rule.match_.wildcards.is_wildcarded(Wildcards::TP_DST);
    if id_in_src {
        template.tp_src = probe_id;
    } else if id_in_dst {
        template.tp_dst = probe_id;
    }

    let mut candidates: Vec<PacketHeader> = Vec::new();
    let (base, _) = rule.match_.example_packet(&template);
    candidates.push(base);
    // Vary whatever is unconstrained to dodge higher-priority overlaps.
    for salt in 1..=4u16 {
        let mut alt = template;
        if id_in_dst && id_in_src {
            alt.tp_dst = 50_000 + salt;
        }
        if rule.match_.wildcards.nw_src_bits() >= 8 {
            let base_ip = u32::from_be_bytes(alt.nw_src.octets());
            alt.nw_src = Ipv4Addr::from((base_ip + u32::from(salt)).to_be_bytes());
        }
        let (candidate, _) = rule.match_.example_packet(&alt);
        candidates.push(candidate);
    }

    let in_port = if rule
        .match_
        .wildcards
        .is_wildcarded(openflow::Wildcards::IN_PORT)
    {
        0
    } else {
        rule.match_.in_port
    };

    for candidate in candidates {
        if !rule.match_.matches(&candidate, in_port) {
            continue;
        }
        // (a) No strictly higher-priority rule may match the candidate.
        let hijacked = known_rules.iter().any(|k| {
            k.priority > rule.priority
                && !(k.match_ == rule.match_ && k.priority == rule.priority)
                && k.match_.matches(&candidate, in_port)
        });
        if hijacked {
            continue;
        }
        // (b) The best lower-or-equal-priority rule (excluding the probed one)
        // must treat the candidate observably differently.
        let fallback = known_rules
            .iter()
            .filter(|k| !(k.match_ == rule.match_ && k.priority == rule.priority))
            .filter(|k| k.priority <= rule.priority && k.match_.matches(&candidate, in_port))
            .max_by_key(|k| k.priority);
        if let Some(fb) = fallback {
            if !Action::observably_differs(&rule.actions, &fb.actions, &candidate) {
                return Err(ProbeSynthesisError::IndistinguishableFromFallback);
            }
        }
        let (expected_at_catch, _) = Action::apply_list(&rule.actions, &candidate);
        return Ok(GeneralProbe {
            packet: candidate,
            expected_at_catch,
            out_port,
        });
    }
    Err(ProbeSynthesisError::CoveredByHigherPriority)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ProbeFieldPlan, PREPROBE_TOS};
    use crate::engine::SwitchId;

    fn known(match_: OfMatch, priority: u16, actions: Vec<Action>) -> KnownRule {
        KnownRule {
            match_,
            priority,
            actions,
        }
    }

    fn base_table(catch_tos: u8) -> Vec<KnownRule> {
        vec![
            // Drop-all default.
            known(OfMatch::wildcard_all(), 0, vec![]),
            // RUM's own catch rule.
            known(
                OfMatch::wildcard_all().with_nw_tos(catch_tos),
                CATCH_RULE_PRIORITY,
                vec![Action::to_controller()],
            ),
        ]
    }

    #[test]
    fn catch_rule_matches_only_its_tos() {
        let plan = ProbeFieldPlan::unique_per_switch(2);
        let rule = catch_rule(plan.catch_tos(SwitchId::new(0)), 1);
        assert_eq!(rule.priority, CATCH_RULE_PRIORITY);
        let mut pkt = PacketHeader {
            nw_tos: plan.catch_tos(SwitchId::new(0)),
            ..Default::default()
        };
        assert!(rule.match_.matches(&pkt, 1));
        pkt.nw_tos = 0;
        assert!(!rule.match_.matches(&pkt, 1));
    }

    #[test]
    fn sequential_rule_rewrites_and_forwards() {
        let fm = sequential_probe_rule(PREPROBE_TOS, 0xF8, 3, 7, 99, true);
        assert_eq!(fm.priority, PROBE_RULE_PRIORITY);
        let probe = sequential_probe_packet(PREPROBE_TOS);
        assert!(fm.match_.matches(&probe, 1));
        let (rewritten, ports) = Action::apply_list(&fm.actions, &probe);
        assert_eq!(rewritten.nw_tos, 0xF8);
        assert_eq!(rewritten.dl_vlan, 7);
        assert_eq!(ports, vec![3]);
        // Version bumps reuse modify-strict so the rule is updated in place.
        let bump = sequential_probe_rule(PREPROBE_TOS, 0xF8, 3, 8, 99, false);
        assert_eq!(bump.match_, fm.match_);
        assert!(matches!(
            bump.command,
            openflow::messages::FlowModCommand::ModifyStrict
        ));
    }

    #[test]
    fn general_probe_for_simple_forwarding_rule() {
        let plan = ProbeFieldPlan::unique_per_switch(3);
        let catch = plan.catch_tos(SwitchId::new(2));
        let rule = known(
            OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, 5), Ipv4Addr::new(10, 1, 0, 5)),
            100,
            vec![Action::output(2)],
        );
        let mut table = base_table(plan.catch_tos(SwitchId::new(1)));
        table.push(rule.clone());
        let probe = synthesize_general_probe(&rule, &table, catch, 777).unwrap();
        assert_eq!(probe.out_port, 2);
        assert_eq!(probe.packet.nw_src, Ipv4Addr::new(10, 0, 0, 5));
        assert_eq!(probe.packet.nw_tos & 0xfc, catch & 0xfc);
        assert_eq!(probe.packet.tp_src, 777, "probe id rides in tp_src");
        // The probe must match the probed rule and not the drop-all rule at
        // higher priority (there is none higher here).
        assert!(rule.match_.matches(&probe.packet, 0));
        assert_eq!(probe.expected_at_catch.nw_tos & 0xfc, catch & 0xfc);
    }

    #[test]
    fn general_probe_rejects_drop_rules() {
        let rule = known(OfMatch::wildcard_all(), 10, vec![]);
        let err =
            synthesize_general_probe(&rule, std::slice::from_ref(&rule), 0xf8, 1).unwrap_err();
        assert_eq!(err, ProbeSynthesisError::NoForwardingOutput);
        assert!(err.to_string().contains("no forwarding output"));
    }

    #[test]
    fn general_probe_rejects_tos_matching_rules() {
        let rule = known(
            OfMatch::wildcard_all().with_nw_tos(0x20),
            10,
            vec![Action::output(1)],
        );
        assert_eq!(
            synthesize_general_probe(&rule, std::slice::from_ref(&rule), 0xf8, 1),
            Err(ProbeSynthesisError::MatchesOnProbeField)
        );
    }

    #[test]
    fn general_probe_rejects_tos_rewriting_rules() {
        let rule = known(
            OfMatch::ipv4_pair(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2)),
            10,
            vec![Action::SetNwTos(0x04), Action::output(1)],
        );
        assert_eq!(
            synthesize_general_probe(&rule, std::slice::from_ref(&rule), 0xf8, 1),
            Err(ProbeSynthesisError::RewritesProbeField)
        );
    }

    #[test]
    fn general_probe_detects_indistinguishable_fallback() {
        // A lower-priority rule already forwards the same traffic to the same
        // port: the probe cannot tell whether the new rule is installed.
        let plan = ProbeFieldPlan::unique_per_switch(2);
        let rule = known(
            OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, 5), Ipv4Addr::new(10, 1, 0, 5)),
            100,
            vec![Action::output(2)],
        );
        let lower = known(
            OfMatch::wildcard_all().with_nw_dst_prefix(Ipv4Addr::new(10, 1, 0, 0), 16),
            50,
            vec![Action::output(2)],
        );
        let table = vec![rule.clone(), lower];
        assert_eq!(
            synthesize_general_probe(&rule, &table, plan.catch_tos(SwitchId::new(1)), 1),
            Err(ProbeSynthesisError::IndistinguishableFromFallback)
        );
    }

    #[test]
    fn general_probe_distinguishes_different_fallback_port() {
        // Same as above but the lower-priority rule forwards elsewhere, so the
        // probe is valid (paper: common ACL + forwarding combination).
        let plan = ProbeFieldPlan::unique_per_switch(2);
        let rule = known(
            OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, 5), Ipv4Addr::new(10, 1, 0, 5)),
            100,
            vec![Action::output(2)],
        );
        let lower = known(
            OfMatch::wildcard_all().with_nw_dst_prefix(Ipv4Addr::new(10, 1, 0, 0), 16),
            50,
            vec![Action::output(3)],
        );
        let table = vec![rule.clone(), lower];
        let probe =
            synthesize_general_probe(&rule, &table, plan.catch_tos(SwitchId::new(1)), 1).unwrap();
        assert_eq!(probe.out_port, 2);
    }

    #[test]
    fn general_probe_avoids_higher_priority_overlap_when_possible() {
        let plan = ProbeFieldPlan::unique_per_switch(2);
        // Probed rule: everything to 10.1/16 -> port 2.
        let rule = known(
            OfMatch::wildcard_all().with_nw_dst_prefix(Ipv4Addr::new(10, 1, 0, 0), 16),
            100,
            vec![Action::output(2)],
        );
        // Higher-priority rule hijacks the rule's canonical example packet
        // (src 198.51.100.1) but not other sources.
        let hijacker = known(
            OfMatch::wildcard_all().with_nw_src_prefix(PROBE_SRC_IP, 32),
            200,
            vec![Action::output(9)],
        );
        let table = vec![
            rule.clone(),
            hijacker,
            known(OfMatch::wildcard_all(), 0, vec![]),
        ];
        let probe =
            synthesize_general_probe(&rule, &table, plan.catch_tos(SwitchId::new(1)), 5).unwrap();
        // The chosen probe must not be the hijacked source address.
        assert_ne!(probe.packet.nw_src, PROBE_SRC_IP);
        assert!(rule.match_.matches(&probe.packet, 0));
    }

    #[test]
    fn general_probe_fully_covered_fails() {
        let plan = ProbeFieldPlan::unique_per_switch(2);
        let rule = known(
            OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, 5), Ipv4Addr::new(10, 1, 0, 5)),
            100,
            vec![Action::output(2)],
        );
        // A higher-priority rule covering the probed rule completely.
        let cover = known(
            OfMatch::wildcard_all().with_nw_dst_prefix(Ipv4Addr::new(10, 1, 0, 0), 16),
            200,
            vec![Action::output(9)],
        );
        let table = vec![rule.clone(), cover];
        assert_eq!(
            synthesize_general_probe(&rule, &table, plan.catch_tos(SwitchId::new(1)), 5),
            Err(ProbeSynthesisError::CoveredByHigherPriority)
        );
    }
}
