//! RUM — Rule Update Monitoring.
//!
//! This crate is the reproduction of the paper's contribution: a transparent
//! layer between an SDN controller and its OpenFlow switches that only
//! acknowledges a rule modification once the rule is demonstrably active in
//! the switch's *data plane*.  The controller can keep using standard
//! OpenFlow barriers (RUM makes them honest) or opt into fine-grained
//! per-rule acknowledgments (an error message with a reserved code, as in the
//! paper's prototype).
//!
//! The acknowledgment techniques of Section 3 are all implemented:
//!
//! | Technique | Module | Paper section |
//! |---|---|---|
//! | Barriers (baseline)        | [`technique::BarrierBaseline`]   | §3.1 |
//! | Static timeout             | [`technique::StaticTimeout`]     | §3.1 |
//! | Adaptive delay             | [`technique::AdaptiveDelay`]     | §3.1 |
//! | Sequential probing         | [`sequential::SequentialProbing`]| §3.2.1 |
//! | General probing            | [`general::GeneralProbing`]      | §3.2.2 |
//!
//! plus the reliable-barrier layer of Section 2 ([`proxy`]), probe-packet
//! synthesis with overlap analysis ([`probe`]), and the Welsh–Powell vertex
//! colouring used to assign per-switch probe values ([`coloring`]).
//!
//! Deployment forms:
//! * [`proxy::RumProxy`] — a per-switch proxy node for the discrete-event
//!   simulator (all experiments run this way).
//! * the `rum-tcp` crate — a real TCP proxy built on the same message-level
//!   logic, mirroring the paper's POX prototype.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coloring;
pub mod config;
pub mod general;
pub mod probe;
pub mod proxy;
pub mod sequential;
pub mod technique;

pub use config::{ProbeFieldPlan, RumConfig, SwitchPortMap, TechniqueConfig};
pub use proxy::{RumLayer, RumProxy};
pub use technique::{AckTechnique, TechniqueOutput};
