//! RUM — Rule Update Monitoring.
//!
//! This crate is the reproduction of the paper's contribution: a transparent
//! layer between an SDN controller and its OpenFlow switches that only
//! acknowledges a rule modification once the rule is demonstrably active in
//! the switch's *data plane*.  The controller can keep using standard
//! OpenFlow barriers (RUM makes them honest) or opt into fine-grained
//! per-rule acknowledgments (an error message with a reserved code, as in the
//! paper's prototype).
//!
//! # Architecture: one sans-IO core, many drivers
//!
//! All message-level logic lives in the [`engine::RumEngine`], a pure state
//! machine with no I/O: drivers feed it typed [`engine::Input`]s and execute
//! the typed [`engine::Effect`]s it returns.  Deployments are thin drivers:
//!
//! * [`proxy::RumProxy`] / [`proxy::deploy`] — nodes for the discrete-event
//!   simulator (all experiments run this way).
//! * the `rum-tcp` crate — a real TCP proxy chain on std sockets, mirroring
//!   the paper's POX prototype, driving the *same* engine.
//!
//! Engines are configured through the fluent [`RumBuilder`]; switches are
//! identified by the deployment-agnostic [`SwitchId`] newtype.
//!
//! # Techniques
//!
//! The acknowledgment techniques of Section 3 are all implemented:
//!
//! | Technique | Module | Paper section |
//! |---|---|---|
//! | Barriers (baseline)        | [`technique::BarrierBaseline`]   | §3.1 |
//! | Static timeout             | [`technique::StaticTimeout`]     | §3.1 |
//! | Adaptive delay             | [`technique::AdaptiveDelay`]     | §3.1 |
//! | Sequential probing         | [`sequential::SequentialProbing`]| §3.2.1 |
//! | General probing            | [`general::GeneralProbing`]      | §3.2.2 |
//!
//! plus the reliable-barrier layer of Section 2 (inside the engine),
//! probe-packet synthesis with overlap analysis ([`probe`]), and the
//! Welsh–Powell vertex colouring used to assign per-switch probe values
//! ([`coloring`]).
//!
//! The [`technique::AckTechnique`] trait is the internal extension point for
//! new techniques; deployments never interact with it directly — they only
//! see the engine's input/effect interface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coloring;
pub mod config;
pub mod engine;
pub mod general;
pub mod probe;
pub mod proxy;
pub mod sequential;
pub mod shard;
pub mod technique;

pub use config::{ProbeFieldPlan, RumBuilder, RumConfig, SwitchPortMap, TechniqueConfig};
pub use engine::{
    ConfirmRecord, Effect, Input, ProxyStats, RumEngine, SwitchId, TimerToken, PROXY_XID_BASE,
};
pub use proxy::{deploy, RumHandle, RumProxy};
pub use shard::{Routing, ShardRouter, ShardedEngine};
