//! Declarative resynchronisation: restore wiped switch state after restart.
//!
//! Section 4 of the paper shows that a switch restart silently erases every
//! installed rule while the control channel simply reconnects — the
//! controller's view and the switch's flow table diverge with no error on
//! the wire.  RUM re-issues *unconfirmed* modifications, but rules confirmed
//! *before* the restart are gone for good unless someone remembers them.
//!
//! [`Reconciler`] is that memory plus the repair loop, sans-IO like
//! [`crate::UpdateSession`]:
//!
//! * A [`DesiredStore`] records every rule the controller has confirmed
//!   (plus preinstalled state), keyed by strict OpenFlow identity
//!   `(match, priority)`.  Deletes leave the store; a `FlowRemoved` from an
//!   idle/hard timeout evicts the aged-out rule so resync never resurrects
//!   it.
//! * On [`ResyncInput::SwitchReconnected`] — once the main update session
//!   has settled ([`ResyncInput::SessionSettled`]) so the two never race —
//!   the reconciler reads the switch's flow table back with a wildcard
//!   flow-stats request (reassembling multipart fragments via
//!   [`FlowStatsAccumulator`]), diffs actual against desired, and re-issues
//!   the delta through a normal acknowledged [`crate::UpdateSession`]:
//!   missing or mismatched rules become adds under their original cookies
//!   (so the RUM proxy re-probes and re-acks them), stray rules become
//!   strict deletes verified by the *next* readback rather than by an ack.
//! * It re-reads until a readback shows zero difference (convergence) or
//!   [`ResyncConfig::max_rounds`] is exhausted.  Lost stats replies are
//!   re-requested and successive rounds are paced by the shared
//!   [`BackoffPolicy`] — bounded exponential with deterministic jitter, so
//!   both drivers replay the identical schedule for a given seed.
//!
//! Everything observable is deterministic: the per-round [`ResyncRound`]
//! trace is compared cell-for-cell across the simulator and TCP drivers in
//! the `restart_resync` scenario.

use crate::backoff::BackoffPolicy;
use crate::plan::{SwitchRef, UpdatePlan};
use crate::session::{
    AckMode, ConnId, FailurePolicy, SessionEffect, SessionInput, SessionTimerToken, UpdateSession,
};
use openflow::messages::{
    FlowMod, FlowModCommand, FlowRemoved, FlowStatsAccumulator, FlowStatsEntry, StatsReply,
    StatsRequest,
};
use openflow::{constants::port, OfMatch, OfMessage, Xid};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use telemetry::{AtomicHistogram, Counter, Gauge, Registry};

/// First xid used for readback flow-stats requests.  Each (re-)request gets
/// a fresh xid so a straggler reply to a superseded request can never be
/// mistaken for the current one.  Below the RUM proxy's reserved xid space.
pub const RESYNC_XID_BASE: Xid = 0x6000_0000;

/// First xid used for the strict deletes of stray rules (sent outside the
/// delta session, verified by the next readback).  Disjoint from readback
/// xids and below the RUM reserved space.
pub const RESYNC_DELETE_XID_BASE: Xid = 0x7000_0000;

/// All reconciler timer tokens are `>= RESYNC_TIMER_BASE`; session timer
/// tokens are small sequence numbers, so drivers route a fired timer by
/// magnitude alone.
pub const RESYNC_TIMER_BASE: u64 = 1 << 32;

/// Rules whose cookie is in the RUM proxy's reserved namespace (probe and
/// catch rules) belong to the proxy, not the controller; readbacks ignore
/// them.  Mirrors `rum::PROXY_XID_BASE` — the crates cannot share the
/// constant because `rum` dev-depends on this crate.
const RUM_RESERVED_ID_BASE: u64 = 0x8000_0000;

/// Backoff key salt for readback re-requests (mixed with the switch ref).
const READBACK_BACKOFF_KEY: u64 = 0x5EAD_BACC;

/// Backoff key salt for inter-round pacing (mixed with the switch ref).
const ROUND_BACKOFF_KEY: u64 = 0x0F01_10D5;

/// Readback re-requests per round before the switch is declared lost.
const MAX_READBACK_ATTEMPTS: u32 = 32;

/// Everything the reconciler wants observed, under `resync.*`.
#[derive(Debug)]
struct ResyncMetrics {
    rounds: Arc<Counter>,
    delta_mods: Arc<Counter>,
    re_requests: Arc<Counter>,
    converged: Arc<Gauge>,
    final_diff: Arc<Gauge>,
    time_to_convergence_us: Arc<AtomicHistogram>,
}

impl ResyncMetrics {
    fn new(registry: &Registry) -> Self {
        ResyncMetrics {
            rounds: registry.counter("resync.rounds"),
            delta_mods: registry.counter("resync.delta_mods"),
            re_requests: registry.counter("resync.re_requests"),
            converged: registry.gauge("resync.converged"),
            final_diff: registry.gauge("resync.final_diff"),
            time_to_convergence_us: registry.histogram("resync.time_to_convergence_us"),
        }
    }
}

/// The controller's declarative view of what each switch's flow table
/// should contain, keyed by strict OpenFlow identity `(match, priority)`.
///
/// Confirmed adds join the store, confirmed deletes leave it, and a
/// `FlowRemoved` (idle or hard timeout) evicts the aged-out rule so a later
/// resync never resurrects state the network already retired.
#[derive(Debug, Clone, Default)]
pub struct DesiredStore {
    rules: HashMap<SwitchRef, HashMap<(OfMatch, u16), FlowMod>>,
}

impl DesiredStore {
    /// An empty store.
    pub fn new() -> Self {
        DesiredStore::default()
    }

    /// Records a *confirmed* flow modification against `switch`, applying
    /// the command's own semantics: adds and modifies upsert the strict
    /// `(match, priority)` slot (stored normalised to an `Add` so it can be
    /// re-issued verbatim), a strict delete clears that slot, and a loose
    /// delete clears every slot whose match it covers (priority ignored,
    /// per OpenFlow 1.0 loose-delete semantics).
    pub fn note_confirmed(&mut self, switch: SwitchRef, flow_mod: &FlowMod) {
        let table = self.rules.entry(switch).or_default();
        match flow_mod.command {
            FlowModCommand::Add | FlowModCommand::Modify | FlowModCommand::ModifyStrict => {
                let mut stored = flow_mod.clone();
                stored.command = FlowModCommand::Add;
                stored.buffer_id = openflow::constants::NO_BUFFER;
                table.insert((flow_mod.match_, flow_mod.priority), stored);
            }
            FlowModCommand::DeleteStrict => {
                table.remove(&(flow_mod.match_, flow_mod.priority));
            }
            FlowModCommand::Delete => {
                table.retain(|(m, _), _| !flow_mod.match_.covers(m));
            }
        }
    }

    /// Evicts the rule a `FlowRemoved` message names (strict identity).
    /// Called for idle/hard-timeout expiries so resync chases the switch's
    /// view of time, not a stale snapshot.
    pub fn note_flow_removed(&mut self, switch: SwitchRef, body: &FlowRemoved) {
        if let Some(table) = self.rules.get_mut(&switch) {
            table.remove(&(body.match_, body.priority));
        }
    }

    /// Number of desired rules for `switch`.
    pub fn len(&self, switch: SwitchRef) -> usize {
        self.rules.get(&switch).map_or(0, HashMap::len)
    }

    /// True if no switch has any desired rule.
    pub fn is_empty(&self) -> bool {
        self.rules.values().all(HashMap::is_empty)
    }

    /// Desired rules for `switch`, in unspecified order.
    pub fn rules(&self, switch: SwitchRef) -> impl Iterator<Item = &FlowMod> {
        self.rules
            .get(&switch)
            .into_iter()
            .flat_map(HashMap::values)
    }

    /// The desired rule at strict identity `(match, priority)`, if any.
    pub fn get(&self, switch: SwitchRef, match_: &OfMatch, priority: u16) -> Option<&FlowMod> {
        self.rules.get(&switch)?.get(&(*match_, priority))
    }

    fn table(&self, switch: SwitchRef) -> Option<&HashMap<(OfMatch, u16), FlowMod>> {
        self.rules.get(&switch)
    }
}

/// Per-round observation, recorded after every completed readback.  These
/// traces must be cell-for-cell identical across drivers for a given seed —
/// that equality is the `restart_resync` scenario's cross-driver proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResyncRound {
    /// 1-based round number.
    pub round: u32,
    /// Rules read back from the switch (RUM-owned rules filtered out).
    pub actual: usize,
    /// Desired rules absent from the readback.
    pub missing: usize,
    /// Rules present under the right `(match, priority)` but with the wrong
    /// cookie or actions.
    pub mismatched: usize,
    /// Read-back rules the desired store does not contain.
    pub stray: usize,
    /// Stats re-requests this round (readback replies lost to faults).
    pub re_requests: u32,
}

impl ResyncRound {
    /// Total difference between actual and desired this round.
    pub fn diff(&self) -> usize {
        self.missing + self.mismatched + self.stray
    }
}

/// Terminal-and-progress summary for one switch's resync.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResyncStatus {
    /// Completed readback rounds.
    pub rounds: u32,
    /// True once a readback matched the desired store exactly.
    pub converged: bool,
    /// Difference observed by the most recent readback (0 when converged).
    pub final_diff: usize,
    /// Total readback re-requests across all rounds.
    pub re_requests: u32,
    /// Total delta modifications issued (re-adds plus stray deletes).
    pub delta_mods: u64,
    /// When the resync started (driver epoch).
    pub started_at: Option<Duration>,
    /// When convergence was observed (driver epoch).
    pub converged_at: Option<Duration>,
}

/// Tunables for the reconciliation loop.
#[derive(Debug, Clone, Copy)]
pub struct ResyncConfig {
    /// Schedule shared by readback re-requests and inter-round pacing:
    /// attempt/round `n` waits `backoff.delay(key, n)`, bounded by the cap.
    pub backoff: BackoffPolicy,
    /// Readback rounds before giving up on a switch.
    pub max_rounds: u32,
    /// Acknowledgment mode for delta update sessions.
    pub ack_mode: AckMode,
    /// Outstanding-modification window for delta update sessions.
    pub window: usize,
    /// Failure policy for delta update sessions.
    pub failure_policy: FailurePolicy,
}

impl Default for ResyncConfig {
    fn default() -> Self {
        ResyncConfig {
            backoff: BackoffPolicy::new(Duration::from_millis(100), Duration::from_millis(1600)),
            max_rounds: 8,
            ack_mode: AckMode::RumAcks,
            window: 16,
            failure_policy: FailurePolicy::retry(Duration::from_millis(100), 3),
        }
    }
}

/// Everything a driver can feed into the reconciler.
#[derive(Debug, Clone, PartialEq)]
pub enum ResyncInput {
    /// The switch behind `conn` reconnected — its table may be wiped.
    /// Resync starts once the main session has also settled.
    SwitchReconnected {
        /// The connection that reconnected (index == plan `SwitchRef`).
        conn: ConnId,
    },
    /// The main update session reached its outcome (completed or aborted);
    /// pending reconnects may now be reconciled without racing it.
    SessionSettled,
    /// The switch behind `conn` sent `message`.  Drivers forward every
    /// switch message; the reconciler picks out what concerns it (stats
    /// replies, flow-removed notifications, delta-session acknowledgments)
    /// and ignores the rest.
    FromSwitch {
        /// The connection that carried the message.
        conn: ConnId,
        /// The decoded message.
        message: OfMessage,
    },
    /// A timer previously requested via [`ResyncEffect::ArmTimer`] expired.
    TimerFired {
        /// The token from the arming effect (always `>= RESYNC_TIMER_BASE`).
        token: u64,
    },
}

/// Everything the reconciler can ask a driver to do.
#[derive(Debug, Clone, PartialEq)]
pub enum ResyncEffect {
    /// Send `message` on switch connection `conn`.
    Send {
        /// The destination connection.
        conn: ConnId,
        /// The message to send.
        message: OfMessage,
    },
    /// Arm a timer: feed [`ResyncInput::TimerFired`] with `token` back
    /// after `delay`.
    ArmTimer {
        /// How long to wait.
        delay: Duration,
        /// Token identifying the timer (always `>= RESYNC_TIMER_BASE`).
        token: u64,
    },
    /// A readback matched the desired store exactly; this switch is done.
    Converged {
        /// The reconciled switch's connection.
        conn: ConnId,
        /// Rounds it took.
        rounds: u32,
        /// Time (driver epoch) of the converging readback.
        at: Duration,
    },
    /// `max_rounds` (or the readback re-request bound) was exhausted with a
    /// nonzero difference remaining.
    GaveUp {
        /// The unreconciled switch's connection.
        conn: ConnId,
        /// Rounds completed before giving up.
        rounds: u32,
        /// Difference observed by the last completed readback.
        final_diff: usize,
    },
}

/// True if `token` belongs to the reconciler's timer namespace (drivers
/// route fired timers on this).
pub const fn is_resync_token(token: u64) -> bool {
    token >= RESYNC_TIMER_BASE
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Phase {
    /// Nothing to do (no reconnect observed, or resync finished).
    #[default]
    Idle,
    /// A flow-stats readback is outstanding.
    Readback,
    /// A delta update session is executing.
    Delta,
    /// Waiting out the inter-round backoff before the next readback.
    Waiting,
    /// Converged or gave up; terminal until the next reconnect.
    Done,
}

#[derive(Debug, Clone, Copy)]
enum TimerPurpose {
    /// The readback with this xid was not answered in time.
    ReadbackTimeout { switch: SwitchRef, xid: Xid },
    /// The inter-round pause elapsed; start the next readback.
    NextRound { switch: SwitchRef },
    /// A delta-session timer, wrapped so its token lands in the resync
    /// namespace; `inner` is the session's own token.
    Delta { switch: SwitchRef, inner: u64 },
}

#[derive(Debug, Default)]
struct SwitchState {
    /// Reconnect seen but resync not yet started (gate not open).
    reconnect_pending: bool,
    phase: Phase,
    /// 1-based current round (incremented when its readback is issued).
    round: u32,
    readback_attempt: u32,
    round_re_requests: u32,
    current_xid: Option<Xid>,
    acc: FlowStatsAccumulator,
    delta: Option<UpdateSession>,
    status: ResyncStatus,
    trace: Vec<ResyncRound>,
}

/// The sans-IO reconciliation engine.  Drivers feed [`ResyncInput`]s with
/// the current time and execute the returned [`ResyncEffect`]s; both the
/// simulator and the TCP prototype drive this same state machine.
#[derive(Debug)]
pub struct Reconciler {
    config: ResyncConfig,
    store: DesiredStore,
    switches: HashMap<SwitchRef, SwitchState>,
    session_settled: bool,
    next_xid: Xid,
    next_delete_xid: Xid,
    next_token: u64,
    timers: HashMap<u64, TimerPurpose>,
    metrics: Option<ResyncMetrics>,
}

impl Reconciler {
    /// Creates a reconciler with an empty desired store.
    pub fn new(config: ResyncConfig) -> Self {
        Reconciler {
            config,
            store: DesiredStore::new(),
            switches: HashMap::new(),
            session_settled: false,
            next_xid: RESYNC_XID_BASE,
            next_delete_xid: RESYNC_DELETE_XID_BASE,
            next_token: RESYNC_TIMER_BASE,
            timers: HashMap::new(),
            metrics: None,
        }
    }

    /// Publishes progress into `registry` under `resync.*`: rounds, delta
    /// modifications, stats re-requests, the converged-switch and
    /// total-final-diff gauges and the time-to-convergence histogram.
    pub fn attach_metrics(&mut self, registry: &Registry) {
        self.metrics = Some(ResyncMetrics::new(registry));
    }

    /// The desired store (read side).
    pub fn store(&self) -> &DesiredStore {
        &self.store
    }

    /// The desired store (write side) — drivers upsert confirmed rules and
    /// preinstalled state here.
    pub fn store_mut(&mut self) -> &mut DesiredStore {
        &mut self.store
    }

    /// Resync progress for `switch`, if one was ever observed.
    pub fn status(&self, switch: SwitchRef) -> Option<&ResyncStatus> {
        self.switches.get(&switch).map(|s| &s.status)
    }

    /// Per-round trace for `switch` (the cross-driver comparison artifact).
    pub fn trace(&self, switch: SwitchRef) -> &[ResyncRound] {
        self.switches.get(&switch).map_or(&[], |s| &s.trace)
    }

    /// True while any switch's resync is between start and terminal state.
    pub fn active(&self) -> bool {
        self.switches
            .values()
            .any(|s| matches!(s.phase, Phase::Readback | Phase::Delta | Phase::Waiting))
    }

    /// Number of switches whose latest resync converged.
    pub fn converged_count(&self) -> usize {
        self.switches
            .values()
            .filter(|s| s.status.converged)
            .count()
    }

    /// Number of switches whose latest resync reached a terminal state
    /// (converged or gave up) — what a driver waits on.
    pub fn terminal_count(&self) -> usize {
        self.switches
            .values()
            .filter(|s| s.phase == Phase::Done)
            .count()
    }

    /// Feeds one input, returns the effects the driver must execute.
    pub fn handle(&mut self, now: Duration, input: ResyncInput) -> Vec<ResyncEffect> {
        let mut effects = Vec::new();
        match input {
            ResyncInput::SwitchReconnected { conn } => {
                let switch = conn.index();
                let state = self.switches.entry(switch).or_default();
                match state.phase {
                    // Already mid-resync: the loop re-reads until the table
                    // matches, so a second wipe is caught by construction.
                    Phase::Readback | Phase::Delta | Phase::Waiting => {}
                    Phase::Idle | Phase::Done => {
                        state.reconnect_pending = true;
                        if self.session_settled {
                            self.start(now, switch, &mut effects);
                        }
                    }
                }
            }
            ResyncInput::SessionSettled => {
                self.session_settled = true;
                let pending: Vec<SwitchRef> = self
                    .switches
                    .iter()
                    .filter(|(_, s)| s.reconnect_pending)
                    .map(|(&r, _)| r)
                    .collect();
                for switch in pending {
                    self.start(now, switch, &mut effects);
                }
            }
            ResyncInput::FromSwitch { conn, message } => {
                self.on_from_switch(now, conn, message, &mut effects);
            }
            ResyncInput::TimerFired { token } => {
                if let Some(purpose) = self.timers.remove(&token) {
                    self.on_timer(now, purpose, &mut effects);
                }
            }
        }
        effects
    }

    /// Opens a fresh resync for `switch` (gate already checked).
    fn start(&mut self, now: Duration, switch: SwitchRef, effects: &mut Vec<ResyncEffect>) {
        let state = self.switches.get_mut(&switch).expect("state exists");
        state.reconnect_pending = false;
        state.round = 0;
        state.trace.clear();
        state.delta = None;
        state.status = ResyncStatus {
            started_at: Some(now),
            ..ResyncStatus::default()
        };
        self.publish_gauges();
        self.begin_readback(now, switch, effects);
    }

    /// Starts round `round + 1`: a fresh wildcard flow-stats readback.
    fn begin_readback(
        &mut self,
        now: Duration,
        switch: SwitchRef,
        effects: &mut Vec<ResyncEffect>,
    ) {
        let max_rounds = self.config.max_rounds;
        let state = self.switches.get_mut(&switch).expect("state exists");
        if state.round >= max_rounds {
            let rounds = state.round;
            let final_diff = state.status.final_diff;
            state.phase = Phase::Done;
            self.publish_gauges();
            effects.push(ResyncEffect::GaveUp {
                conn: ConnId::new(switch),
                rounds,
                final_diff,
            });
            return;
        }
        state.round += 1;
        state.phase = Phase::Readback;
        state.readback_attempt = 0;
        state.round_re_requests = 0;
        self.send_readback(now, switch, effects);
    }

    /// Issues the flow-stats request for the current round/attempt and arms
    /// its backed-off timeout.
    fn send_readback(
        &mut self,
        _now: Duration,
        switch: SwitchRef,
        effects: &mut Vec<ResyncEffect>,
    ) {
        let xid = self.next_xid;
        self.next_xid += 1;
        let state = self.switches.get_mut(&switch).expect("state exists");
        state.current_xid = Some(xid);
        state.acc.reset();
        let attempt = state.readback_attempt;
        effects.push(ResyncEffect::Send {
            conn: ConnId::new(switch),
            message: OfMessage::StatsRequest {
                xid,
                body: StatsRequest::Flow {
                    match_: OfMatch::wildcard_all(),
                    table_id: 0xff,
                    out_port: port::NONE,
                },
            },
        });
        let delay = self
            .config
            .backoff
            .delay(switch as u64 ^ READBACK_BACKOFF_KEY, attempt);
        let token = self.alloc_timer(TimerPurpose::ReadbackTimeout { switch, xid });
        effects.push(ResyncEffect::ArmTimer { delay, token });
    }

    fn alloc_timer(&mut self, purpose: TimerPurpose) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        self.timers.insert(token, purpose);
        token
    }

    fn on_timer(&mut self, now: Duration, purpose: TimerPurpose, effects: &mut Vec<ResyncEffect>) {
        match purpose {
            TimerPurpose::ReadbackTimeout { switch, xid } => {
                let Some(state) = self.switches.get_mut(&switch) else {
                    return;
                };
                // Only the timeout of the *current* readback matters; a
                // reply (or a newer re-request) orphans older timers.
                if state.phase != Phase::Readback || state.current_xid != Some(xid) {
                    return;
                }
                state.readback_attempt += 1;
                if state.readback_attempt >= MAX_READBACK_ATTEMPTS {
                    let rounds = state.round;
                    let final_diff = state.status.final_diff;
                    state.phase = Phase::Done;
                    self.publish_gauges();
                    effects.push(ResyncEffect::GaveUp {
                        conn: ConnId::new(switch),
                        rounds,
                        final_diff,
                    });
                    return;
                }
                state.round_re_requests += 1;
                state.status.re_requests += 1;
                if let Some(m) = &self.metrics {
                    m.re_requests.inc();
                }
                self.send_readback(now, switch, effects);
            }
            TimerPurpose::NextRound { switch } => {
                let Some(state) = self.switches.get_mut(&switch) else {
                    return;
                };
                if state.phase != Phase::Waiting {
                    return;
                }
                self.begin_readback(now, switch, effects);
            }
            TimerPurpose::Delta { switch, inner } => {
                self.route_delta(
                    now,
                    switch,
                    SessionInput::TimerFired {
                        token: SessionTimerToken::from_raw(inner),
                    },
                    effects,
                );
            }
        }
    }

    fn on_from_switch(
        &mut self,
        now: Duration,
        conn: ConnId,
        message: OfMessage,
        effects: &mut Vec<ResyncEffect>,
    ) {
        let switch = conn.index();
        // Aging applies whether or not a resync is running: an expired rule
        // must never be resurrected by a later reconciliation.
        if let OfMessage::FlowRemoved { ref body, .. } = message {
            self.store.note_flow_removed(switch, body);
            return;
        }
        let Some(state) = self.switches.get_mut(&switch) else {
            return;
        };
        match (state.phase, &message) {
            (Phase::Readback, OfMessage::StatsReply { xid, more, body }) => {
                if state.current_xid != Some(*xid) {
                    return; // straggler from a superseded request
                }
                let StatsReply::Flow(entries) = body else {
                    return;
                };
                if let Some(complete) = state.acc.push(*xid, *more, entries.clone()) {
                    state.current_xid = None;
                    self.finish_readback(now, switch, complete, effects);
                }
            }
            (Phase::Delta, _) => {
                self.route_delta(
                    now,
                    switch,
                    SessionInput::FromSwitch { conn, message },
                    effects,
                );
            }
            _ => {}
        }
    }

    /// A complete (defragmented) readback arrived: diff it against the
    /// desired store and either converge or issue the repair delta.
    fn finish_readback(
        &mut self,
        now: Duration,
        switch: SwitchRef,
        entries: Vec<FlowStatsEntry>,
        effects: &mut Vec<ResyncEffect>,
    ) {
        // The switch's controller-owned table view, strict identity keyed.
        let mut actual: HashMap<(OfMatch, u16), &FlowStatsEntry> = HashMap::new();
        for entry in &entries {
            if entry.cookie >= RUM_RESERVED_ID_BASE {
                continue; // RUM probe/catch rules belong to the proxy
            }
            actual.insert((entry.match_, entry.priority), entry);
        }

        let empty = HashMap::new();
        let desired = self.store.table(switch).unwrap_or(&empty);

        let mut missing: Vec<&FlowMod> = Vec::new();
        let mut mismatched: Vec<&FlowMod> = Vec::new();
        for (key, want) in desired {
            match actual.get(key) {
                None => missing.push(want),
                Some(have) => {
                    if have.cookie != want.cookie || have.actions != want.actions {
                        mismatched.push(want);
                    }
                }
            }
        }
        let stray: Vec<(OfMatch, u16)> = actual
            .keys()
            .filter(|key| !desired.contains_key(*key))
            .copied()
            .collect();

        let state = self.switches.get_mut(&switch).expect("state exists");
        let round = ResyncRound {
            round: state.round,
            actual: actual.len(),
            missing: missing.len(),
            mismatched: mismatched.len(),
            stray: stray.len(),
            re_requests: state.round_re_requests,
        };
        let diff = round.diff();
        state.trace.push(round);
        state.status.rounds = state.round;
        state.status.final_diff = diff;
        if let Some(m) = &self.metrics {
            m.rounds.inc();
        }

        if diff == 0 {
            state.phase = Phase::Done;
            state.status.converged = true;
            state.status.converged_at = Some(now);
            let rounds = state.round;
            let elapsed = state
                .status
                .started_at
                .map_or(Duration::ZERO, |t0| now.saturating_sub(t0));
            if let Some(m) = &self.metrics {
                m.time_to_convergence_us.record(elapsed.as_micros() as u64);
            }
            self.publish_gauges();
            effects.push(ResyncEffect::Converged {
                conn: ConnId::new(switch),
                rounds,
                at: now,
            });
            return;
        }

        // Build the repair delta.  Re-adds go through a normal acknowledged
        // update session under their original cookies, so the RUM proxy
        // re-probes each rule and the controller gets a genuine positive
        // acknowledgment.  Stray deletes have no probe-able effect, so they
        // are sent directly and verified by the next readback instead.
        let repairs: Vec<FlowMod> = missing.into_iter().chain(mismatched).cloned().collect();
        let delete_count = stray.len() as u64;
        for (match_, priority) in stray {
            let xid = self.next_delete_xid;
            self.next_delete_xid += 1;
            effects.push(ResyncEffect::Send {
                conn: ConnId::new(switch),
                message: OfMessage::FlowMod {
                    xid,
                    body: FlowMod::delete_strict(match_, priority),
                },
            });
        }

        let mut plan = UpdatePlan::new();
        for fm in repairs {
            // Session ids double as cookies, so two desired rules sharing a
            // cookie cannot ride one plan.  Installing under a substitute
            // cookie would just read back as mismatched, so defer the
            // duplicate instead: the next round rediscovers it as missing
            // and repairs it cookie-faithfully on its own.
            let _ = plan.add(fm.cookie, switch, fm);
        }

        let state = self.switches.get_mut(&switch).expect("state exists");
        let delta_len = plan.len() as u64 + delete_count;
        state.status.delta_mods += delta_len;
        if let Some(m) = &self.metrics {
            m.delta_mods.add(delta_len);
        }
        self.publish_gauges();

        if plan.is_empty() {
            self.wait_next_round(switch, effects);
        } else {
            let mut session = UpdateSession::new(plan, self.config.ack_mode, self.config.window);
            session.set_failure_policy(self.config.failure_policy);
            // A repair's inverse is damage: rolling back a timed-out re-add
            // would delete the very rule this round just restored, and the
            // next readback corrects any over-application anyway.
            session.set_rollback_on_abort(false);
            let state = self.switches.get_mut(&switch).expect("state exists");
            state.phase = Phase::Delta;
            state.delta = Some(session);
            self.route_delta(now, switch, SessionInput::Started, effects);
        }
    }

    /// Arms the backed-off pause before the next readback round.
    fn wait_next_round(&mut self, switch: SwitchRef, effects: &mut Vec<ResyncEffect>) {
        let state = self.switches.get_mut(&switch).expect("state exists");
        state.phase = Phase::Waiting;
        let delay = self
            .config
            .backoff
            .delay(switch as u64 ^ ROUND_BACKOFF_KEY, state.round);
        let token = self.alloc_timer(TimerPurpose::NextRound { switch });
        effects.push(ResyncEffect::ArmTimer { delay, token });
    }

    /// Feeds `input` to the delta session and translates its effects.
    fn route_delta(
        &mut self,
        now: Duration,
        switch: SwitchRef,
        input: SessionInput,
        effects: &mut Vec<ResyncEffect>,
    ) {
        let Some(state) = self.switches.get_mut(&switch) else {
            return;
        };
        let Some(session) = state.delta.as_mut() else {
            return;
        };
        let session_effects = session.handle(now, input);
        let mut settled = false;
        for effect in session_effects {
            match effect {
                SessionEffect::Send { conn, message } => {
                    effects.push(ResyncEffect::Send { conn, message });
                }
                SessionEffect::ArmTimer { delay, token } => {
                    let outer = self.alloc_timer(TimerPurpose::Delta {
                        switch,
                        inner: token.raw(),
                    });
                    effects.push(ResyncEffect::ArmTimer {
                        delay,
                        token: outer,
                    });
                }
                // A re-add confirmation changes nothing in the store (the
                // rule is already desired); rejections and per-mod details
                // are visible through the session until it is dropped.
                SessionEffect::Confirmed { .. } | SessionEffect::Rejected { .. } => {}
                // Either way the round is over; the next readback decides
                // whether the repair took.
                SessionEffect::Completed { .. } | SessionEffect::Aborted { .. } => {
                    settled = true;
                }
            }
        }
        if settled {
            let state = self.switches.get_mut(&switch).expect("state exists");
            state.delta = None;
            self.wait_next_round(switch, effects);
        }
    }

    /// Mirrors converged/final-diff into their gauges, when metrics are on.
    fn publish_gauges(&self) {
        if let Some(m) = &self.metrics {
            m.converged.set(self.converged_count() as i64);
            let total_diff: usize = self
                .switches
                .values()
                .map(|s| {
                    if s.status.converged {
                        0
                    } else {
                        s.status.final_diff
                    }
                })
                .sum();
            m.final_diff.set(total_diff as i64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::actions::Action;

    fn rule(priority: u16, cookie: u64) -> FlowMod {
        let mut fm = FlowMod::add(
            OfMatch::wildcard_all(),
            priority,
            vec![Action::Output {
                port: 1,
                max_len: 0,
            }],
        );
        fm.cookie = cookie;
        fm
    }

    fn stats_entry(fm: &FlowMod) -> FlowStatsEntry {
        FlowStatsEntry {
            table_id: 0,
            match_: fm.match_,
            duration_sec: 0,
            duration_nsec: 0,
            priority: fm.priority,
            idle_timeout: fm.idle_timeout,
            hard_timeout: fm.hard_timeout,
            cookie: fm.cookie,
            packet_count: 0,
            byte_count: 0,
            actions: fm.actions.clone(),
        }
    }

    fn flow_reply(xid: Xid, more: bool, entries: Vec<FlowStatsEntry>) -> OfMessage {
        OfMessage::StatsReply {
            xid,
            more,
            body: StatsReply::Flow(entries),
        }
    }

    fn config() -> ResyncConfig {
        ResyncConfig {
            backoff: BackoffPolicy::new(Duration::from_millis(100), Duration::from_millis(800)),
            max_rounds: 4,
            ack_mode: AckMode::RumAcks,
            window: 16,
            failure_policy: FailurePolicy::disabled(),
        }
    }

    fn sent_stats_xid(effects: &[ResyncEffect]) -> Option<Xid> {
        effects.iter().find_map(|e| match e {
            ResyncEffect::Send {
                message: OfMessage::StatsRequest { xid, .. },
                ..
            } => Some(*xid),
            _ => None,
        })
    }

    fn armed_timers(effects: &[ResyncEffect]) -> Vec<(Duration, u64)> {
        effects
            .iter()
            .filter_map(|e| match e {
                ResyncEffect::ArmTimer { delay, token } => Some((*delay, *token)),
                _ => None,
            })
            .collect()
    }

    fn sent_flow_mod_ids(effects: &[ResyncEffect]) -> Vec<u64> {
        effects
            .iter()
            .filter_map(|e| match e {
                ResyncEffect::Send {
                    message: OfMessage::FlowMod { body, .. },
                    ..
                } => Some(body.cookie),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn desired_store_tracks_rule_lifecycle() {
        let mut store = DesiredStore::new();
        store.note_confirmed(0, &rule(100, 1));
        store.note_confirmed(0, &rule(200, 2));
        assert_eq!(store.len(0), 2);

        // Strict delete removes exactly one identity.
        store.note_confirmed(0, &FlowMod::delete_strict(OfMatch::wildcard_all(), 100));
        assert_eq!(store.len(0), 1);
        assert!(store.get(0, &OfMatch::wildcard_all(), 200).is_some());

        // A FlowRemoved (aged-out rule) evicts its identity too.
        let removed = FlowRemoved {
            match_: OfMatch::wildcard_all(),
            cookie: 2,
            priority: 200,
            reason: openflow::constants::flow_removed_reason::IDLE_TIMEOUT,
            duration_sec: 1,
            duration_nsec: 0,
            idle_timeout: 1,
            packet_count: 0,
            byte_count: 0,
        };
        store.note_flow_removed(0, &removed);
        assert!(store.is_empty());
    }

    #[test]
    fn desired_store_loose_delete_covers() {
        let mut store = DesiredStore::new();
        store.note_confirmed(0, &rule(100, 1));
        store.note_confirmed(0, &rule(200, 2));
        // A wildcard-all loose delete covers everything regardless of
        // priority.
        store.note_confirmed(0, &FlowMod::delete(OfMatch::wildcard_all()));
        assert!(store.is_empty());
    }

    #[test]
    fn gate_requires_both_reconnect_and_settled_session() {
        let mut r = Reconciler::new(config());
        r.store_mut().note_confirmed(0, &rule(100, 1));

        // Reconnect alone: nothing (main session still running).
        let fx = r.handle(
            Duration::ZERO,
            ResyncInput::SwitchReconnected {
                conn: ConnId::new(0),
            },
        );
        assert!(fx.is_empty());

        // Session settles: readback starts.
        let fx = r.handle(Duration::from_millis(1), ResyncInput::SessionSettled);
        assert_eq!(sent_stats_xid(&fx), Some(RESYNC_XID_BASE));
        assert_eq!(armed_timers(&fx).len(), 1);
    }

    #[test]
    fn gate_is_order_independent() {
        let mut r = Reconciler::new(config());
        r.store_mut().note_confirmed(0, &rule(100, 1));
        assert!(r
            .handle(Duration::ZERO, ResyncInput::SessionSettled)
            .is_empty());
        let fx = r.handle(
            Duration::from_millis(1),
            ResyncInput::SwitchReconnected {
                conn: ConnId::new(0),
            },
        );
        assert_eq!(sent_stats_xid(&fx), Some(RESYNC_XID_BASE));
    }

    #[test]
    fn converges_in_two_rounds_after_wipe() {
        let mut r = Reconciler::new(config());
        let a = rule(100, 1);
        let b = rule(200, 2);
        r.store_mut().note_confirmed(0, &a);
        r.store_mut().note_confirmed(0, &b);
        r.handle(Duration::ZERO, ResyncInput::SessionSettled);
        let fx = r.handle(
            Duration::ZERO,
            ResyncInput::SwitchReconnected {
                conn: ConnId::new(0),
            },
        );
        let xid = sent_stats_xid(&fx).expect("readback sent");

        // Round 1: the wiped switch reports an empty table → both rules
        // are re-issued through the delta session.
        let fx = r.handle(
            Duration::from_millis(5),
            ResyncInput::FromSwitch {
                conn: ConnId::new(0),
                message: flow_reply(xid, false, Vec::new()),
            },
        );
        let mut ids = sent_flow_mod_ids(&fx);
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);

        // Acknowledge both (RUM acks echo the modification id).
        let fx1 = r.handle(
            Duration::from_millis(6),
            ResyncInput::FromSwitch {
                conn: ConnId::new(0),
                message: OfMessage::rum_ack(1),
            },
        );
        assert!(armed_timers(&fx1).is_empty());
        let fx2 = r.handle(
            Duration::from_millis(7),
            ResyncInput::FromSwitch {
                conn: ConnId::new(0),
                message: OfMessage::rum_ack(2),
            },
        );
        // Delta complete → inter-round pause armed.
        let timers = armed_timers(&fx2);
        assert_eq!(timers.len(), 1);

        // Round 2: pause elapses, second readback goes out.
        let fx = r.handle(
            Duration::from_millis(200),
            ResyncInput::TimerFired { token: timers[0].1 },
        );
        let xid2 = sent_stats_xid(&fx).expect("second readback");
        assert!(xid2 > xid);

        // The table now matches → converged.
        let fx = r.handle(
            Duration::from_millis(210),
            ResyncInput::FromSwitch {
                conn: ConnId::new(0),
                message: flow_reply(xid2, false, vec![stats_entry(&a), stats_entry(&b)]),
            },
        );
        assert!(fx
            .iter()
            .any(|e| matches!(e, ResyncEffect::Converged { rounds: 2, .. })));

        let status = r.status(0).unwrap();
        assert!(status.converged);
        assert_eq!(status.rounds, 2);
        assert_eq!(status.final_diff, 0);
        assert_eq!(status.delta_mods, 2);
        let trace = r.trace(0);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].missing, 2);
        assert_eq!(trace[0].actual, 0);
        assert_eq!(trace[1].diff(), 0);
    }

    /// Regression (satellite): a stats reply lost to a fault triggers
    /// exactly one backed-off re-request — a fresh xid, armed with the
    /// attempt-1 delay, and the stale reply is ignored if it shows up late.
    #[test]
    fn lost_stats_reply_triggers_one_backed_off_re_request() {
        let cfg = config();
        let mut r = Reconciler::new(cfg);
        r.handle(Duration::ZERO, ResyncInput::SessionSettled);
        let fx = r.handle(
            Duration::ZERO,
            ResyncInput::SwitchReconnected {
                conn: ConnId::new(0),
            },
        );
        let xid0 = sent_stats_xid(&fx).expect("first readback");
        let timers = armed_timers(&fx);
        assert_eq!(timers.len(), 1);
        assert_eq!(timers[0].0, cfg.backoff.delay(READBACK_BACKOFF_KEY, 0));

        // The reply was dropped; the timeout fires.
        let fx = r.handle(
            Duration::from_millis(100),
            ResyncInput::TimerFired { token: timers[0].1 },
        );
        let xid1 = sent_stats_xid(&fx).expect("re-request");
        assert_eq!(xid1, xid0 + 1);
        let re_timers = armed_timers(&fx);
        assert_eq!(re_timers.len(), 1, "exactly one re-request armed");
        assert_eq!(
            re_timers[0].0,
            cfg.backoff.delay(READBACK_BACKOFF_KEY, 1),
            "second attempt waits the backed-off (attempt 1) delay"
        );
        assert_eq!(r.status(0).unwrap().re_requests, 1);

        // A straggler reply to the superseded xid is ignored.
        let fx = r.handle(
            Duration::from_millis(101),
            ResyncInput::FromSwitch {
                conn: ConnId::new(0),
                message: flow_reply(xid0, false, Vec::new()),
            },
        );
        assert!(fx.is_empty());

        // The re-requested readback succeeds; empty store + empty table
        // converges immediately.
        let fx = r.handle(
            Duration::from_millis(102),
            ResyncInput::FromSwitch {
                conn: ConnId::new(0),
                message: flow_reply(xid1, false, Vec::new()),
            },
        );
        assert!(fx
            .iter()
            .any(|e| matches!(e, ResyncEffect::Converged { rounds: 1, .. })));

        // The now-orphaned attempt-1 timeout is a no-op when it fires.
        let fx = r.handle(
            Duration::from_millis(400),
            ResyncInput::TimerFired {
                token: re_timers[0].1,
            },
        );
        assert!(fx.is_empty());
    }

    #[test]
    fn multipart_readback_reassembles_before_diffing() {
        let mut r = Reconciler::new(config());
        let a = rule(100, 1);
        let b = rule(200, 2);
        r.store_mut().note_confirmed(0, &a);
        r.store_mut().note_confirmed(0, &b);
        r.handle(Duration::ZERO, ResyncInput::SessionSettled);
        let fx = r.handle(
            Duration::ZERO,
            ResyncInput::SwitchReconnected {
                conn: ConnId::new(0),
            },
        );
        let xid = sent_stats_xid(&fx).unwrap();

        // First fragment (more=true): no decision yet.
        let fx = r.handle(
            Duration::from_millis(1),
            ResyncInput::FromSwitch {
                conn: ConnId::new(0),
                message: flow_reply(xid, true, vec![stats_entry(&a)]),
            },
        );
        assert!(fx.is_empty());

        // Final fragment completes the reassembly → full table → converged.
        let fx = r.handle(
            Duration::from_millis(2),
            ResyncInput::FromSwitch {
                conn: ConnId::new(0),
                message: flow_reply(xid, false, vec![stats_entry(&b)]),
            },
        );
        assert!(fx
            .iter()
            .any(|e| matches!(e, ResyncEffect::Converged { rounds: 1, .. })));
    }

    #[test]
    fn rum_owned_rules_are_invisible_to_the_diff() {
        let mut r = Reconciler::new(config());
        r.handle(Duration::ZERO, ResyncInput::SessionSettled);
        let fx = r.handle(
            Duration::ZERO,
            ResyncInput::SwitchReconnected {
                conn: ConnId::new(0),
            },
        );
        let xid = sent_stats_xid(&fx).unwrap();

        // The proxy's catch rule (reserved cookie) is in the table but the
        // desired store is empty — it must not read as a stray.
        let mut catch = rule(0, RUM_RESERVED_ID_BASE + 7);
        catch.priority = 0;
        let fx = r.handle(
            Duration::from_millis(1),
            ResyncInput::FromSwitch {
                conn: ConnId::new(0),
                message: flow_reply(xid, false, vec![stats_entry(&catch)]),
            },
        );
        assert!(fx
            .iter()
            .any(|e| matches!(e, ResyncEffect::Converged { rounds: 1, .. })));
    }

    #[test]
    fn stray_rules_are_deleted_and_verified_by_re_read() {
        let mut r = Reconciler::new(config());
        r.handle(Duration::ZERO, ResyncInput::SessionSettled);
        let fx = r.handle(
            Duration::ZERO,
            ResyncInput::SwitchReconnected {
                conn: ConnId::new(0),
            },
        );
        let xid = sent_stats_xid(&fx).unwrap();

        // A leftover rule the controller never wanted.
        let stray = rule(300, 42);
        let fx = r.handle(
            Duration::from_millis(1),
            ResyncInput::FromSwitch {
                conn: ConnId::new(0),
                message: flow_reply(xid, false, vec![stats_entry(&stray)]),
            },
        );
        let deletes: Vec<&FlowMod> = fx
            .iter()
            .filter_map(|e| match e {
                ResyncEffect::Send {
                    message: OfMessage::FlowMod { body, .. },
                    ..
                } => Some(body),
                _ => None,
            })
            .collect();
        assert_eq!(deletes.len(), 1);
        assert_eq!(deletes[0].command, FlowModCommand::DeleteStrict);
        assert_eq!(deletes[0].priority, 300);
        // No probe-able delta → straight to the inter-round pause.
        let timers = armed_timers(&fx);
        assert_eq!(timers.len(), 1);

        // Next round: the delete took, table is empty → converged.
        let fx = r.handle(
            Duration::from_millis(300),
            ResyncInput::TimerFired { token: timers[0].1 },
        );
        let xid2 = sent_stats_xid(&fx).unwrap();
        let fx = r.handle(
            Duration::from_millis(301),
            ResyncInput::FromSwitch {
                conn: ConnId::new(0),
                message: flow_reply(xid2, false, Vec::new()),
            },
        );
        assert!(fx
            .iter()
            .any(|e| matches!(e, ResyncEffect::Converged { rounds: 2, .. })));
        assert_eq!(r.status(0).unwrap().delta_mods, 1);
        assert_eq!(r.trace(0)[0].stray, 1);
    }

    #[test]
    fn mismatched_cookie_is_repaired() {
        let mut r = Reconciler::new(config());
        let want = rule(100, 1);
        r.store_mut().note_confirmed(0, &want);
        r.handle(Duration::ZERO, ResyncInput::SessionSettled);
        let fx = r.handle(
            Duration::ZERO,
            ResyncInput::SwitchReconnected {
                conn: ConnId::new(0),
            },
        );
        let xid = sent_stats_xid(&fx).unwrap();

        // Same identity, wrong cookie (e.g. an older generation survived).
        let have = rule(100, 9);
        let fx = r.handle(
            Duration::from_millis(1),
            ResyncInput::FromSwitch {
                conn: ConnId::new(0),
                message: flow_reply(xid, false, vec![stats_entry(&have)]),
            },
        );
        assert_eq!(sent_flow_mod_ids(&fx), vec![1]);
        assert_eq!(r.trace(0)[0].mismatched, 1);
    }

    #[test]
    fn gives_up_after_max_rounds_with_persistent_diff() {
        let mut cfg = config();
        cfg.max_rounds = 2;
        let mut r = Reconciler::new(cfg);
        let want = rule(100, 1);
        r.store_mut().note_confirmed(0, &want);
        r.handle(Duration::ZERO, ResyncInput::SessionSettled);
        let mut fx = r.handle(
            Duration::ZERO,
            ResyncInput::SwitchReconnected {
                conn: ConnId::new(0),
            },
        );

        // Every readback reports an empty table, every repair "succeeds"
        // (acked) yet never takes: a pathological switch.
        for _ in 0..2 {
            let xid = sent_stats_xid(&fx).unwrap();
            let reply_fx = r.handle(
                Duration::from_millis(1),
                ResyncInput::FromSwitch {
                    conn: ConnId::new(0),
                    message: flow_reply(xid, false, Vec::new()),
                },
            );
            let ack_fx = r.handle(
                Duration::from_millis(2),
                ResyncInput::FromSwitch {
                    conn: ConnId::new(0),
                    message: OfMessage::rum_ack(1),
                },
            );
            let timers: Vec<_> = armed_timers(&reply_fx)
                .into_iter()
                .chain(armed_timers(&ack_fx))
                .collect();
            let next_round = timers.last().expect("pause armed").1;
            fx = r.handle(
                Duration::from_millis(500),
                ResyncInput::TimerFired { token: next_round },
            );
        }
        assert!(fx.iter().any(|e| matches!(
            e,
            ResyncEffect::GaveUp {
                rounds: 2,
                final_diff: 1,
                ..
            }
        )));
        let status = r.status(0).unwrap();
        assert!(!status.converged);
        assert_eq!(status.final_diff, 1);
    }

    #[test]
    fn resync_metrics_are_published() {
        let registry = Registry::new();
        let mut r = Reconciler::new(config());
        r.attach_metrics(&registry);
        let a = rule(100, 1);
        r.store_mut().note_confirmed(0, &a);
        r.handle(Duration::ZERO, ResyncInput::SessionSettled);
        let fx = r.handle(
            Duration::ZERO,
            ResyncInput::SwitchReconnected {
                conn: ConnId::new(0),
            },
        );
        let xid = sent_stats_xid(&fx).unwrap();
        r.handle(
            Duration::from_millis(1),
            ResyncInput::FromSwitch {
                conn: ConnId::new(0),
                message: flow_reply(xid, false, Vec::new()),
            },
        );
        let fx = r.handle(
            Duration::from_millis(2),
            ResyncInput::FromSwitch {
                conn: ConnId::new(0),
                message: OfMessage::rum_ack(1),
            },
        );
        let token = armed_timers(&fx)[0].1;
        let fx = r.handle(
            Duration::from_millis(300),
            ResyncInput::TimerFired { token },
        );
        let xid2 = sent_stats_xid(&fx).unwrap();
        r.handle(
            Duration::from_millis(301),
            ResyncInput::FromSwitch {
                conn: ConnId::new(0),
                message: flow_reply(xid2, false, vec![stats_entry(&a)]),
            },
        );
        assert_eq!(registry.counter("resync.rounds").get(), 2);
        assert_eq!(registry.counter("resync.delta_mods").get(), 1);
        assert_eq!(registry.gauge("resync.converged").get(), 1);
        assert_eq!(registry.gauge("resync.final_diff").get(), 0);
    }

    #[test]
    fn timer_tokens_live_in_the_resync_namespace() {
        let mut r = Reconciler::new(config());
        r.handle(Duration::ZERO, ResyncInput::SessionSettled);
        let fx = r.handle(
            Duration::ZERO,
            ResyncInput::SwitchReconnected {
                conn: ConnId::new(0),
            },
        );
        for (_, token) in armed_timers(&fx) {
            assert!(is_resync_token(token));
        }
    }
}
