//! The sans-IO consistent-update engine: one plan-execution core, any driver.
//!
//! [`UpdateSession`] is a pure state machine, the controller-side sibling of
//! `rum::RumEngine`.  It owns everything that makes a network update
//! *consistent* — dependency gating, the outstanding window K, the three
//! acknowledgment modes, barrier-cover bookkeeping, per-modification send and
//! confirm timestamps, and the failure policy (per-modification timeout →
//! bounded retries → abort with rollback) — but performs no I/O and names no
//! simulator or socket types in its signatures.  A *driver* feeds it typed
//! [`SessionInput`]s together with the current time and executes the typed
//! [`SessionEffect`]s it returns.
//!
//! Two drivers ship with the workspace and run the **same** session:
//!
//! * [`crate::Controller`] — a node for the deterministic discrete-event
//!   simulator (`simnet`); all paper experiments run this way.
//! * `rum_tcp::TcpUpdateController` — a socket listener that speaks OpenFlow
//!   1.0 over real TCP connections, completing the paper's prototype chain
//!   (controller → RUM proxy → switches) end to end.
//!
//! Switch connections are identified by the deployment-agnostic [`ConnId`]
//! newtype (whose index equals the plan's `SwitchRef`), and time is plain
//! [`std::time::Duration`] since an arbitrary driver epoch.
//!
//! ```
//! use controller::{AckMode, SessionEffect, SessionInput, UpdatePlan, UpdateSession};
//! use std::time::Duration;
//!
//! let session = UpdateSession::new(UpdatePlan::new(), AckMode::NoWait, 8);
//! let mut session = session;
//! let effects = session.handle(Duration::ZERO, SessionInput::Started);
//! // An empty plan completes the moment it starts.
//! assert!(matches!(effects.last(), Some(SessionEffect::Completed { .. })));
//! ```

use crate::backoff::BackoffPolicy;
use crate::plan::UpdatePlan;
use openflow::messages::FlowModCommand;
use openflow::{OfMessage, Xid};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;
use telemetry::{AtomicHistogram, Counter, Gauge, Registry};

/// Telemetry handles the session publishes into when metrics are attached
/// (all under `session.*`).  `None` costs nothing on the hot path.
#[derive(Debug)]
struct SessionMetrics {
    mods_sent: Arc<Counter>,
    mods_confirmed: Arc<Counter>,
    mods_failed: Arc<Counter>,
    retries: Arc<Counter>,
    rollbacks_sent: Arc<Counter>,
    packet_ins: Arc<Counter>,
    stray_acks: Arc<Counter>,
    in_flight: Arc<Gauge>,
    confirm_latency_us: Arc<AtomicHistogram>,
}

impl SessionMetrics {
    fn new(registry: &Registry) -> Self {
        SessionMetrics {
            mods_sent: registry.counter("session.mods_sent"),
            mods_confirmed: registry.counter("session.mods_confirmed"),
            mods_failed: registry.counter("session.mods_failed"),
            retries: registry.counter("session.retries"),
            rollbacks_sent: registry.counter("session.rollbacks_sent"),
            packet_ins: registry.counter("session.packet_ins"),
            stray_acks: registry.counter("session.stray_acks"),
            in_flight: registry.gauge("session.in_flight"),
            confirm_latency_us: registry.histogram("session.confirm_latency_us"),
        }
    }
}

/// How the session decides that a modification has been applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckMode {
    /// Fire-and-forget: every modification is considered confirmed the
    /// moment it is sent.  No consistency guarantee — this is the "no wait"
    /// lower bound of Figure 7.
    NoWait,
    /// Send an OpenFlow barrier after every `batch` modifications (or when
    /// nothing else can be sent) and treat the corresponding reply as the
    /// confirmation for everything sent before it.  This is what every
    /// consistent-update system in the literature does; it is only correct
    /// if barriers are honest (or made honest by RUM).
    Barriers {
        /// Modifications per barrier.
        batch: usize,
    },
    /// Wait for RUM's fine-grained positive acknowledgment (an error message
    /// with the reserved RUM code echoing the modification's xid).  This is
    /// the "RUM-aware controller" mode from Section 2 of the paper.
    RumAcks,
}

/// Identifies one switch connection from the session's point of view.
///
/// The index equals the plan's [`crate::plan::SwitchRef`]; drivers map it to
/// whatever carries the connection (a simulator node, a TCP socket, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(usize);

impl ConnId {
    /// The `index`-th switch connection.
    pub const fn new(index: usize) -> Self {
        ConnId(index)
    }

    /// The dense index within the deployment (equals the plan target).
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conn{}", self.0)
    }
}

/// An opaque handle to a timer the session asked its driver to arm.
///
/// Drivers must hand the token back unmodified in
/// [`SessionInput::TimerFired`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionTimerToken(u64);

impl SessionTimerToken {
    /// The raw value, for drivers that serialise tokens (e.g. into a
    /// simulator timer slot).
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs a token from [`SessionTimerToken::raw`].
    pub const fn from_raw(raw: u64) -> Self {
        SessionTimerToken(raw)
    }
}

/// Everything a driver can feed into the session.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionInput {
    /// The update should begin (all switch connections are up).
    Started,
    /// The switch behind `conn` sent `message`.
    FromSwitch {
        /// The connection that carried the message.
        conn: ConnId,
        /// The decoded message.
        message: OfMessage,
    },
    /// A timer previously requested via [`SessionEffect::ArmTimer`] expired.
    TimerFired {
        /// The token from the arming effect.
        token: SessionTimerToken,
    },
    /// The clock advanced with nothing else to report.  Drivers without
    /// fine-grained timer callbacks may tick periodically; the session uses
    /// ticks to re-examine deferred dispatch work.
    Tick,
}

/// Why an update was aborted, and what the session did about it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbortReport {
    /// The modification whose retries were exhausted.
    pub failed: u64,
    /// Modifications that were never sent because they (transitively)
    /// depend on the failed one.
    pub cancelled: Vec<u64>,
    /// Already-sent modifications the session rolled back by issuing the
    /// inverse flow-mod (the failed modification itself plus its sent
    /// dependency ancestors — only `Add` commands have a derivable inverse).
    pub rolled_back: Vec<u64>,
}

/// Everything the session can ask a driver to do.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionEffect {
    /// Send `message` on switch connection `conn`.
    Send {
        /// The destination connection.
        conn: ConnId,
        /// The message to send.
        message: OfMessage,
    },
    /// Arm a timer: feed [`SessionInput::TimerFired`] with `token` back
    /// after `delay`.
    ArmTimer {
        /// How long to wait.
        delay: Duration,
        /// Token identifying the timer.
        token: SessionTimerToken,
    },
    /// The modification with this id is now confirmed.  Purely
    /// observational — drivers use it for tracing; no reply is required.
    Confirmed {
        /// The confirmed modification's id.
        id: u64,
    },
    /// The switch rejected the modification with an OpenFlow error.  Purely
    /// observational — the id is also recorded in
    /// [`UpdateSession::failed`].
    Rejected {
        /// The rejected modification's id.
        id: u64,
        /// The OpenFlow error type.
        err_type: u16,
        /// The OpenFlow error code.
        code: u16,
    },
    /// Every modification in the plan is confirmed; the update is done.
    Completed {
        /// Time (driver epoch) of the final confirmation.
        at: Duration,
    },
    /// The failure policy gave up on a modification; the update is over.
    Aborted {
        /// What failed, what was cancelled, what was rolled back.
        report: AbortReport,
    },
}

/// What the session does when a sent modification is not confirmed in time.
///
/// The policy is disabled by default (no timeout is armed), which preserves
/// the classic semantics: a lost acknowledgment stalls the update forever.
/// Enabling it arms a timer per sent modification; on expiry the
/// modification is re-sent up to `max_retries` times, after which the whole
/// update is aborted — dependents of the failed modification are cancelled
/// and already-applied ancestors are rolled back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailurePolicy {
    /// Retry schedule: attempt 0 waits exactly `backoff.base`, later attempts
    /// grow exponentially with deterministic per-mod jitter, clamped to
    /// `backoff.cap`.  `None` disables the policy.
    pub backoff: Option<BackoffPolicy>,
    /// How many times a timed-out modification is re-sent before the update
    /// is aborted.
    pub max_retries: u32,
}

impl FailurePolicy {
    /// How far past the base timeout the exponential schedule is allowed to
    /// grow: [`FailurePolicy::retry`] caps at `timeout * RETRY_CAP_FACTOR`.
    pub const RETRY_CAP_FACTOR: u32 = 8;

    /// The default: never time out (identical to the pre-policy behaviour).
    pub const fn disabled() -> Self {
        FailurePolicy {
            backoff: None,
            max_retries: 0,
        }
    }

    /// Retry with bounded exponential backoff starting at `timeout` (the
    /// first retry fires after exactly `timeout`; later retries decay apart
    /// with per-mod jitter, never exceeding `timeout * `
    /// [`FailurePolicy::RETRY_CAP_FACTOR`]), at most `max_retries` times,
    /// then abort.
    pub fn retry(timeout: Duration, max_retries: u32) -> Self {
        FailurePolicy {
            backoff: Some(BackoffPolicy::new(
                timeout,
                timeout.saturating_mul(Self::RETRY_CAP_FACTOR),
            )),
            max_retries,
        }
    }

    /// Retry `max_retries` times after a fixed `timeout` each — the
    /// pre-backoff behaviour, kept for schedules that must stay constant.
    pub const fn retry_fixed(timeout: Duration, max_retries: u32) -> Self {
        FailurePolicy {
            backoff: Some(BackoffPolicy::fixed(timeout)),
            max_retries,
        }
    }

    /// Retry on an explicit [`BackoffPolicy`].
    pub const fn retry_backoff(backoff: BackoffPolicy, max_retries: u32) -> Self {
        FailurePolicy {
            backoff: Some(backoff),
            max_retries,
        }
    }
}

impl Default for FailurePolicy {
    fn default() -> Self {
        FailurePolicy::disabled()
    }
}

/// The terminal state of a finished session.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionOutcome {
    /// Every modification confirmed.
    Completed {
        /// Time (driver epoch) of the final confirmation.
        at: Duration,
    },
    /// The failure policy aborted the update.
    Aborted {
        /// What failed, what was cancelled, what was rolled back.
        report: AbortReport,
    },
}

/// The deployment-agnostic consistent-update core: dependency ordering, the
/// outstanding window, acknowledgment modes, barrier covers, timestamps and
/// the failure policy behind a pure input → effects interface.
#[derive(Debug)]
pub struct UpdateSession {
    plan: UpdatePlan,
    ack_mode: AckMode,
    /// Maximum number of sent-but-unconfirmed modifications (the paper's K).
    window: usize,
    failure_policy: FailurePolicy,
    /// Whether an abort sends inverse mods for what was already applied.
    /// Repair (resync delta) sessions disable this: their mods restore the
    /// declared desired state, so the inverse of a repair is itself damage —
    /// a late-landing repair is corrected by the next readback instead.
    rollback_on_abort: bool,

    started: bool,
    sent: HashSet<u64>,
    confirmed: HashSet<u64>,
    cancelled: HashSet<u64>,
    /// Ids whose dependencies are all confirmed and which have not been
    /// sent or cancelled, in id order (the dispatch order).  Maintained
    /// incrementally by confirmations, so dispatch never rescans the plan.
    ready: BTreeSet<u64>,
    /// Unconfirmed (distinct) dependency count per not-yet-ready id.
    remaining_deps: HashMap<u64, usize>,
    /// Dependency id → ids waiting on it.
    dependents: HashMap<u64, Vec<u64>>,
    send_times: HashMap<u64, Duration>,
    confirmation_times: HashMap<u64, Duration>,
    attempts: HashMap<u64, u32>,
    failed: Vec<u64>,
    confirm_log: Vec<u64>,
    /// Armed per-modification timeouts: token -> (mod id, attempt).  Ids are
    /// arbitrary u64 cookies and retries are unbounded, so tokens are plain
    /// sequence numbers rather than bit-packed encodings.
    armed_timeouts: HashMap<u64, (u64, u32)>,
    next_timer_token: u64,
    /// Outstanding barriers: barrier xid -> ids it will confirm.
    barrier_covers: HashMap<Xid, Vec<u64>>,
    /// Ids sent since the last barrier (barrier mode only).
    since_last_barrier: Vec<u64>,
    next_barrier_xid: Xid,
    packet_ins_received: u64,
    /// Acknowledgments that matched nothing this session sent: RUM acks for
    /// unsent ids, barrier replies for unknown xids.  Rejected rather than
    /// misattributed — a nonzero count while live means another session's
    /// traffic (or a confused switch) is leaking onto this connection.
    stray_acks: u64,
    outcome: Option<SessionOutcome>,
    metrics: Option<SessionMetrics>,
}

impl UpdateSession {
    /// Creates a session executing `plan` with the given acknowledgment mode
    /// and window.  The failure policy starts [`FailurePolicy::disabled`].
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero — nothing could ever be sent.
    pub fn new(plan: UpdatePlan, ack_mode: AckMode, window: usize) -> Self {
        assert!(window > 0, "window must be at least 1");
        // Seed the incremental dispatch queue: dependency counts (distinct
        // deps only) and the reverse edges confirmations walk.
        let mut ready = BTreeSet::new();
        let mut remaining_deps = HashMap::new();
        let mut dependents: HashMap<u64, Vec<u64>> = HashMap::new();
        for m in plan.mods() {
            let distinct: HashSet<u64> = m.deps.iter().copied().collect();
            if distinct.is_empty() {
                ready.insert(m.id);
            } else {
                remaining_deps.insert(m.id, distinct.len());
                for d in distinct {
                    dependents.entry(d).or_default().push(m.id);
                }
            }
        }
        UpdateSession {
            plan,
            ack_mode,
            window,
            failure_policy: FailurePolicy::disabled(),
            rollback_on_abort: true,
            started: false,
            sent: HashSet::new(),
            confirmed: HashSet::new(),
            cancelled: HashSet::new(),
            ready,
            remaining_deps,
            dependents,
            send_times: HashMap::new(),
            confirmation_times: HashMap::new(),
            attempts: HashMap::new(),
            failed: Vec::new(),
            confirm_log: Vec::new(),
            armed_timeouts: HashMap::new(),
            next_timer_token: 0,
            barrier_covers: HashMap::new(),
            since_last_barrier: Vec::new(),
            next_barrier_xid: 0x4000_0000,
            packet_ins_received: 0,
            stray_acks: 0,
            outcome: None,
            metrics: None,
        }
    }

    /// Sets the failure policy (timeout → retries → abort).
    pub fn set_failure_policy(&mut self, policy: FailurePolicy) {
        self.failure_policy = policy;
    }

    /// Controls whether an abort sends inverse modifications
    /// for the failed mod and its sent ancestors (the default).  Disable for
    /// repair sessions whose mods *are* the desired state: rolling back a
    /// repair re-creates the damage it fixed, while an over-applied repair is
    /// harmless — the next reconciliation readback observes and corrects it.
    pub fn set_rollback_on_abort(&mut self, enabled: bool) {
        self.rollback_on_abort = enabled;
    }

    /// Publishes session progress into `registry` under `session.*`:
    /// mods sent/confirmed/failed, retries, rollbacks, PacketIns, the
    /// in-flight gauge and the send-to-confirm latency histogram.  Attach
    /// before the session starts so no event is missed.
    pub fn attach_metrics(&mut self, registry: &Registry) {
        self.metrics = Some(SessionMetrics::new(registry));
    }

    /// Mirrors the in-flight window into the gauge, when metrics are on.
    fn record_in_flight(&self) {
        if let Some(m) = &self.metrics {
            m.in_flight.set(self.in_flight() as i64);
        }
    }

    /// The update plan.
    pub fn plan(&self) -> &UpdatePlan {
        &self.plan
    }

    /// The acknowledgment mode in use.
    pub fn ack_mode(&self) -> AckMode {
        self.ack_mode
    }

    /// The outstanding window K.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of confirmed modifications.
    pub fn confirmed_count(&self) -> usize {
        self.confirmed.len()
    }

    /// Number of sent modifications.
    pub fn sent_count(&self) -> usize {
        self.sent.len()
    }

    /// Sent-but-unconfirmed modifications currently in flight.
    pub fn in_flight(&self) -> usize {
        // Every confirmed id was sent first (confirmation is gated on
        // `sent` at every call site), so the difference of the counts is the
        // intersection-free O(1) form of |sent \ confirmed|.
        debug_assert!(self.confirmed.iter().all(|id| self.sent.contains(id)));
        self.sent.len() - self.confirmed.len()
    }

    /// Modifications that failed: rejected by the switch, or timed out with
    /// retries exhausted.
    pub fn failed(&self) -> &[u64] {
        &self.failed
    }

    /// True once every modification in the plan is confirmed.
    pub fn is_complete(&self) -> bool {
        self.confirmed.len() == self.plan.len()
    }

    /// When the last modification was confirmed, if the update finished.
    pub fn completed_at(&self) -> Option<Duration> {
        match self.outcome {
            Some(SessionOutcome::Completed { at }) => Some(at),
            _ => None,
        }
    }

    /// The terminal outcome, once the session has one.
    pub fn outcome(&self) -> Option<&SessionOutcome> {
        self.outcome.as_ref()
    }

    /// Confirmation time per modification id (driver-epoch durations).
    pub fn confirmation_times(&self) -> &HashMap<u64, Duration> {
        &self.confirmation_times
    }

    /// Send time per modification id (driver-epoch durations).
    pub fn send_times(&self) -> &HashMap<u64, Duration> {
        &self.send_times
    }

    /// Every confirmation the session has recorded, in order.
    pub fn confirmed_order(&self) -> &[u64] {
        &self.confirm_log
    }

    /// PacketIn messages received (e.g. probes leaking to a non-RUM
    /// controller, or data packets punted by a switch).
    pub fn packet_ins_received(&self) -> u64 {
        self.packet_ins_received
    }

    /// Acknowledgments that matched nothing this session sent (RUM acks for
    /// unsent ids, barrier replies for unknown xids).  Always zero when the
    /// session has its connections to itself; nonzero under a misconfigured
    /// multiplexer, which is exactly when it must not silently confirm.
    pub fn stray_acks(&self) -> u64 {
        self.stray_acks
    }

    fn count_stray_ack(&mut self) {
        self.stray_acks += 1;
        if let Some(m) = &self.metrics {
            m.stray_acks.inc();
        }
    }

    /// Feeds one input into the session and returns the effects the driver
    /// must execute, in order.  Allocates a fresh effects vector per call;
    /// hot-path drivers should prefer [`UpdateSession::handle_into`].
    pub fn handle(&mut self, now: Duration, input: SessionInput) -> Vec<SessionEffect> {
        let mut effects = Vec::new();
        self.handle_into(now, input, &mut effects);
        effects
    }

    /// Feeds one input into the session, *appending* the effects the driver
    /// must execute (in order) to a caller-owned buffer.
    ///
    /// The buffer is not cleared: a driver drains several inputs into one
    /// buffer, executes everything in a single batch (one socket write per
    /// connection), then clears and reuses the buffer — no per-input
    /// allocation.
    pub fn handle_into(
        &mut self,
        now: Duration,
        input: SessionInput,
        effects: &mut Vec<SessionEffect>,
    ) {
        match input {
            SessionInput::Started => {
                if !self.started {
                    self.started = true;
                    self.dispatch_ready(now, effects);
                    self.check_complete(now, effects);
                }
            }
            SessionInput::FromSwitch { conn, message } => {
                self.on_switch_msg(conn, message, now, effects);
            }
            SessionInput::TimerFired { token } => {
                self.on_timer(token, now, effects);
            }
            SessionInput::Tick => {
                if self.started && self.outcome.is_none() {
                    self.dispatch_ready(now, effects);
                }
            }
        }
    }

    /// Feeds a batch of inputs sharing one timestamp, appending all effects
    /// to `effects` in input order — the multi-input drain used after one
    /// socket read decodes several messages.
    pub fn drain_into(
        &mut self,
        now: Duration,
        inputs: impl IntoIterator<Item = SessionInput>,
        effects: &mut Vec<SessionEffect>,
    ) {
        for input in inputs {
            self.handle_into(now, input, effects);
        }
    }

    // ------------------------------------------------------------------
    // Dispatch
    // ------------------------------------------------------------------

    fn dispatch_ready(&mut self, now: Duration, effects: &mut Vec<SessionEffect>) {
        if !self.started || self.outcome.is_some() {
            return;
        }
        // The ready queue is maintained incrementally (confirmations feed
        // it, sends drain it), so dispatch is O(sent) rather than a plan
        // rescan per call.  Sends in NoWait mode confirm immediately and can
        // push fresh ids into the queue mid-loop; the loop picks them up.
        while self.in_flight() < self.window {
            let Some(&id) = self.ready.iter().next() else {
                break;
            };
            self.ready.remove(&id);
            self.send_mod(id, now, effects);
            // In barrier mode, punctuate every `batch` modifications.
            if let AckMode::Barriers { .. } = self.ack_mode {
                self.maybe_send_barrier(effects, false);
            }
        }
        // If we are in barrier mode and there are loose (uncovered) mods but
        // nothing more to send, close them out with a barrier.
        if let AckMode::Barriers { .. } = self.ack_mode {
            if !self.since_last_barrier.is_empty() && self.ready.is_empty() {
                self.maybe_send_barrier(effects, true);
            }
        }
    }

    fn send_mod(&mut self, id: u64, now: Duration, effects: &mut Vec<SessionEffect>) {
        let m = self.plan.get(id).expect("ready id exists");
        let conn = ConnId::new(m.target);
        let message = OfMessage::FlowMod {
            xid: id as Xid,
            body: m.flow_mod.clone(),
        };
        effects.push(SessionEffect::Send { conn, message });
        self.send_times.insert(id, now);
        self.sent.insert(id);
        if let Some(m) = &self.metrics {
            m.mods_sent.inc();
        }
        match self.ack_mode {
            AckMode::NoWait => self.mark_confirmed(id, now, effects),
            AckMode::Barriers { .. } => {
                self.since_last_barrier.push(id);
                self.arm_mod_timeout(id, effects);
            }
            AckMode::RumAcks => self.arm_mod_timeout(id, effects),
        }
        self.record_in_flight();
    }

    fn arm_mod_timeout(&mut self, id: u64, effects: &mut Vec<SessionEffect>) {
        let Some(backoff) = self.failure_policy.backoff else {
            return;
        };
        let attempt = *self.attempts.entry(id).or_insert(0);
        let token = self.next_timer_token;
        self.next_timer_token += 1;
        self.armed_timeouts.insert(token, (id, attempt));
        effects.push(SessionEffect::ArmTimer {
            // Keyed by the mod id, so a burst of retries after a reconnect
            // spreads out deterministically instead of re-firing in lockstep.
            delay: backoff.delay(id, attempt),
            token: SessionTimerToken::from_raw(token),
        });
    }

    fn maybe_send_barrier(&mut self, effects: &mut Vec<SessionEffect>, force: bool) {
        let AckMode::Barriers { batch } = self.ack_mode else {
            return;
        };
        if self.since_last_barrier.is_empty() {
            return;
        }
        if !force && self.since_last_barrier.len() < batch {
            return;
        }
        // One barrier per target that has uncovered modifications, so a
        // multi-switch plan gets per-switch confirmation.
        let mut per_target: HashMap<usize, Vec<u64>> = HashMap::new();
        for id in std::mem::take(&mut self.since_last_barrier) {
            let target = self.plan.get(id).expect("sent id exists").target;
            per_target.entry(target).or_default().push(id);
        }
        let mut targets: Vec<usize> = per_target.keys().copied().collect();
        targets.sort_unstable();
        for target in targets {
            let ids = per_target.remove(&target).expect("key exists");
            let xid = self.next_barrier_xid;
            self.next_barrier_xid += 1;
            self.barrier_covers.insert(xid, ids);
            effects.push(SessionEffect::Send {
                conn: ConnId::new(target),
                message: OfMessage::BarrierRequest { xid },
            });
        }
    }

    // ------------------------------------------------------------------
    // Confirmation & completion
    // ------------------------------------------------------------------

    fn mark_confirmed(&mut self, id: u64, now: Duration, effects: &mut Vec<SessionEffect>) {
        if !self.confirmed.insert(id) {
            return;
        }
        self.confirmation_times.insert(id, now);
        self.confirm_log.push(id);
        if let Some(m) = &self.metrics {
            m.mods_confirmed.inc();
            if let Some(&sent_at) = self.send_times.get(&id) {
                m.confirm_latency_us
                    .record(now.saturating_sub(sent_at).as_micros() as u64);
            }
        }
        self.record_in_flight();
        // Release dependents whose last unconfirmed dependency this was.
        if let Some(dependents) = self.dependents.get(&id) {
            for &dep in dependents {
                let remaining = self
                    .remaining_deps
                    .get_mut(&dep)
                    .expect("dependent has a count");
                *remaining -= 1;
                if *remaining == 0 && !self.sent.contains(&dep) && !self.cancelled.contains(&dep) {
                    self.ready.insert(dep);
                }
            }
        }
        effects.push(SessionEffect::Confirmed { id });
        self.check_complete(now, effects);
    }

    fn check_complete(&mut self, now: Duration, effects: &mut Vec<SessionEffect>) {
        if self.started && self.is_complete() && self.outcome.is_none() {
            self.outcome = Some(SessionOutcome::Completed { at: now });
            effects.push(SessionEffect::Completed { at: now });
        }
    }

    // ------------------------------------------------------------------
    // Switch-side messages
    // ------------------------------------------------------------------

    fn on_switch_msg(
        &mut self,
        conn: ConnId,
        msg: OfMessage,
        now: Duration,
        effects: &mut Vec<SessionEffect>,
    ) {
        // A finished session accepts no further confirmations: a stray
        // acknowledgment arriving after an abort (e.g. a switch applying a
        // rolled-back modification arbitrarily late) must not resurrect
        // confirmation state.  Liveness traffic and rejection bookkeeping
        // stay live.
        let finished = self.outcome.is_some();
        match msg {
            OfMessage::BarrierReply { xid } if !finished => {
                if let Some(ids) = self.barrier_covers.remove(&xid) {
                    for id in ids {
                        self.mark_confirmed(id, now, effects);
                    }
                    self.dispatch_ready(now, effects);
                } else {
                    // A reply to a barrier this session never issued (or
                    // already consumed) confirms nothing; misattributing it
                    // to pending modifications is exactly the false-ack
                    // failure mode, so it is counted instead of guessed at.
                    self.count_stray_ack();
                }
            }
            OfMessage::Error { xid, ref body } => {
                if let Some(acked) = msg.as_rum_ack() {
                    let id = u64::from(acked);
                    // Gated on `sent` (an ack for an unsent id is a protocol
                    // violation) and idempotent: `mark_confirmed` ignores a
                    // cookie delivered twice, so a duplicated ack — e.g. from
                    // a switch that duplicates replies — confirms once.
                    if !finished && self.sent.contains(&id) {
                        self.mark_confirmed(id, now, effects);
                        self.dispatch_ready(now, effects);
                    } else if !finished {
                        // An ack for an id this session never sent — e.g. a
                        // cookie from another tenant's namespace leaking onto
                        // this connection.  Rejected, never misattributed.
                        self.count_stray_ack();
                    }
                } else {
                    // Rejections are recorded even after the session
                    // finished — NoWait completes on send, and the report
                    // must still show what the switch refused.
                    let id = u64::from(xid);
                    if self.sent.contains(&id) && !self.failed.contains(&id) {
                        self.failed.push(id);
                        if let Some(m) = &self.metrics {
                            m.mods_failed.inc();
                        }
                        effects.push(SessionEffect::Rejected {
                            id,
                            err_type: body.err_type,
                            code: body.code,
                        });
                    }
                }
            }
            OfMessage::PacketIn { .. } => {
                self.packet_ins_received += 1;
                if let Some(m) = &self.metrics {
                    m.packet_ins.inc();
                }
            }
            OfMessage::EchoRequest { xid, data } => {
                effects.push(SessionEffect::Send {
                    conn,
                    message: OfMessage::EchoReply { xid, data },
                });
            }
            OfMessage::Hello { xid } => {
                effects.push(SessionEffect::Send {
                    conn,
                    message: OfMessage::Hello { xid },
                });
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Failure policy: timeout → retry → abort with rollback
    // ------------------------------------------------------------------

    fn on_timer(
        &mut self,
        token: SessionTimerToken,
        now: Duration,
        effects: &mut Vec<SessionEffect>,
    ) {
        if self.outcome.is_some() {
            return;
        }
        let Some((id, attempt)) = self.armed_timeouts.remove(&token.raw()) else {
            return; // unknown or replayed token
        };
        // Stale or irrelevant timers: the mod confirmed meanwhile, was never
        // sent, already failed, or a newer attempt superseded this timer.
        if !self.sent.contains(&id)
            || self.confirmed.contains(&id)
            || self.failed.contains(&id)
            || *self.attempts.get(&id).unwrap_or(&0) != attempt
        {
            return;
        }
        if attempt < self.failure_policy.max_retries {
            self.retry_mod(id, attempt + 1, effects);
        } else {
            self.abort(id, now, effects);
        }
    }

    fn retry_mod(&mut self, id: u64, attempt: u32, effects: &mut Vec<SessionEffect>) {
        self.attempts.insert(id, attempt);
        if let Some(m) = &self.metrics {
            m.retries.inc();
        }
        let m = self.plan.get(id).expect("sent id exists");
        let conn = ConnId::new(m.target);
        effects.push(SessionEffect::Send {
            conn,
            message: OfMessage::FlowMod {
                xid: id as Xid,
                body: m.flow_mod.clone(),
            },
        });
        // In barrier mode the original covering barrier may have been lost
        // with the mod; issue a dedicated one so the retry can confirm.
        if let AckMode::Barriers { .. } = self.ack_mode {
            let xid = self.next_barrier_xid;
            self.next_barrier_xid += 1;
            self.barrier_covers.insert(xid, vec![id]);
            effects.push(SessionEffect::Send {
                conn,
                message: OfMessage::BarrierRequest { xid },
            });
        }
        self.arm_mod_timeout(id, effects);
    }

    /// Ids transitively depending on `roots` (excluding the roots).
    fn dependents_of(&self, roots: &[u64]) -> Vec<u64> {
        let mut closure: HashSet<u64> = roots.iter().copied().collect();
        // The plan is a DAG; iterate until no new dependents appear.
        loop {
            let mut grew = false;
            for m in self.plan.mods() {
                if !closure.contains(&m.id) && m.deps.iter().any(|d| closure.contains(d)) {
                    closure.insert(m.id);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        let mut out: Vec<u64> = closure
            .into_iter()
            .filter(|id| !roots.contains(id))
            .collect();
        out.sort_unstable();
        out
    }

    /// Transitive dependencies of `id` (excluding `id`).
    fn ancestors_of(&self, id: u64) -> Vec<u64> {
        let mut seen = HashSet::new();
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            if let Some(m) = self.plan.get(cur) {
                for &d in &m.deps {
                    if seen.insert(d) {
                        stack.push(d);
                    }
                }
            }
        }
        let mut out: Vec<u64> = seen.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Gives up on `failed_id`: cancels everything depending on it, rolls
    /// back what was already applied on its behalf, and ends the session.
    fn abort(&mut self, failed_id: u64, _now: Duration, effects: &mut Vec<SessionEffect>) {
        self.failed.push(failed_id);
        let cancelled = self.dependents_of(&[failed_id]);
        for &id in &cancelled {
            self.cancelled.insert(id);
            self.ready.remove(&id);
        }
        // Roll back the failed modification itself (the switch may apply it
        // arbitrarily late) plus every sent ancestor it was building on.
        // Repair sessions opt out: their mods are the desired state.
        let mut rollback_candidates = Vec::new();
        if self.rollback_on_abort {
            rollback_candidates.push(failed_id);
            rollback_candidates.extend(
                self.ancestors_of(failed_id)
                    .into_iter()
                    .filter(|id| self.sent.contains(id)),
            );
        }
        let mut rolled_back = Vec::new();
        for id in rollback_candidates {
            if let Some(message) = self.rollback_message(id) {
                let target = self.plan.get(id).expect("plan id exists").target;
                effects.push(SessionEffect::Send {
                    conn: ConnId::new(target),
                    message,
                });
                rolled_back.push(id);
            }
        }
        rolled_back.sort_unstable();
        if let Some(m) = &self.metrics {
            m.mods_failed.inc();
            m.rollbacks_sent.add(rolled_back.len() as u64);
        }
        let report = AbortReport {
            failed: failed_id,
            cancelled,
            rolled_back,
        };
        self.outcome = Some(SessionOutcome::Aborted {
            report: report.clone(),
        });
        effects.push(SessionEffect::Aborted { report });
    }

    /// The inverse of a planned modification, if one can be derived: an
    /// `Add` is undone by a strict delete of the same match and priority.
    /// `Modify` cannot be inverted (the pre-update actions are unknown) and
    /// deletes are not resurrected.
    fn rollback_message(&self, id: u64) -> Option<OfMessage> {
        let m = self.plan.get(id)?;
        match m.flow_mod.command {
            FlowModCommand::Add => {
                let fm = openflow::messages::FlowMod::delete_strict(
                    m.flow_mod.match_,
                    m.flow_mod.priority,
                )
                .with_cookie(id);
                Some(OfMessage::FlowMod {
                    xid: id as Xid,
                    body: fm,
                })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::messages::FlowMod;
    use openflow::{Action, OfMatch};
    use std::net::Ipv4Addr;

    fn fm(i: u8) -> FlowMod {
        FlowMod::add(
            OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, i), Ipv4Addr::new(10, 1, 0, i)),
            100,
            vec![Action::output(2)],
        )
    }

    fn chain_plan(n: u64) -> UpdatePlan {
        let mut plan = UpdatePlan::new();
        for i in 0..n {
            let deps = if i == 0 { vec![] } else { vec![i] };
            plan.add_with_deps(i + 1, 0, fm(i as u8 + 1), deps).unwrap();
        }
        plan
    }

    fn flat_plan(n: u64) -> UpdatePlan {
        let mut plan = UpdatePlan::new();
        for i in 0..n {
            plan.add(i + 1, 0, fm(i as u8 + 1)).unwrap();
        }
        plan
    }

    fn sent_flow_mod_ids(effects: &[SessionEffect]) -> Vec<u64> {
        effects
            .iter()
            .filter_map(|e| match e {
                SessionEffect::Send {
                    message: OfMessage::FlowMod { xid, body },
                    ..
                } if matches!(body.command, FlowModCommand::Add) => Some(u64::from(*xid)),
                _ => None,
            })
            .collect()
    }

    fn rum_ack(id: u64) -> OfMessage {
        OfMessage::rum_ack(id as Xid)
    }

    #[test]
    fn no_wait_confirms_on_send_and_completes() {
        let mut s = UpdateSession::new(flat_plan(5), AckMode::NoWait, usize::MAX >> 1);
        let fx = s.handle(Duration::ZERO, SessionInput::Started);
        assert_eq!(sent_flow_mod_ids(&fx), vec![1, 2, 3, 4, 5]);
        assert!(matches!(
            fx.last(),
            Some(SessionEffect::Completed { at }) if *at == Duration::ZERO
        ));
        assert!(s.is_complete());
        assert_eq!(s.confirmed_order(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn window_limits_in_flight_mods() {
        let mut s = UpdateSession::new(flat_plan(10), AckMode::RumAcks, 3);
        let fx = s.handle(Duration::ZERO, SessionInput::Started);
        assert_eq!(sent_flow_mod_ids(&fx).len(), 3);
        assert_eq!(s.in_flight(), 3);
        // One ack frees one slot.
        let fx = s.handle(
            Duration::from_millis(1),
            SessionInput::FromSwitch {
                conn: ConnId::new(0),
                message: rum_ack(2),
            },
        );
        assert_eq!(sent_flow_mod_ids(&fx), vec![4]);
        assert_eq!(s.in_flight(), 3);
        assert_eq!(s.confirmed_count(), 1);
    }

    #[test]
    fn dependencies_gate_dispatch() {
        let mut s = UpdateSession::new(chain_plan(3), AckMode::RumAcks, 10);
        let fx = s.handle(Duration::ZERO, SessionInput::Started);
        assert_eq!(sent_flow_mod_ids(&fx), vec![1], "only the root is ready");
        let fx = s.handle(
            Duration::from_millis(1),
            SessionInput::FromSwitch {
                conn: ConnId::new(0),
                message: rum_ack(1),
            },
        );
        assert_eq!(sent_flow_mod_ids(&fx), vec![2]);
        assert!(s.send_times()[&2] >= s.confirmation_times()[&1]);
    }

    #[test]
    fn barrier_mode_confirms_through_covers() {
        let mut s = UpdateSession::new(flat_plan(4), AckMode::Barriers { batch: 2 }, 10);
        let fx = s.handle(Duration::ZERO, SessionInput::Started);
        let barriers: Vec<Xid> = fx
            .iter()
            .filter_map(|e| match e {
                SessionEffect::Send {
                    message: OfMessage::BarrierRequest { xid },
                    ..
                } => Some(*xid),
                _ => None,
            })
            .collect();
        assert_eq!(barriers.len(), 2, "4 mods / batch 2");
        let fx = s.handle(
            Duration::from_millis(2),
            SessionInput::FromSwitch {
                conn: ConnId::new(0),
                message: OfMessage::BarrierReply { xid: barriers[0] },
            },
        );
        assert_eq!(s.confirmed_count(), 2);
        assert!(fx
            .iter()
            .any(|e| matches!(e, SessionEffect::Confirmed { id: 1 })));
        s.handle(
            Duration::from_millis(3),
            SessionInput::FromSwitch {
                conn: ConnId::new(0),
                message: OfMessage::BarrierReply { xid: barriers[1] },
            },
        );
        assert!(s.is_complete());
        assert_eq!(s.completed_at(), Some(Duration::from_millis(3)));
    }

    #[test]
    fn switch_rejection_is_recorded_as_failed() {
        let mut s = UpdateSession::new(flat_plan(2), AckMode::RumAcks, 10);
        s.handle(Duration::ZERO, SessionInput::Started);
        s.handle(
            Duration::from_millis(1),
            SessionInput::FromSwitch {
                conn: ConnId::new(0),
                message: OfMessage::Error {
                    xid: 1,
                    body: openflow::messages::ErrorMsg {
                        err_type: openflow::constants::error_type::FLOW_MOD_FAILED,
                        code: 0,
                        data: vec![],
                    },
                },
            },
        );
        assert_eq!(s.failed(), &[1]);
        assert!(!s.is_complete());
    }

    #[test]
    fn echo_and_hello_are_answered_on_the_same_conn() {
        let mut s = UpdateSession::new(flat_plan(1), AckMode::RumAcks, 1);
        s.handle(Duration::ZERO, SessionInput::Started);
        let fx = s.handle(
            Duration::from_millis(1),
            SessionInput::FromSwitch {
                conn: ConnId::new(0),
                message: OfMessage::EchoRequest {
                    xid: 7,
                    data: vec![1, 2],
                },
            },
        );
        assert_eq!(
            fx,
            vec![SessionEffect::Send {
                conn: ConnId::new(0),
                message: OfMessage::EchoReply {
                    xid: 7,
                    data: vec![1, 2]
                },
            }]
        );
        let fx = s.handle(
            Duration::from_millis(2),
            SessionInput::FromSwitch {
                conn: ConnId::new(0),
                message: OfMessage::Hello { xid: 9 },
            },
        );
        assert!(matches!(
            fx.as_slice(),
            [SessionEffect::Send {
                message: OfMessage::Hello { xid: 9 },
                ..
            }]
        ));
    }

    fn armed_token(effects: &[SessionEffect]) -> SessionTimerToken {
        effects
            .iter()
            .find_map(|e| match e {
                SessionEffect::ArmTimer { token, .. } => Some(*token),
                _ => None,
            })
            .expect("a timeout must be armed")
    }

    #[test]
    fn timeout_retries_then_aborts_with_rollback() {
        // Plan: 1 -> 2 -> 3 (2 depends on 1, 3 on 2). Mod 1 confirms, mod 2
        // never does; the policy retries twice, then aborts: 3 is cancelled,
        // 2 and its applied ancestor 1 are rolled back.
        let mut s = UpdateSession::new(chain_plan(3), AckMode::RumAcks, 10);
        s.set_failure_policy(FailurePolicy::retry(Duration::from_millis(100), 2));
        let fx = s.handle(Duration::ZERO, SessionInput::Started);
        let timer = fx
            .iter()
            .find_map(|e| match e {
                SessionEffect::ArmTimer { delay, token } => Some((*delay, *token)),
                _ => None,
            })
            .expect("timeout armed for mod 1");
        assert_eq!(timer.0, Duration::from_millis(100));

        let fx = s.handle(
            Duration::from_millis(10),
            SessionInput::FromSwitch {
                conn: ConnId::new(0),
                message: rum_ack(1),
            },
        );
        // Mod 2 is in flight now; its timer fires -> retry 1.
        let fx = s.handle(
            Duration::from_millis(110),
            SessionInput::TimerFired {
                token: armed_token(&fx),
            },
        );
        assert_eq!(sent_flow_mod_ids(&fx), vec![2], "first retry re-sends");
        // Retry 2.
        let fx = s.handle(
            Duration::from_millis(210),
            SessionInput::TimerFired {
                token: armed_token(&fx),
            },
        );
        assert_eq!(sent_flow_mod_ids(&fx), vec![2], "second retry re-sends");
        // Retries exhausted -> abort.
        let fx = s.handle(
            Duration::from_millis(310),
            SessionInput::TimerFired {
                token: armed_token(&fx),
            },
        );
        let report = fx
            .iter()
            .find_map(|e| match e {
                SessionEffect::Aborted { report } => Some(report.clone()),
                _ => None,
            })
            .expect("abort effect");
        assert_eq!(report.failed, 2);
        assert_eq!(report.cancelled, vec![3]);
        assert_eq!(report.rolled_back, vec![1, 2]);
        // Rollbacks are strict deletes of the added rules.
        let deletes = fx
            .iter()
            .filter(|e| {
                matches!(e, SessionEffect::Send {
                    message: OfMessage::FlowMod { body, .. },
                    ..
                } if matches!(body.command, FlowModCommand::DeleteStrict))
            })
            .count();
        assert_eq!(deletes, 2);
        assert!(matches!(s.outcome(), Some(SessionOutcome::Aborted { .. })));
        assert_eq!(s.failed(), &[2]);
        // The session is inert after the abort.
        assert!(s
            .handle(Duration::from_millis(320), SessionInput::Tick)
            .is_empty());
    }

    #[test]
    fn abort_without_rollback_sends_no_inverse_mods() {
        // Same shape as the rollback test, but with rollback disabled (the
        // repair-session configuration): the abort still fails mod 2 and
        // cancels 3, but no strict deletes go out and nothing is reported
        // rolled back — applied repairs must stay applied.
        let mut s = UpdateSession::new(chain_plan(3), AckMode::RumAcks, 10);
        s.set_failure_policy(FailurePolicy::retry(Duration::from_millis(100), 0));
        s.set_rollback_on_abort(false);
        s.handle(Duration::ZERO, SessionInput::Started);
        // Mod 1 confirms; mod 2 goes out and arms its timeout.
        let fx = s.handle(
            Duration::from_millis(10),
            SessionInput::FromSwitch {
                conn: ConnId::new(0),
                message: rum_ack(1),
            },
        );
        let token = armed_token(&fx);
        // Mod 2's timeout fires with zero retries -> immediate abort.
        let fx = s.handle(
            Duration::from_millis(120),
            SessionInput::TimerFired { token },
        );
        let report = fx
            .iter()
            .find_map(|e| match e {
                SessionEffect::Aborted { report } => Some(report.clone()),
                _ => None,
            })
            .expect("abort effect");
        assert_eq!(report.failed, 2);
        assert_eq!(report.cancelled, vec![3]);
        assert!(report.rolled_back.is_empty(), "no rollback when disabled");
        assert!(
            !fx.iter().any(|e| matches!(e, SessionEffect::Send { .. })),
            "abort must not emit any messages with rollback disabled"
        );
    }

    #[test]
    fn stale_timers_are_ignored() {
        let mut s = UpdateSession::new(flat_plan(1), AckMode::RumAcks, 1);
        s.set_failure_policy(FailurePolicy::retry(Duration::from_millis(50), 1));
        let fx = s.handle(Duration::ZERO, SessionInput::Started);
        let token = armed_token(&fx);
        // The mod confirms before the timer fires.
        s.handle(
            Duration::from_millis(10),
            SessionInput::FromSwitch {
                conn: ConnId::new(0),
                message: rum_ack(1),
            },
        );
        let fx = s.handle(
            Duration::from_millis(60),
            SessionInput::TimerFired { token },
        );
        assert!(fx.is_empty(), "timer for a confirmed mod is a no-op");
        // A replayed or never-armed token is also ignored.
        let fx = s.handle(
            Duration::from_millis(70),
            SessionInput::TimerFired { token },
        );
        assert!(fx.is_empty());
        let fx = s.handle(
            Duration::from_millis(80),
            SessionInput::TimerFired {
                token: SessionTimerToken::from_raw(999),
            },
        );
        assert!(fx.is_empty());
    }

    #[test]
    fn tick_redispatches_but_is_otherwise_harmless() {
        let mut s = UpdateSession::new(flat_plan(2), AckMode::RumAcks, 1);
        assert!(s.handle(Duration::ZERO, SessionInput::Tick).is_empty());
        s.handle(Duration::ZERO, SessionInput::Started);
        assert!(s
            .handle(Duration::from_millis(1), SessionInput::Tick)
            .is_empty());
        // A second Started is a no-op too.
        assert!(s
            .handle(Duration::from_millis(2), SessionInput::Started)
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "window must be at least 1")]
    fn zero_window_is_rejected() {
        UpdateSession::new(UpdatePlan::new(), AckMode::NoWait, 0);
    }

    /// The same cookie acknowledged twice confirms exactly once: the second
    /// delivery is a no-op (no duplicate Confirmed effect, no double-count,
    /// no extra dispatch) — switches that duplicate replies must not skew
    /// the window or the completion accounting.
    #[test]
    fn duplicate_ack_confirms_once() {
        let mut s = UpdateSession::new(flat_plan(3), AckMode::RumAcks, 1);
        s.handle(Duration::ZERO, SessionInput::Started);
        let fx = s.handle(
            Duration::from_millis(1),
            SessionInput::FromSwitch {
                conn: ConnId::new(0),
                message: rum_ack(1),
            },
        );
        assert!(fx
            .iter()
            .any(|e| matches!(e, SessionEffect::Confirmed { id: 1 })));
        assert_eq!(s.confirmed_count(), 1);
        let first_time = s.confirmation_times()[&1];

        // The duplicate: no effects beyond (at most) nothing, state frozen.
        let fx = s.handle(
            Duration::from_millis(9),
            SessionInput::FromSwitch {
                conn: ConnId::new(0),
                message: rum_ack(1),
            },
        );
        assert!(
            !fx.iter()
                .any(|e| matches!(e, SessionEffect::Confirmed { id: 1 })),
            "duplicate ack must not re-confirm"
        );
        assert!(
            sent_flow_mod_ids(&fx).is_empty(),
            "duplicate ack must not free a window slot twice"
        );
        assert_eq!(s.confirmed_count(), 1);
        assert_eq!(s.confirmation_times()[&1], first_time);
        assert_eq!(s.confirmed_order(), &[1]);
        assert_eq!(s.in_flight(), 1, "mod 2 is in flight exactly once");
    }

    /// An acknowledgment for an id this session never sent is rejected and
    /// counted, never misattributed to a pending modification — the session
    /// side of the multi-tenant namespace guarantee.
    #[test]
    fn ack_for_unsent_id_is_counted_stray_not_confirmed() {
        let registry = Registry::new();
        let mut s = UpdateSession::new(chain_plan(2), AckMode::RumAcks, 1);
        s.attach_metrics(&registry);
        s.handle(Duration::ZERO, SessionInput::Started);
        assert_eq!(s.stray_acks(), 0);

        // A cookie from some other tenant's namespace leaks in.
        let fx = s.handle(
            Duration::from_millis(1),
            SessionInput::FromSwitch {
                conn: ConnId::new(0),
                message: rum_ack(0x0010_0001),
            },
        );
        assert!(fx.is_empty(), "a stray ack must confirm nothing");
        assert_eq!(s.confirmed_count(), 0);
        // So does a barrier reply this session never issued.
        let fx = s.handle(
            Duration::from_millis(2),
            SessionInput::FromSwitch {
                conn: ConnId::new(0),
                message: OfMessage::BarrierReply { xid: 0x4000_0123 },
            },
        );
        assert!(fx.is_empty());
        assert_eq!(s.stray_acks(), 2);
        assert_eq!(registry.snapshot().counters["session.stray_acks"], 2);

        // The real acknowledgment still lands normally afterwards.
        let fx = s.handle(
            Duration::from_millis(3),
            SessionInput::FromSwitch {
                conn: ConnId::new(0),
                message: rum_ack(1),
            },
        );
        assert!(fx
            .iter()
            .any(|e| matches!(e, SessionEffect::Confirmed { id: 1 })));
        assert_eq!(s.stray_acks(), 2, "a valid ack is not stray");
    }

    /// Acknowledgments arriving after the session aborted are ignored: the
    /// rolled-back update must not be partially "resurrected" by a switch
    /// that applies (and acks) a modification arbitrarily late.
    #[test]
    fn stray_ack_after_abort_is_ignored() {
        let mut s = UpdateSession::new(chain_plan(2), AckMode::RumAcks, 1);
        s.set_failure_policy(FailurePolicy::retry(Duration::from_millis(10), 0));
        let fx = s.handle(Duration::ZERO, SessionInput::Started);
        // Mod 1 times out with zero retries -> abort.
        let fx = s.handle(
            Duration::from_millis(20),
            SessionInput::TimerFired {
                token: armed_token(&fx),
            },
        );
        assert!(fx
            .iter()
            .any(|e| matches!(e, SessionEffect::Aborted { .. })));
        let confirmed_before = s.confirmed_count();

        // The switch acks mod 1 long after the rollback went out.
        let fx = s.handle(
            Duration::from_millis(30),
            SessionInput::FromSwitch {
                conn: ConnId::new(0),
                message: rum_ack(1),
            },
        );
        assert!(fx.is_empty(), "post-abort ack must produce no effects");
        assert_eq!(s.confirmed_count(), confirmed_before);
        assert!(s.confirmation_times().get(&1).is_none());
        // A stray barrier reply is equally inert...
        let fx = s.handle(
            Duration::from_millis(31),
            SessionInput::FromSwitch {
                conn: ConnId::new(0),
                message: OfMessage::BarrierReply { xid: 0x4000_0000 },
            },
        );
        assert!(fx.is_empty());
        // ...but liveness traffic is still answered.
        let fx = s.handle(
            Duration::from_millis(32),
            SessionInput::FromSwitch {
                conn: ConnId::new(0),
                message: OfMessage::EchoRequest {
                    xid: 5,
                    data: vec![],
                },
            },
        );
        assert!(matches!(
            fx.as_slice(),
            [SessionEffect::Send {
                message: OfMessage::EchoReply { xid: 5, .. },
                ..
            }]
        ));
    }

    /// The incrementally-maintained ready queue must stay equivalent to the
    /// reference definition ([`UpdatePlan::ready_ids`] minus cancelled ids)
    /// after every input.  This is the drift guard for the two parallel
    /// notions of readiness.
    #[test]
    fn incremental_ready_queue_matches_plan_rescan() {
        fn assert_equivalent(s: &UpdateSession, when: &str) {
            let mut reference = s.plan.ready_ids(&s.confirmed, &s.sent);
            reference.retain(|id| !s.cancelled.contains(id));
            reference.sort_unstable();
            let queue: Vec<u64> = s.ready.iter().copied().collect();
            assert_eq!(queue, reference, "ready queue diverged {when}");
        }

        // Diamond (1 -> 2,3 -> 4) plus an independent mod 5.
        let mut plan = UpdatePlan::new();
        plan.add(1, 0, fm(1)).unwrap();
        plan.add_with_deps(2, 0, fm(2), vec![1]).unwrap();
        plan.add_with_deps(3, 0, fm(3), vec![1]).unwrap();
        plan.add_with_deps(4, 0, fm(4), vec![2, 3]).unwrap();
        plan.add(5, 0, fm(5)).unwrap();

        let mut s = UpdateSession::new(plan, AckMode::RumAcks, 2);
        assert_equivalent(&s, "after construction");
        s.handle(Duration::ZERO, SessionInput::Started);
        assert_equivalent(&s, "after start");
        for (step, ack) in [1u64, 5, 2, 3, 4].into_iter().enumerate() {
            s.handle(
                Duration::from_millis(step as u64 + 1),
                SessionInput::FromSwitch {
                    conn: ConnId::new(0),
                    message: rum_ack(ack),
                },
            );
            assert_equivalent(&s, &format!("after ack {ack}"));
        }
        assert!(s.is_complete());

        // And through the abort path: the cancelled dependents must leave
        // the queue exactly as the reference (minus cancelled) says.
        let mut plan = UpdatePlan::new();
        plan.add(1, 0, fm(1)).unwrap();
        plan.add_with_deps(2, 0, fm(2), vec![1]).unwrap();
        plan.add_with_deps(3, 0, fm(3), vec![2]).unwrap();
        let mut s = UpdateSession::new(plan, AckMode::RumAcks, 1);
        s.set_failure_policy(FailurePolicy::retry(Duration::from_millis(10), 0));
        let fx = s.handle(Duration::ZERO, SessionInput::Started);
        s.handle(
            Duration::from_millis(20),
            SessionInput::TimerFired {
                token: armed_token(&fx),
            },
        );
        assert!(matches!(s.outcome(), Some(SessionOutcome::Aborted { .. })));
        assert_equivalent(&s, "after abort");
    }
}
