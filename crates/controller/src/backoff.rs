//! Bounded exponential backoff with deterministic jitter.
//!
//! Shared by every retry loop in the controller: per-mod retries inside
//! [`crate::session::UpdateSession`] and the readback / delta rounds of the
//! [`crate::resync::Reconciler`].  The schedule is a pure function of
//! `(key, attempt)` — no RNG state — so the same seed produces the same
//! retry timings on the simulator and over real sockets, which is what
//! lets the scenario matrix compare convergence traces cell-for-cell
//! across drivers.
//!
//! Shape of the schedule for a policy `{ base, cap }`:
//!
//! * attempt 0 fires after exactly `base` (no jitter — the common case of a
//!   single retry keeps its historical, easily-asserted timing);
//! * attempt `n ≥ 1` doubles the raw delay (`base << n`, saturating), clamps
//!   it to `cap`, then picks a deterministic point in `[raw/2, raw]` keyed by
//!   `(key, attempt)` — decorrelated enough that retry storms after a
//!   reconnect spread out instead of synchronizing, bounded so the jittered
//!   delay can never exceed `cap`.

use std::time::Duration;

/// SplitMix64 finaliser — the same keyed hash the switch's `FaultPlan` uses,
/// so backoff jitter is order-independent and driver-independent.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Domain salt separating backoff jitter from every other keyed-hash user.
const SALT_BACKOFF: u64 = 0xB0;

/// A bounded exponential backoff schedule with deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Delay of the first retry (attempt 0), and the unit the exponential
    /// grows from.
    pub base: Duration,
    /// Hard ceiling: no delay this policy produces ever exceeds `cap`.
    pub cap: Duration,
}

impl BackoffPolicy {
    /// A schedule growing from `base` and clamped to `cap`.
    pub const fn new(base: Duration, cap: Duration) -> Self {
        Self { base, cap }
    }

    /// A degenerate schedule that always waits exactly `d` — used to express
    /// the historical fixed-timeout behavior in terms of the shared
    /// primitive.
    pub const fn fixed(d: Duration) -> Self {
        Self { base: d, cap: d }
    }

    /// The delay before retry number `attempt` (0-based) for the retry loop
    /// identified by `key`.
    ///
    /// Pure in `(self, key, attempt)`.  `key` should identify the loop
    /// stably across drivers (a cookie, a switch id, a seed mix) — never a
    /// wall-clock or sequential counter.
    pub fn delay(&self, key: u64, attempt: u32) -> Duration {
        let base = self.base.min(self.cap);
        if attempt == 0 || base == self.cap {
            // First retry keeps its exact, easily-asserted timing; a
            // degenerate fixed policy (base == cap) never jitters at all.
            return base;
        }
        let raw = base
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(self.cap);
        // Deterministic point in [raw/2, raw].
        let half = raw / 2;
        let span = raw.saturating_sub(half).as_nanos() as u64;
        if span == 0 {
            return raw;
        }
        let h =
            splitmix64(key ^ SALT_BACKOFF.wrapping_mul(0x517C_C1B7_2722_0A95) ^ u64::from(attempt));
        half + Duration::from_nanos(h % (span + 1))
    }

    /// Total time spent sleeping across retries `0..attempts` — an upper
    /// bound useful for sizing scenario horizons.
    pub fn total_delay(&self, key: u64, attempts: u32) -> Duration {
        (0..attempts).map(|a| self.delay(key, a)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: Duration = Duration::from_millis(1);

    #[test]
    fn attempt_zero_is_exactly_base() {
        let p = BackoffPolicy::new(50 * MS, 800 * MS);
        for key in [0u64, 1, 0xDEAD_BEEF] {
            assert_eq!(p.delay(key, 0), 50 * MS);
        }
    }

    #[test]
    fn deterministic_per_key_and_attempt() {
        let p = BackoffPolicy::new(10 * MS, 500 * MS);
        for key in 0..64u64 {
            for attempt in 0..10 {
                assert_eq!(p.delay(key, attempt), p.delay(key, attempt));
            }
        }
    }

    #[test]
    fn never_exceeds_cap() {
        let p = BackoffPolicy::new(7 * MS, 123 * MS);
        for key in 0..256u64 {
            for attempt in 0..40 {
                assert!(
                    p.delay(key, attempt) <= p.cap,
                    "key {key} attempt {attempt}"
                );
            }
        }
    }

    #[test]
    fn grows_until_capped() {
        let p = BackoffPolicy::new(10 * MS, 10_000 * MS);
        // Jitter floor of attempt n is base << (n - 1); it dominates the
        // previous attempt's ceiling two attempts back.
        for key in 0..32u64 {
            for attempt in 2..8u32 {
                assert!(p.delay(key, attempt) > p.delay(key, attempt - 2));
            }
        }
    }

    #[test]
    fn jitter_lower_bound_is_half_raw() {
        let p = BackoffPolicy::new(16 * MS, 4096 * MS);
        for key in 0..128u64 {
            for attempt in 1..8u32 {
                let raw = (16 * MS * (1 << attempt)).min(p.cap);
                let d = p.delay(key, attempt);
                assert!(d >= raw / 2 && d <= raw);
            }
        }
    }

    #[test]
    fn jitter_decorrelates_keys() {
        let p = BackoffPolicy::new(100 * MS, 100_000 * MS);
        let delays: std::collections::HashSet<Duration> =
            (0..64u64).map(|key| p.delay(key, 4)).collect();
        // 64 keys landing on < 8 distinct delays would mean the jitter is
        // not actually spreading the storm.
        assert!(delays.len() > 8, "only {} distinct delays", delays.len());
    }

    #[test]
    fn fixed_policy_is_constant() {
        let p = BackoffPolicy::fixed(250 * MS);
        for attempt in 0..16 {
            assert_eq!(p.delay(99, attempt), 250 * MS);
        }
    }

    #[test]
    fn saturates_on_huge_attempts() {
        let p = BackoffPolicy::new(Duration::from_secs(1), Duration::from_secs(30));
        assert!(p.delay(1, 200) <= Duration::from_secs(30));
    }

    #[test]
    fn total_delay_sums() {
        let p = BackoffPolicy::fixed(10 * MS);
        assert_eq!(p.total_delay(0, 5), 50 * MS);
    }
}
