//! Dependency-ordered update plans.

use openflow::messages::FlowMod;
use std::collections::{HashMap, HashSet};

/// Index of a switch connection from the controller's point of view.
pub type SwitchRef = usize;

/// One rule modification inside an update plan.
#[derive(Debug, Clone)]
pub struct PlannedMod {
    /// Unique id of the modification; doubles as the flow-mod cookie and the
    /// OpenFlow transaction id so acknowledgments can be correlated.
    pub id: u64,
    /// Which switch connection the modification goes to.
    pub target: SwitchRef,
    /// The flow modification itself.
    pub flow_mod: FlowMod,
    /// Ids of modifications that must be *confirmed* before this one may be
    /// sent ("X after Y" in the paper's Figure 2).
    pub deps: Vec<u64>,
}

/// A network update: a set of rule modifications with ordering dependencies.
#[derive(Debug, Clone, Default)]
pub struct UpdatePlan {
    mods: Vec<PlannedMod>,
    by_id: HashMap<u64, usize>,
}

impl UpdatePlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        UpdatePlan::default()
    }

    /// Adds a modification with no dependencies; returns its id.
    ///
    /// Fails with [`PlanError::DuplicateId`] if the id is already in the
    /// plan — duplicate cookies would make acknowledgments ambiguous.
    pub fn add(&mut self, id: u64, target: SwitchRef, flow_mod: FlowMod) -> Result<u64, PlanError> {
        self.add_with_deps(id, target, flow_mod, Vec::new())
    }

    /// Adds a modification that may only be sent after `deps` are confirmed.
    ///
    /// Fails with [`PlanError::DuplicateId`] if the id is already in the
    /// plan — duplicate cookies would make acknowledgments ambiguous.
    pub fn add_with_deps(
        &mut self,
        id: u64,
        target: SwitchRef,
        mut flow_mod: FlowMod,
        deps: Vec<u64>,
    ) -> Result<u64, PlanError> {
        if self.by_id.contains_key(&id) {
            return Err(PlanError::DuplicateId { id });
        }
        flow_mod.cookie = id;
        self.by_id.insert(id, self.mods.len());
        self.mods.push(PlannedMod {
            id,
            target,
            flow_mod,
            deps,
        });
        Ok(id)
    }

    /// Number of modifications in the plan.
    pub fn len(&self) -> usize {
        self.mods.len()
    }

    /// True when the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.mods.is_empty()
    }

    /// All modifications, in insertion order.
    pub fn mods(&self) -> &[PlannedMod] {
        &self.mods
    }

    /// Looks up a modification by id.
    pub fn get(&self, id: u64) -> Option<&PlannedMod> {
        self.by_id.get(&id).map(|&i| &self.mods[i])
    }

    /// The set of switch connections referenced by the plan.
    pub fn targets(&self) -> HashSet<SwitchRef> {
        self.mods.iter().map(|m| m.target).collect()
    }

    /// Validates the plan: every dependency must refer to a modification in
    /// the plan and the dependency graph must be acyclic.  Returns the ids in
    /// a valid topological order.
    pub fn validate(&self) -> Result<Vec<u64>, PlanError> {
        // Check dangling dependencies first.
        for m in &self.mods {
            for d in &m.deps {
                if !self.by_id.contains_key(d) {
                    return Err(PlanError::UnknownDependency { id: m.id, dep: *d });
                }
            }
        }
        // Kahn's algorithm for cycle detection / topological order.
        let mut in_degree: HashMap<u64, usize> =
            self.mods.iter().map(|m| (m.id, m.deps.len())).collect();
        let mut dependents: HashMap<u64, Vec<u64>> = HashMap::new();
        for m in &self.mods {
            for d in &m.deps {
                dependents.entry(*d).or_default().push(m.id);
            }
        }
        let mut ready: Vec<u64> = self
            .mods
            .iter()
            .filter(|m| m.deps.is_empty())
            .map(|m| m.id)
            .collect();
        let mut order = Vec::with_capacity(self.mods.len());
        while let Some(id) = ready.pop() {
            order.push(id);
            if let Some(deps) = dependents.get(&id) {
                for &next in deps {
                    let e = in_degree.get_mut(&next).expect("known id");
                    *e -= 1;
                    if *e == 0 {
                        ready.push(next);
                    }
                }
            }
        }
        if order.len() != self.mods.len() {
            return Err(PlanError::Cycle);
        }
        Ok(order)
    }

    /// Ids whose dependencies are all contained in `confirmed` and which are
    /// not themselves in `confirmed` or `sent`.
    ///
    /// This full rescan is the *reference definition* of readiness.  The
    /// session dispatches from an incrementally-maintained ready queue for
    /// performance; its tests assert the queue stays equivalent to this
    /// function at every step, so keep the two in sync when dependency
    /// semantics change.
    pub fn ready_ids(&self, confirmed: &HashSet<u64>, sent: &HashSet<u64>) -> Vec<u64> {
        self.mods
            .iter()
            .filter(|m| {
                !sent.contains(&m.id)
                    && !confirmed.contains(&m.id)
                    && m.deps.iter().all(|d| confirmed.contains(d))
            })
            .map(|m| m.id)
            .collect()
    }
}

/// Errors found while building or validating a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanError {
    /// A modification id was reused; ids double as flow-mod cookies and
    /// transaction ids, so they must be unique within a plan.
    DuplicateId {
        /// The reused id.
        id: u64,
    },
    /// A modification depends on an id that is not part of the plan.
    UnknownDependency {
        /// The modification with the bad dependency.
        id: u64,
        /// The missing dependency id.
        dep: u64,
    },
    /// The dependency graph contains a cycle.
    Cycle,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::DuplicateId { id } => {
                write!(f, "modification id {id} is already in the plan")
            }
            PlanError::UnknownDependency { id, dep } => {
                write!(f, "modification {id} depends on unknown modification {dep}")
            }
            PlanError::Cycle => write!(f, "the dependency graph contains a cycle"),
        }
    }
}

impl std::error::Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::{Action, OfMatch};
    use std::net::Ipv4Addr;

    fn fm(i: u8) -> FlowMod {
        FlowMod::add(
            OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, i), Ipv4Addr::new(10, 1, 0, i)),
            10,
            vec![Action::output(1)],
        )
    }

    #[test]
    fn add_sets_cookie_to_id() {
        let mut plan = UpdatePlan::new();
        plan.add(42, 0, fm(1)).unwrap();
        assert_eq!(plan.get(42).unwrap().flow_mod.cookie, 42);
        assert_eq!(plan.len(), 1);
        assert!(!plan.is_empty());
        assert!(plan.get(43).is_none());
    }

    #[test]
    fn duplicate_ids_are_rejected() {
        let mut plan = UpdatePlan::new();
        plan.add(1, 0, fm(1)).unwrap();
        assert_eq!(plan.add(1, 0, fm(2)), Err(PlanError::DuplicateId { id: 1 }));
        assert_eq!(plan.len(), 1, "the rejected mod must not be inserted");
        assert_eq!(
            PlanError::DuplicateId { id: 1 }.to_string(),
            "modification id 1 is already in the plan"
        );
    }

    #[test]
    fn validate_detects_unknown_dependency() {
        let mut plan = UpdatePlan::new();
        plan.add_with_deps(1, 0, fm(1), vec![99]).unwrap();
        assert_eq!(
            plan.validate(),
            Err(PlanError::UnknownDependency { id: 1, dep: 99 })
        );
    }

    #[test]
    fn validate_detects_cycle() {
        let mut plan = UpdatePlan::new();
        plan.add_with_deps(1, 0, fm(1), vec![2]).unwrap();
        plan.add_with_deps(2, 0, fm(2), vec![1]).unwrap();
        assert_eq!(plan.validate(), Err(PlanError::Cycle));
        assert_eq!(
            PlanError::Cycle.to_string(),
            "the dependency graph contains a cycle"
        );
    }

    #[test]
    fn validate_returns_topological_order() {
        let mut plan = UpdatePlan::new();
        plan.add(1, 1, fm(1)).unwrap();
        plan.add_with_deps(2, 0, fm(2), vec![1]).unwrap();
        plan.add_with_deps(3, 0, fm(3), vec![1, 2]).unwrap();
        let order = plan.validate().unwrap();
        let pos = |id: u64| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(1) < pos(2));
        assert!(pos(2) < pos(3));
        assert_eq!(plan.targets(), [0usize, 1].into_iter().collect());
    }

    #[test]
    fn ready_ids_respects_dependencies_and_window_state() {
        let mut plan = UpdatePlan::new();
        plan.add(1, 1, fm(1)).unwrap();
        plan.add_with_deps(2, 0, fm(2), vec![1]).unwrap();
        let confirmed = HashSet::new();
        let sent = HashSet::new();
        assert_eq!(plan.ready_ids(&confirmed, &sent), vec![1]);

        let sent: HashSet<u64> = [1].into_iter().collect();
        assert!(plan.ready_ids(&confirmed, &sent).is_empty());

        let confirmed: HashSet<u64> = [1].into_iter().collect();
        assert_eq!(plan.ready_ids(&confirmed, &sent), vec![2]);

        let confirmed: HashSet<u64> = [1, 2].into_iter().collect();
        let sent: HashSet<u64> = [1, 2].into_iter().collect();
        assert!(plan.ready_ids(&confirmed, &sent).is_empty());
    }
}
