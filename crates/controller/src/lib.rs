//! A consistent-update SDN controller for the RUM reproduction.
//!
//! The paper assumes a controller in the style of Reitblatt et al.'s
//! "Abstractions for Network Update": the new network state is decomposed
//! into individual rule modifications with explicit ordering dependencies
//! ("install X only after Y and Z are in place"), and the controller only
//! releases a modification once the rules it depends on have been
//! *acknowledged*.  The whole point of RUM is that those acknowledgments are
//! worthless on real switches unless something (RUM) ties them to the data
//! plane.
//!
//! * [`plan`] — dependency-ordered update plans.
//! * [`session`] — the sans-IO [`session::UpdateSession`] plan-execution
//!   engine: acknowledgment modes (no-wait, barrier-based, RUM fine-grained
//!   acks), the outstanding window, dependency gating and the failure policy,
//!   all behind a pure input → effects interface.
//! * [`controller`] — the [`controller::Controller`] simulation node, a thin
//!   driver of the session (the `rum_tcp` crate drives the same session over
//!   real TCP sockets).
//! * [`scenarios`] — builders for the paper's experimental setups: the
//!   triangle path-migration testbed (Figures 1b, 6, 7) and the single-switch
//!   bulk-update workload (Figure 8 and Table 1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod controller;
pub mod plan;
pub mod resync;
pub mod scenarios;
pub mod session;

pub use backoff::BackoffPolicy;
pub use controller::Controller;
pub use plan::{PlanError, PlannedMod, UpdatePlan};
pub use resync::{
    is_resync_token, DesiredStore, Reconciler, ResyncConfig, ResyncEffect, ResyncInput,
    ResyncRound, ResyncStatus,
};
pub use scenarios::{BulkUpdateScenario, TriangleScenario};
pub use session::{
    AbortReport, AckMode, ConnId, FailurePolicy, SessionEffect, SessionInput, SessionOutcome,
    SessionTimerToken, UpdateSession,
};
