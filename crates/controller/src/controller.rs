//! The simulator driver for the sans-IO [`UpdateSession`].
//!
//! [`Controller`] is a thin `simnet` node, the controller-side mirror of how
//! `rum::RumProxy` drives `rum::RumEngine`: it translates simulator events
//! into [`SessionInput`]s, executes the returned [`SessionEffect`]s through
//! the simulator [`Context`] (control messages, timers, trace records), and
//! exposes the session for post-run inspection.  All plan-execution logic —
//! dependency gating, the window, acknowledgment modes, the failure policy —
//! lives in the session; the `rum_tcp` crate drives the very same state
//! machine over real TCP sockets.

use crate::plan::UpdatePlan;
use crate::resync::{is_resync_token, Reconciler, ResyncConfig, ResyncEffect, ResyncInput};
use crate::session::{ConnId, SessionEffect, SessionInput, SessionTimerToken, UpdateSession};
use openflow::OfMessage;
use simnet::{Context, EventPayload, Node, NodeId, SimTime, TraceEvent};
use std::any::Any;
use std::collections::HashMap;

// Re-exported for the many callers that predate the session split.
pub use crate::session::AckMode;

/// Timer token used to start the update; session timers are offset by one.
const TOKEN_START: u64 = 0;

/// A controller node that executes an [`UpdatePlan`] against a set of switch
/// connections by driving an [`UpdateSession`] inside the simulator.
pub struct Controller {
    label: String,
    session: UpdateSession,
    connections: Vec<NodeId>,
    control_latency: SimTime,
    start_at: SimTime,
    started: bool,
    /// PacketIns from nodes that are not plan connections (the session only
    /// sees traffic on known connections).
    stray_packet_ins: u64,
    /// Optional reconciliation engine; when enabled, a Hello on a mapped
    /// connection (the simulator's reconnect signal — nothing else initiates
    /// one mid-session) starts a resync once the main session settles.
    resync: Option<Reconciler>,
}

impl Controller {
    /// Creates a controller executing `plan` with the given acknowledgment
    /// mode and window, starting the update at `start_at`.
    pub fn new(
        label: impl Into<String>,
        plan: UpdatePlan,
        ack_mode: AckMode,
        window: usize,
        start_at: SimTime,
    ) -> Self {
        Controller {
            label: label.into(),
            session: UpdateSession::new(plan, ack_mode, window),
            connections: Vec::new(),
            control_latency: SimTime::from_micros(200),
            start_at,
            started: false,
            stray_packet_ins: 0,
            resync: None,
        }
    }

    /// Enables declarative resync: every confirmed modification joins the
    /// reconciler's desired store, and a reconnecting switch is read back
    /// and repaired until its table matches.  Returns the reconciler so the
    /// caller can seed preinstalled state or attach metrics.
    pub fn enable_resync(&mut self, config: ResyncConfig) -> &mut Reconciler {
        self.resync.insert(Reconciler::new(config))
    }

    /// The reconciler, if resync is enabled.
    pub fn reconciler(&self) -> Option<&Reconciler> {
        self.resync.as_ref()
    }

    /// Mutable access to the reconciler, if resync is enabled.
    pub fn reconciler_mut(&mut self) -> Option<&mut Reconciler> {
        self.resync.as_mut()
    }

    /// Sets the nodes terminating each switch connection (index = the
    /// `SwitchRef` used in the plan).  The node can be the switch itself or a
    /// RUM proxy impersonating it.
    pub fn set_connections(&mut self, connections: Vec<NodeId>) {
        self.connections = connections;
    }

    /// Sets the one-way control-channel latency used for outgoing messages.
    pub fn set_control_latency(&mut self, latency: SimTime) {
        self.control_latency = latency;
    }

    /// Read access to the update session (plan, timestamps, outcome).
    pub fn session(&self) -> &UpdateSession {
        &self.session
    }

    /// Mutable access to the update session, e.g. to set a
    /// [`crate::session::FailurePolicy`] before the run starts.
    pub fn session_mut(&mut self) -> &mut UpdateSession {
        &mut self.session
    }

    /// The update plan.
    pub fn plan(&self) -> &UpdatePlan {
        self.session.plan()
    }

    /// Number of confirmed modifications.
    pub fn confirmed_count(&self) -> usize {
        self.session.confirmed_count()
    }

    /// Number of sent modifications.
    pub fn sent_count(&self) -> usize {
        self.session.sent_count()
    }

    /// Modifications rejected by the switch or given up on by the failure
    /// policy.
    pub fn failed(&self) -> &[u64] {
        self.session.failed()
    }

    /// True once every modification in the plan is confirmed.
    pub fn is_complete(&self) -> bool {
        self.session.is_complete()
    }

    /// When the last modification was confirmed, if the update finished.
    pub fn completed_at(&self) -> Option<SimTime> {
        self.session.completed_at().map(SimTime::from)
    }

    /// Confirmation time per modification id, in simulation time.
    pub fn confirmation_times(&self) -> HashMap<u64, SimTime> {
        self.session
            .confirmation_times()
            .iter()
            .map(|(&id, &d)| (id, SimTime::from(d)))
            .collect()
    }

    /// Send time per modification id, in simulation time.
    pub fn send_times(&self) -> HashMap<u64, SimTime> {
        self.session
            .send_times()
            .iter()
            .map(|(&id, &d)| (id, SimTime::from(d)))
            .collect()
    }

    /// PacketIn messages received (e.g. probes leaking to a non-RUM
    /// controller, or data packets punted by a switch).
    pub fn packet_ins_received(&self) -> u64 {
        self.session.packet_ins_received() + self.stray_packet_ins
    }

    /// Feeds one input into the session and executes the effects.
    fn drive(&mut self, input: SessionInput, ctx: &mut Context<'_>) {
        let effects = self.session.handle(ctx.now().into(), input);
        for effect in effects {
            match effect {
                SessionEffect::Send { conn, message } => {
                    // A reply addressed to the sentinel conn of an unmapped
                    // sender has nowhere to go; plan sends always resolve.
                    let Some(&node) = self.connections.get(conn.index()) else {
                        continue;
                    };
                    if let OfMessage::FlowMod { ref body, .. } = message {
                        ctx.record(TraceEvent::FlowModSent {
                            cookie: body.cookie,
                            time: ctx.now(),
                        });
                    }
                    ctx.send_control(node, message, self.control_latency);
                }
                SessionEffect::ArmTimer { delay, token } => {
                    ctx.set_timer(delay.into(), token.raw() + 1);
                }
                SessionEffect::Confirmed { id } => {
                    ctx.record(TraceEvent::ControlPlaneConfirmed {
                        cookie: id,
                        time: ctx.now(),
                    });
                    // A confirmed rule is now desired state: remember it so
                    // a later restart can be repaired declaratively.
                    if let Some(resync) = self.resync.as_mut() {
                        if let Some(m) = self.session.plan().get(id) {
                            resync.store_mut().note_confirmed(m.target, &m.flow_mod);
                        }
                    }
                }
                SessionEffect::Rejected { id, err_type, code } => {
                    ctx.record(TraceEvent::Marker {
                        label: format!(
                            "{}: flow-mod {id} rejected (type {err_type}, code {code})",
                            self.label
                        ),
                        time: ctx.now(),
                    });
                }
                SessionEffect::Completed { .. } => {
                    ctx.record(TraceEvent::Marker {
                        label: format!("{}: update complete", self.label),
                        time: ctx.now(),
                    });
                    self.drive_resync(ResyncInput::SessionSettled, ctx);
                }
                SessionEffect::Aborted { report } => {
                    ctx.record(TraceEvent::Marker {
                        label: format!(
                            "{}: update aborted (mod {} failed, {} cancelled, {} rolled back)",
                            self.label,
                            report.failed,
                            report.cancelled.len(),
                            report.rolled_back.len()
                        ),
                        time: ctx.now(),
                    });
                    self.drive_resync(ResyncInput::SessionSettled, ctx);
                }
            }
        }
    }

    /// Feeds one input into the reconciler (when enabled) and executes the
    /// effects through the simulator.
    fn drive_resync(&mut self, input: ResyncInput, ctx: &mut Context<'_>) {
        let Some(resync) = self.resync.as_mut() else {
            return;
        };
        let effects = resync.handle(ctx.now().into(), input);
        for effect in effects {
            match effect {
                ResyncEffect::Send { conn, message } => {
                    let Some(&node) = self.connections.get(conn.index()) else {
                        continue;
                    };
                    if let OfMessage::FlowMod { ref body, .. } = message {
                        ctx.record(TraceEvent::FlowModSent {
                            cookie: body.cookie,
                            time: ctx.now(),
                        });
                    }
                    ctx.send_control(node, message, self.control_latency);
                }
                ResyncEffect::ArmTimer { delay, token } => {
                    // Same +1 offset as session timers; resync tokens are
                    // `>= RESYNC_TIMER_BASE`, so the two namespaces never
                    // collide and firing routes on magnitude.
                    ctx.set_timer(delay.into(), token + 1);
                }
                ResyncEffect::Converged { conn, rounds, .. } => {
                    ctx.record(TraceEvent::Marker {
                        label: format!(
                            "{}: resync converged for {conn} after {rounds} round(s)",
                            self.label
                        ),
                        time: ctx.now(),
                    });
                }
                ResyncEffect::GaveUp {
                    conn,
                    rounds,
                    final_diff,
                } => {
                    ctx.record(TraceEvent::Marker {
                        label: format!(
                            "{}: resync gave up on {conn} after {rounds} round(s), {final_diff} rule(s) off",
                            self.label
                        ),
                        time: ctx.now(),
                    });
                }
            }
        }
    }
}

impl Node for Controller {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.start_at, TOKEN_START);
    }

    fn handle(&mut self, event: EventPayload, ctx: &mut Context<'_>) {
        match event {
            EventPayload::Timer { token: TOKEN_START } if !self.started => {
                self.started = true;
                assert!(
                    !self.connections.is_empty() || self.session.plan().is_empty(),
                    "controller {} has no switch connections configured",
                    self.label
                );
                ctx.record(TraceEvent::Marker {
                    label: format!("{}: update start", self.label),
                    time: ctx.now(),
                });
                self.drive(SessionInput::Started, ctx);
            }
            EventPayload::Timer { token } if token > TOKEN_START => {
                let raw = token - 1;
                if is_resync_token(raw) {
                    self.drive_resync(ResyncInput::TimerFired { token: raw }, ctx);
                } else {
                    self.drive(
                        SessionInput::TimerFired {
                            token: SessionTimerToken::from_raw(raw),
                        },
                        ctx,
                    );
                }
            }
            EventPayload::Timer { .. } => {}
            EventPayload::Control { from, message } => {
                match self.connections.iter().position(|&n| n == from) {
                    Some(index) => {
                        let conn = ConnId::new(index);
                        if self.resync.is_some() {
                            match &message {
                                // A switch only sends Hello mid-run when it
                                // reattaches after a restart: answer the
                                // handshake and flag the reconnect.
                                OfMessage::Hello { xid } => {
                                    let xid = *xid;
                                    ctx.send_control(
                                        from,
                                        OfMessage::Hello { xid },
                                        self.control_latency,
                                    );
                                    self.drive_resync(ResyncInput::SwitchReconnected { conn }, ctx);
                                    return;
                                }
                                // Aged-out rules leave the desired store no
                                // matter which engine is currently live.
                                OfMessage::FlowRemoved { .. } => {
                                    self.drive_resync(
                                        ResyncInput::FromSwitch { conn, message },
                                        ctx,
                                    );
                                    return;
                                }
                                _ => {}
                            }
                            // Replies belong to whichever engine is live:
                            // the session until it settles, the reconciler
                            // (readbacks, delta acks) afterwards.
                            if self.session.outcome().is_some() {
                                self.drive_resync(ResyncInput::FromSwitch { conn, message }, ctx);
                                return;
                            }
                        }
                        self.drive(SessionInput::FromSwitch { conn, message }, ctx)
                    }
                    None => match message {
                        // Traffic from nodes outside the plan's connections
                        // (e.g. a RUM proxy relaying an ack that surfaced at
                        // a neighbouring switch): answer liveness directly
                        // and count punted packets here; acknowledgments
                        // correlate by cookie, not by connection, so they go
                        // into the session under a sentinel conn that plan
                        // sends can never resolve to.
                        OfMessage::PacketIn { .. } => self.stray_packet_ins += 1,
                        OfMessage::EchoRequest { xid, data } => ctx.send_control(
                            from,
                            OfMessage::EchoReply { xid, data },
                            self.control_latency,
                        ),
                        OfMessage::Hello { xid } => {
                            ctx.send_control(from, OfMessage::Hello { xid }, self.control_latency)
                        }
                        other => self.drive(
                            SessionInput::FromSwitch {
                                conn: ConnId::new(usize::MAX),
                                message: other,
                            },
                            ctx,
                        ),
                    },
                }
            }
            EventPayload::Packet { .. } => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::FailurePolicy;
    use ofswitch::SwitchModel;
    use openflow::messages::FlowMod;
    use openflow::{Action, DatapathId, OfMatch};
    use simnet::OpenFlowSwitch;
    use simnet::Simulator;
    use std::net::Ipv4Addr;
    use std::time::Duration;

    fn small_plan(n: u64) -> UpdatePlan {
        let mut plan = UpdatePlan::new();
        for i in 0..n {
            plan.add(
                i + 1,
                0,
                FlowMod::add(
                    OfMatch::ipv4_pair(
                        Ipv4Addr::new(10, 0, (i >> 8) as u8, (i & 0xff) as u8),
                        Ipv4Addr::new(10, 1, 0, 1),
                    ),
                    100,
                    vec![Action::output(2)],
                ),
            )
            .unwrap();
        }
        plan
    }

    fn run_with_switch(
        plan: UpdatePlan,
        ack_mode: AckMode,
        window: usize,
        model: SwitchModel,
        until: SimTime,
    ) -> (Simulator, NodeId, NodeId) {
        let mut sim = Simulator::new(3);
        let controller = Controller::new("ctrl", plan, ack_mode, window, SimTime::from_millis(1));
        let ctrl_id = sim.add_node(controller);
        let mut sw = OpenFlowSwitch::new("s1", DatapathId::new(1), 4, model);
        sw.connect_controller(ctrl_id);
        let sw_id = sim.add_node(sw);
        sim.node_mut::<Controller>(ctrl_id)
            .unwrap()
            .set_connections(vec![sw_id]);
        sim.run_until(until);
        (sim, ctrl_id, sw_id)
    }

    #[test]
    fn no_wait_mode_sends_everything_immediately() {
        let (sim, ctrl_id, sw_id) = run_with_switch(
            small_plan(20),
            AckMode::NoWait,
            usize::MAX >> 1,
            SwitchModel::faithful(),
            SimTime::from_secs(1),
        );
        let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
        assert!(ctrl.is_complete());
        assert_eq!(ctrl.sent_count(), 20);
        let sw = sim.node_ref::<OpenFlowSwitch>(sw_id).unwrap();
        assert_eq!(sw.flow_mods_processed(), 20);
    }

    #[test]
    fn barrier_mode_confirms_all_mods_on_faithful_switch() {
        let (sim, ctrl_id, sw_id) = run_with_switch(
            small_plan(30),
            AckMode::Barriers { batch: 10 },
            10,
            SwitchModel::faithful(),
            SimTime::from_secs(5),
        );
        let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
        assert!(ctrl.is_complete(), "confirmed {}", ctrl.confirmed_count());
        assert!(ctrl.completed_at().is_some());
        // On a faithful switch, every confirmation must come after the
        // corresponding data-plane activation.
        let delays = sim.trace().activation_delays();
        assert_eq!(delays.len(), 30);
        assert!(delays.iter().all(|d| d.delay_millis() >= 0.0));
        let sw = sim.node_ref::<OpenFlowSwitch>(sw_id).unwrap();
        assert!(sw.barriers_processed() >= 3);
    }

    #[test]
    fn barrier_mode_on_buggy_switch_confirms_too_early() {
        let (sim, ctrl_id, _) = run_with_switch(
            small_plan(30),
            AckMode::Barriers { batch: 1 },
            30,
            SwitchModel::hp5406zl(),
            SimTime::from_secs(10),
        );
        let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
        assert!(ctrl.is_complete());
        // The whole point of the paper: with a buggy switch, barrier-based
        // confirmations arrive before the data plane activation.
        let delays = sim.trace().activation_delays();
        assert_eq!(delays.len(), 30);
        let negative = delays.iter().filter(|d| d.delay_millis() < 0.0).count();
        assert!(
            negative > 15,
            "expected most confirmations to be premature, got {negative}/30"
        );
    }

    #[test]
    fn window_limits_outstanding_mods() {
        let (sim, ctrl_id, _) = run_with_switch(
            small_plan(50),
            AckMode::RumAcks,
            5,
            SwitchModel::faithful(),
            SimTime::from_secs(2),
        );
        let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
        // Nothing ever acks in RumAcks mode without a RUM layer, so exactly
        // one window worth of modifications is in flight.
        assert_eq!(ctrl.sent_count(), 5);
        assert_eq!(ctrl.confirmed_count(), 0);
        assert!(!ctrl.is_complete());
    }

    #[test]
    fn dependencies_gate_sending() {
        let mut plan = UpdatePlan::new();
        plan.add(
            1,
            0,
            FlowMod::add(
                OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 1, 0, 1)),
                100,
                vec![Action::output(2)],
            ),
        )
        .unwrap();
        plan.add_with_deps(
            2,
            0,
            FlowMod::add(
                OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, 2), Ipv4Addr::new(10, 1, 0, 2)),
                100,
                vec![Action::output(2)],
            ),
            vec![1],
        )
        .unwrap();
        let (sim, ctrl_id, _) = run_with_switch(
            plan,
            AckMode::Barriers { batch: 1 },
            10,
            SwitchModel::faithful(),
            SimTime::from_secs(2),
        );
        let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
        assert!(ctrl.is_complete());
        let sent = ctrl.send_times();
        let confirmed = ctrl.confirmation_times();
        assert!(
            sent[&2] >= confirmed[&1],
            "mod 2 (sent {}) must wait for mod 1's confirmation ({})",
            sent[&2],
            confirmed[&1]
        );
    }

    #[test]
    fn rejected_mods_are_recorded_as_failed() {
        let mut model = SwitchModel::faithful();
        model.table_capacity = 5;
        let (sim, ctrl_id, _) = run_with_switch(
            small_plan(8),
            AckMode::NoWait,
            100,
            model,
            SimTime::from_secs(2),
        );
        let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
        assert_eq!(
            ctrl.failed().len(),
            3,
            "three mods exceed the 5-entry table"
        );
    }

    /// The failure policy works end to end inside the simulator: with
    /// RumAcks and no RUM layer nothing ever confirms, so every sent mod
    /// times out, retries, and finally aborts the update with a rollback.
    #[test]
    fn failure_policy_aborts_update_without_acks() {
        let mut sim = Simulator::new(3);
        let mut plan = UpdatePlan::new();
        let first = plan
            .add(
                1,
                0,
                FlowMod::add(
                    OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 1, 0, 1)),
                    100,
                    vec![Action::output(2)],
                ),
            )
            .unwrap();
        plan.add_with_deps(
            2,
            0,
            FlowMod::add(
                OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, 2), Ipv4Addr::new(10, 1, 0, 2)),
                100,
                vec![Action::output(2)],
            ),
            vec![first],
        )
        .unwrap();
        let mut controller =
            Controller::new("ctrl", plan, AckMode::RumAcks, 10, SimTime::from_millis(1));
        controller
            .session_mut()
            .set_failure_policy(FailurePolicy::retry(Duration::from_millis(50), 2));
        let ctrl_id = sim.add_node(controller);
        let mut sw = OpenFlowSwitch::new("s1", DatapathId::new(1), 4, SwitchModel::faithful());
        sw.connect_controller(ctrl_id);
        let sw_id = sim.add_node(sw);
        sim.node_mut::<Controller>(ctrl_id)
            .unwrap()
            .set_connections(vec![sw_id]);
        sim.run_until(SimTime::from_secs(2));

        let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
        assert!(!ctrl.is_complete());
        assert_eq!(ctrl.failed(), &[1], "mod 1 exhausted its retries");
        assert!(matches!(
            ctrl.session().outcome(),
            Some(crate::session::SessionOutcome::Aborted { report })
                if report.cancelled == vec![2]
        ));
        // Mod 1 was sent 1 + 2 retries = 3 times, plus one rollback delete.
        let sw = sim.node_ref::<OpenFlowSwitch>(sw_id).unwrap();
        assert_eq!(sw.flow_mods_processed(), 4);
    }

    #[test]
    #[should_panic(expected = "window must be at least 1")]
    fn zero_window_is_rejected() {
        Controller::new("c", UpdatePlan::new(), AckMode::NoWait, 0, SimTime::ZERO);
    }

    /// The whole reconciliation loop end to end inside the simulator: a
    /// restart wipes both the preinstalled rule and everything the update
    /// installed, the reattach Hello triggers a resync, and the repaired
    /// table ends exactly equal to the desired store.
    #[test]
    fn resync_restores_wiped_rules_after_restart() {
        use crate::backoff::BackoffPolicy;
        use crate::resync::ResyncConfig;
        use ofswitch::FaultPlan;

        let mut sim = Simulator::new(7);
        let drop_all = FlowMod::add(OfMatch::wildcard_all(), 0, Vec::new()).with_cookie(1);
        let mut controller = Controller::new(
            "ctrl",
            small_plan(6),
            AckMode::NoWait,
            16,
            SimTime::from_millis(1),
        );
        let reconciler = controller.enable_resync(ResyncConfig {
            backoff: BackoffPolicy::new(Duration::from_millis(20), Duration::from_millis(160)),
            max_rounds: 6,
            ack_mode: AckMode::Barriers { batch: 4 },
            window: 8,
            failure_policy: FailurePolicy::retry(Duration::from_millis(50), 2),
        });
        reconciler.store_mut().note_confirmed(0, &drop_all);
        let ctrl_id = sim.add_node(controller);

        let faults = FaultPlan::seeded(7).with_restart_after(3);
        let mut sw = OpenFlowSwitch::with_faults(
            "s1",
            DatapathId::new(1),
            4,
            SwitchModel::faithful(),
            faults,
        );
        sw.preinstall(&drop_all);
        sw.connect_controller(ctrl_id);
        sw.set_reconnect_delay(Some(Duration::from_millis(30)));
        let sw_id = sim.add_node(sw);
        sim.node_mut::<Controller>(ctrl_id)
            .unwrap()
            .set_connections(vec![sw_id]);
        sim.run_until(SimTime::from_secs(20));

        let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
        let resync = ctrl.reconciler().unwrap();
        let status = resync.status(0).expect("resync ran");
        assert!(status.converged, "status: {status:?}");
        assert_eq!(status.final_diff, 0);
        assert!(
            status.rounds >= 2,
            "a wiped table cannot converge in one round"
        );
        // All 7 desired rules (6 planned + the preinstalled drop-all) were
        // wiped and re-issued.
        assert_eq!(status.delta_mods, 7);

        // The real test: the switch's control table is *equal* to the
        // desired store — same identities, same cookies, same actions.
        let sw = sim.node_ref::<OpenFlowSwitch>(sw_id).unwrap();
        let table = sw.behavior().control_table();
        assert_eq!(table.len(), resync.store().len(0));
        for entry in table.entries() {
            let want = resync
                .store()
                .get(0, &entry.match_, entry.priority)
                .expect("installed rule is desired");
            assert_eq!(want.actions, entry.actions);
        }
    }
}
