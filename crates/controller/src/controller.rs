//! The controller simulation node.

use crate::plan::UpdatePlan;
use openflow::{OfMessage, Xid};
use simnet::{Context, EventPayload, Node, NodeId, SimTime, TraceEvent};
use std::any::Any;
use std::collections::{HashMap, HashSet};

/// How the controller decides that a modification has been applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckMode {
    /// Fire-and-forget: every modification is considered confirmed the
    /// moment it is sent.  No consistency guarantee — this is the "no wait"
    /// lower bound of Figure 7.
    NoWait,
    /// Send an OpenFlow barrier after every `batch` modifications (or when
    /// nothing else can be sent) and treat the corresponding reply as the
    /// confirmation for everything sent before it.  This is what every
    /// consistent-update system in the literature does; it is only correct
    /// if barriers are honest (or made honest by RUM).
    Barriers {
        /// Modifications per barrier.
        batch: usize,
    },
    /// Wait for RUM's fine-grained positive acknowledgment (an error message
    /// with the reserved RUM code echoing the modification's xid).  This is
    /// the "RUM-aware controller" mode from Section 2 of the paper.
    RumAcks,
}

/// Timer token used to start the update.
const TOKEN_START: u64 = 0;

/// A controller that executes an [`UpdatePlan`] against a set of switch
/// connections, respecting dependencies, a confirmation window, and the
/// configured acknowledgment mode.
pub struct Controller {
    label: String,
    plan: UpdatePlan,
    connections: Vec<NodeId>,
    ack_mode: AckMode,
    /// Maximum number of sent-but-unconfirmed modifications (the paper's K).
    window: usize,
    control_latency: SimTime,
    start_at: SimTime,

    sent: HashSet<u64>,
    confirmed: HashSet<u64>,
    confirmation_times: HashMap<u64, SimTime>,
    send_times: HashMap<u64, SimTime>,
    failed: Vec<u64>,
    /// Outstanding barriers: barrier xid -> cookies it will confirm.
    barrier_covers: HashMap<Xid, Vec<u64>>,
    /// Cookies sent since the last barrier (barrier mode only).
    since_last_barrier: Vec<u64>,
    next_barrier_xid: Xid,
    packet_ins_received: u64,
    completed_at: Option<SimTime>,
    started: bool,
}

impl Controller {
    /// Creates a controller executing `plan` with the given acknowledgment
    /// mode and window, starting the update at `start_at`.
    pub fn new(
        label: impl Into<String>,
        plan: UpdatePlan,
        ack_mode: AckMode,
        window: usize,
        start_at: SimTime,
    ) -> Self {
        assert!(window > 0, "window must be at least 1");
        Controller {
            label: label.into(),
            plan,
            connections: Vec::new(),
            ack_mode,
            window,
            control_latency: SimTime::from_micros(200),
            start_at,
            sent: HashSet::new(),
            confirmed: HashSet::new(),
            confirmation_times: HashMap::new(),
            send_times: HashMap::new(),
            failed: Vec::new(),
            barrier_covers: HashMap::new(),
            since_last_barrier: Vec::new(),
            next_barrier_xid: 0x4000_0000,
            packet_ins_received: 0,
            completed_at: None,
            started: false,
        }
    }

    /// Sets the nodes terminating each switch connection (index = the
    /// `SwitchRef` used in the plan).  The node can be the switch itself or a
    /// RUM proxy impersonating it.
    pub fn set_connections(&mut self, connections: Vec<NodeId>) {
        self.connections = connections;
    }

    /// Sets the one-way control-channel latency used for outgoing messages.
    pub fn set_control_latency(&mut self, latency: SimTime) {
        self.control_latency = latency;
    }

    /// The update plan.
    pub fn plan(&self) -> &UpdatePlan {
        &self.plan
    }

    /// Number of confirmed modifications.
    pub fn confirmed_count(&self) -> usize {
        self.confirmed.len()
    }

    /// Number of sent modifications.
    pub fn sent_count(&self) -> usize {
        self.sent.len()
    }

    /// Modifications rejected by the switch (error replies).
    pub fn failed(&self) -> &[u64] {
        &self.failed
    }

    /// True once every modification in the plan is confirmed.
    pub fn is_complete(&self) -> bool {
        self.confirmed.len() == self.plan.len()
    }

    /// When the last modification was confirmed, if the update finished.
    pub fn completed_at(&self) -> Option<SimTime> {
        self.completed_at
    }

    /// Confirmation time per modification id.
    pub fn confirmation_times(&self) -> &HashMap<u64, SimTime> {
        &self.confirmation_times
    }

    /// Send time per modification id.
    pub fn send_times(&self) -> &HashMap<u64, SimTime> {
        &self.send_times
    }

    /// PacketIn messages received (e.g. probes leaking to a non-RUM
    /// controller, or data packets punted by a switch).
    pub fn packet_ins_received(&self) -> u64 {
        self.packet_ins_received
    }

    fn unconfirmed_in_flight(&self) -> usize {
        self.sent.len() - self.sent.intersection(&self.confirmed).count()
    }

    fn dispatch_ready(&mut self, ctx: &mut Context<'_>) {
        loop {
            if self.unconfirmed_in_flight() >= self.window {
                break;
            }
            let mut ready = self.plan.ready_ids(&self.confirmed, &self.sent);
            if ready.is_empty() {
                break;
            }
            ready.sort_unstable();
            let budget = self.window - self.unconfirmed_in_flight();
            let mut sent_this_round = 0usize;
            for id in ready.into_iter().take(budget) {
                self.send_mod(id, ctx);
                sent_this_round += 1;
                // In barrier mode, punctuate every `batch` modifications.
                if let AckMode::Barriers { .. } = self.ack_mode {
                    self.maybe_send_barrier(ctx, false);
                }
            }
            if sent_this_round == 0 {
                break;
            }
        }
        // If we are in barrier mode and there are loose (uncovered) mods but
        // nothing more to send, close them out with a barrier.
        if let AckMode::Barriers { .. } = self.ack_mode {
            if !self.since_last_barrier.is_empty()
                && self.plan.ready_ids(&self.confirmed, &self.sent).is_empty()
            {
                self.maybe_send_barrier(ctx, true);
            }
        }
    }

    fn send_mod(&mut self, id: u64, ctx: &mut Context<'_>) {
        let m = self.plan.get(id).expect("ready id exists").clone();
        let target = self.connections[m.target];
        let msg = OfMessage::FlowMod {
            xid: id as Xid,
            body: m.flow_mod.clone(),
        };
        ctx.send_control(target, msg, self.control_latency);
        ctx.record(TraceEvent::FlowModSent {
            cookie: id,
            time: ctx.now(),
        });
        self.send_times.insert(id, ctx.now());
        self.sent.insert(id);
        match self.ack_mode {
            AckMode::NoWait => self.mark_confirmed(id, ctx),
            AckMode::Barriers { .. } => self.since_last_barrier.push(id),
            AckMode::RumAcks => {}
        }
    }

    fn maybe_send_barrier(&mut self, ctx: &mut Context<'_>, force: bool) {
        let AckMode::Barriers { batch } = self.ack_mode else {
            return;
        };
        if self.since_last_barrier.is_empty() {
            return;
        }
        if !force && self.since_last_barrier.len() < batch {
            return;
        }
        // Send one barrier per target that has uncovered modifications, so a
        // multi-switch plan gets per-switch confirmation.
        let mut per_target: HashMap<usize, Vec<u64>> = HashMap::new();
        for id in std::mem::take(&mut self.since_last_barrier) {
            let target = self.plan.get(id).expect("sent id exists").target;
            per_target.entry(target).or_default().push(id);
        }
        for (target, cookies) in per_target {
            let xid = self.next_barrier_xid;
            self.next_barrier_xid += 1;
            self.barrier_covers.insert(xid, cookies);
            ctx.send_control(
                self.connections[target],
                OfMessage::BarrierRequest { xid },
                self.control_latency,
            );
        }
    }

    fn mark_confirmed(&mut self, id: u64, ctx: &mut Context<'_>) {
        if !self.confirmed.insert(id) {
            return;
        }
        self.confirmation_times.insert(id, ctx.now());
        ctx.record(TraceEvent::ControlPlaneConfirmed {
            cookie: id,
            time: ctx.now(),
        });
        if self.is_complete() && self.completed_at.is_none() {
            self.completed_at = Some(ctx.now());
            ctx.record(TraceEvent::Marker {
                label: format!("{}: update complete", self.label),
                time: ctx.now(),
            });
        }
    }

    fn handle_control(&mut self, from: NodeId, msg: OfMessage, ctx: &mut Context<'_>) {
        match msg {
            OfMessage::BarrierReply { xid } => {
                if let Some(cookies) = self.barrier_covers.remove(&xid) {
                    for id in cookies {
                        self.mark_confirmed(id, ctx);
                    }
                    self.dispatch_ready(ctx);
                }
            }
            OfMessage::Error { xid, ref body } => {
                if let Some(acked) = msg.as_rum_ack() {
                    let id = u64::from(acked);
                    if self.sent.contains(&id) {
                        self.mark_confirmed(id, ctx);
                        self.dispatch_ready(ctx);
                    }
                } else {
                    let id = u64::from(xid);
                    if self.sent.contains(&id) && !self.failed.contains(&id) {
                        self.failed.push(id);
                        ctx.record(TraceEvent::Marker {
                            label: format!(
                                "{}: flow-mod {id} rejected (type {}, code {})",
                                self.label, body.err_type, body.code
                            ),
                            time: ctx.now(),
                        });
                    }
                }
            }
            OfMessage::PacketIn { .. } => {
                self.packet_ins_received += 1;
            }
            OfMessage::EchoRequest { xid, data } => {
                ctx.send_control(
                    from,
                    OfMessage::EchoReply { xid, data },
                    self.control_latency,
                );
            }
            OfMessage::Hello { xid } => {
                ctx.send_control(from, OfMessage::Hello { xid }, self.control_latency);
            }
            _ => {}
        }
    }
}

impl Node for Controller {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.start_at, TOKEN_START);
    }

    fn handle(&mut self, event: EventPayload, ctx: &mut Context<'_>) {
        match event {
            EventPayload::Timer { token: TOKEN_START } if !self.started => {
                self.started = true;
                assert!(
                    !self.connections.is_empty() || self.plan.is_empty(),
                    "controller {} has no switch connections configured",
                    self.label
                );
                ctx.record(TraceEvent::Marker {
                    label: format!("{}: update start", self.label),
                    time: ctx.now(),
                });
                self.dispatch_ready(ctx);
            }
            EventPayload::Timer { .. } => {}
            EventPayload::Control { from, message } => self.handle_control(from, message, ctx),
            EventPayload::Packet { .. } => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofswitch::{OpenFlowSwitch, SwitchModel};
    use openflow::messages::FlowMod;
    use openflow::{Action, DatapathId, OfMatch};
    use simnet::Simulator;
    use std::net::Ipv4Addr;

    fn small_plan(n: u64) -> UpdatePlan {
        let mut plan = UpdatePlan::new();
        for i in 0..n {
            plan.add(
                i + 1,
                0,
                FlowMod::add(
                    OfMatch::ipv4_pair(
                        Ipv4Addr::new(10, 0, (i >> 8) as u8, (i & 0xff) as u8),
                        Ipv4Addr::new(10, 1, 0, 1),
                    ),
                    100,
                    vec![Action::output(2)],
                ),
            );
        }
        plan
    }

    fn run_with_switch(
        plan: UpdatePlan,
        ack_mode: AckMode,
        window: usize,
        model: SwitchModel,
        until: SimTime,
    ) -> (Simulator, NodeId, NodeId) {
        let mut sim = Simulator::new(3);
        let controller = Controller::new("ctrl", plan, ack_mode, window, SimTime::from_millis(1));
        let ctrl_id = sim.add_node(controller);
        let mut sw = OpenFlowSwitch::new("s1", DatapathId::new(1), 4, model);
        sw.connect_controller(ctrl_id);
        let sw_id = sim.add_node(sw);
        sim.node_mut::<Controller>(ctrl_id)
            .unwrap()
            .set_connections(vec![sw_id]);
        sim.run_until(until);
        (sim, ctrl_id, sw_id)
    }

    #[test]
    fn no_wait_mode_sends_everything_immediately() {
        let (sim, ctrl_id, sw_id) = run_with_switch(
            small_plan(20),
            AckMode::NoWait,
            usize::MAX >> 1,
            SwitchModel::faithful(),
            SimTime::from_secs(1),
        );
        let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
        assert!(ctrl.is_complete());
        assert_eq!(ctrl.sent_count(), 20);
        let sw = sim.node_ref::<OpenFlowSwitch>(sw_id).unwrap();
        assert_eq!(sw.flow_mods_processed(), 20);
    }

    #[test]
    fn barrier_mode_confirms_all_mods_on_faithful_switch() {
        let (sim, ctrl_id, sw_id) = run_with_switch(
            small_plan(30),
            AckMode::Barriers { batch: 10 },
            10,
            SwitchModel::faithful(),
            SimTime::from_secs(5),
        );
        let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
        assert!(ctrl.is_complete(), "confirmed {}", ctrl.confirmed_count());
        assert!(ctrl.completed_at().is_some());
        // On a faithful switch, every confirmation must come after the
        // corresponding data-plane activation.
        let delays = sim.trace().activation_delays();
        assert_eq!(delays.len(), 30);
        assert!(delays.iter().all(|d| d.delay_millis() >= 0.0));
        let sw = sim.node_ref::<OpenFlowSwitch>(sw_id).unwrap();
        assert!(sw.barriers_processed() >= 3);
    }

    #[test]
    fn barrier_mode_on_buggy_switch_confirms_too_early() {
        let (sim, ctrl_id, _) = run_with_switch(
            small_plan(30),
            AckMode::Barriers { batch: 1 },
            30,
            SwitchModel::hp5406zl(),
            SimTime::from_secs(10),
        );
        let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
        assert!(ctrl.is_complete());
        // The whole point of the paper: with a buggy switch, barrier-based
        // confirmations arrive before the data plane activation.
        let delays = sim.trace().activation_delays();
        assert_eq!(delays.len(), 30);
        let negative = delays.iter().filter(|d| d.delay_millis() < 0.0).count();
        assert!(
            negative > 15,
            "expected most confirmations to be premature, got {negative}/30"
        );
    }

    #[test]
    fn window_limits_outstanding_mods() {
        let (sim, ctrl_id, _) = run_with_switch(
            small_plan(50),
            AckMode::RumAcks,
            5,
            SwitchModel::faithful(),
            SimTime::from_secs(2),
        );
        let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
        // Nothing ever acks in RumAcks mode without a RUM layer, so exactly
        // one window worth of modifications is in flight.
        assert_eq!(ctrl.sent_count(), 5);
        assert_eq!(ctrl.confirmed_count(), 0);
        assert!(!ctrl.is_complete());
    }

    #[test]
    fn dependencies_gate_sending() {
        let mut plan = UpdatePlan::new();
        plan.add(
            1,
            0,
            FlowMod::add(
                OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 1, 0, 1)),
                100,
                vec![Action::output(2)],
            ),
        );
        plan.add_with_deps(
            2,
            0,
            FlowMod::add(
                OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, 2), Ipv4Addr::new(10, 1, 0, 2)),
                100,
                vec![Action::output(2)],
            ),
            vec![1],
        );
        let (sim, ctrl_id, _) = run_with_switch(
            plan,
            AckMode::Barriers { batch: 1 },
            10,
            SwitchModel::faithful(),
            SimTime::from_secs(2),
        );
        let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
        assert!(ctrl.is_complete());
        let sent = ctrl.send_times();
        let confirmed = ctrl.confirmation_times();
        assert!(
            sent[&2] >= confirmed[&1],
            "mod 2 (sent {}) must wait for mod 1's confirmation ({})",
            sent[&2],
            confirmed[&1]
        );
    }

    #[test]
    fn rejected_mods_are_recorded_as_failed() {
        let mut model = SwitchModel::faithful();
        model.table_capacity = 5;
        let (sim, ctrl_id, _) = run_with_switch(
            small_plan(8),
            AckMode::NoWait,
            100,
            model,
            SimTime::from_secs(2),
        );
        let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
        assert_eq!(
            ctrl.failed().len(),
            3,
            "three mods exceed the 5-entry table"
        );
    }

    #[test]
    #[should_panic(expected = "window must be at least 1")]
    fn zero_window_is_rejected() {
        Controller::new("c", UpdatePlan::new(), AckMode::NoWait, 0, SimTime::ZERO);
    }
}
