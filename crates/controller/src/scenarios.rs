//! Builders for the paper's experimental setups.
//!
//! Two scenarios cover every figure and table:
//!
//! * [`TriangleScenario`] — the end-to-end testbed of Figure 1a: hosts H1 and
//!   H2, software switches S1 and S3, and the hardware switch S2.  300 flows
//!   are pre-installed on the path S1→S3 and then migrated, consistently, to
//!   S1→S2→S3 (Figures 1b, 6 and 7).
//! * [`BulkUpdateScenario`] — the single-switch microbenchmark of Section
//!   5.2: a switch that starts with one low-priority drop-all rule and
//!   receives R rule installations with at most K outstanding, while traffic
//!   matching each rule is continuously offered (Figure 8 and Table 1).

use crate::plan::UpdatePlan;
use ofswitch::{FaultPlan, SwitchModel};
use openflow::messages::FlowMod;
use openflow::{Action, DatapathId, MacAddr, OfMatch, PacketHeader};
use simnet::traffic::{flow_header, FlowSpec, Host};
use simnet::OpenFlowSwitch;
use simnet::{FlowId, NodeId, SimTime, Simulator};

/// Base id for rule installations at switch S2 (triangle scenario) or the
/// device under test (bulk scenario).
pub const COOKIE_NEW_RULE_BASE: u64 = 1_000;
/// Base id for the path-flip modifications at switch S1 (triangle scenario).
pub const COOKIE_FLIP_RULE_BASE: u64 = 100_000;
/// Cookie used for pre-installed infrastructure rules (never part of a plan).
pub const COOKIE_PREINSTALLED: u64 = 1;

/// Priority of the per-flow forwarding rules.
pub const FLOW_RULE_PRIORITY: u16 = 100;
/// Priority of the catch-all drop rule every switch starts with.
pub const DROP_ALL_PRIORITY: u16 = 0;

/// Handles to the nodes and plan of a built triangle experiment.
#[derive(Debug)]
pub struct TriangleNet {
    /// Traffic source host (H1).
    pub h1: NodeId,
    /// Traffic destination host (H2).
    pub h2: NodeId,
    /// Ingress software switch (S1).
    pub s1: NodeId,
    /// The switch under test (S2, the "hardware" switch).
    pub s2: NodeId,
    /// Egress software switch (S3).
    pub s3: NodeId,
    /// The consistent path-migration plan (S2 installs before S1 flips).
    pub plan: UpdatePlan,
    /// Per-flow packet headers, indexed by flow number.
    pub flow_headers: Vec<PacketHeader>,
}

/// The triangle path-migration experiment (Figure 1a).
#[derive(Debug, Clone)]
pub struct TriangleScenario {
    /// Number of flows to migrate (the paper uses 300).
    pub n_flows: u32,
    /// Per-flow packet rate (the paper uses 250 packets/s).
    pub packets_per_sec: u64,
    /// When hosts start sending.
    pub traffic_start: SimTime,
    /// When hosts stop sending.
    pub traffic_stop: SimTime,
    /// Behaviour model of S2 (the switch whose acknowledgments are suspect).
    pub s2_model: SwitchModel,
    /// Behaviour model of the software switches S1 and S3.
    pub edge_model: SwitchModel,
}

impl Default for TriangleScenario {
    fn default() -> Self {
        TriangleScenario {
            n_flows: 300,
            packets_per_sec: 250,
            traffic_start: SimTime::ZERO,
            traffic_stop: SimTime::from_secs(4),
            s2_model: SwitchModel::hp5406zl(),
            edge_model: SwitchModel::faithful(),
        }
    }
}

/// Port map of the triangle topology (see Figure 1a).
pub mod triangle_ports {
    /// S1 port facing H1.
    pub const S1_TO_H1: u16 = 1;
    /// S1 port facing S3 (the old path).
    pub const S1_TO_S3: u16 = 2;
    /// S1 port facing S2 (the new path).
    pub const S1_TO_S2: u16 = 3;
    /// S2 port facing S1.
    pub const S2_TO_S1: u16 = 1;
    /// S2 port facing S3.
    pub const S2_TO_S3: u16 = 2;
    /// S3 port facing S1.
    pub const S3_TO_S1: u16 = 1;
    /// S3 port facing S2.
    pub const S3_TO_S2: u16 = 2;
    /// S3 port facing H2.
    pub const S3_TO_H2: u16 = 3;
}

impl TriangleScenario {
    /// MAC address used by H1.
    pub fn h1_mac() -> MacAddr {
        MacAddr::from_id(0x11)
    }

    /// MAC address used by H2.
    pub fn h2_mac() -> MacAddr {
        MacAddr::from_id(0x22)
    }

    /// The packet header of flow `i`.
    pub fn header(&self, i: u32) -> PacketHeader {
        flow_header(i, Self::h1_mac(), Self::h2_mac())
    }

    /// The cookie of the "install at S2" modification for flow `i`.
    pub fn s2_install_cookie(i: u32) -> u64 {
        COOKIE_NEW_RULE_BASE + u64::from(i)
    }

    /// The cookie of the "flip at S1" modification for flow `i`.
    pub fn s1_flip_cookie(i: u32) -> u64 {
        COOKIE_FLIP_RULE_BASE + u64::from(i)
    }

    /// Builds just the consistent migration plan — for every flow, install
    /// the forwarding rule at S2, then (and only then) flip S1 to the new
    /// next hop.  Switch references: 0 = S1, 1 = S2, 2 = S3.
    ///
    /// The plan names no simulator types, so the same plan drives the
    /// in-simulator [`crate::Controller`] and the TCP deployment.
    pub fn plan(&self) -> UpdatePlan {
        use triangle_ports::*;
        let mut plan = UpdatePlan::new();
        for i in 0..self.n_flows {
            let header = self.header(i);
            let m = OfMatch::ipv4_pair(header.nw_src, header.nw_dst);
            let install = plan
                .add(
                    Self::s2_install_cookie(i),
                    1,
                    FlowMod::add(m, FLOW_RULE_PRIORITY, vec![Action::output(S2_TO_S3)]),
                )
                .expect("triangle install cookies are unique");
            plan.add_with_deps(
                Self::s1_flip_cookie(i),
                0,
                FlowMod::modify_strict(m, FLOW_RULE_PRIORITY, vec![Action::output(S1_TO_S2)]),
                vec![install],
            )
            .expect("triangle flip cookies are unique");
        }
        plan
    }

    /// Builds hosts, switches, links, pre-installed state, traffic and the
    /// update plan inside `sim`.  The switches' controller connections are
    /// left unset: the caller wires them either directly to a
    /// [`crate::Controller`] or to RUM proxies.
    ///
    /// Switch references in the returned plan: 0 = S1, 1 = S2, 2 = S3.
    pub fn build(&self, sim: &mut Simulator) -> TriangleNet {
        use triangle_ports::*;

        let mut h1 = Host::new("H1");
        let mut h2 = Host::new("H2");
        let mut flow_headers = Vec::with_capacity(self.n_flows as usize);
        for i in 0..self.n_flows {
            let header = self.header(i);
            flow_headers.push(header);
            // A zero rate disables traffic (like the bulk scenario), which
            // speeds up control-plane-only runs.
            if self.packets_per_sec > 0 {
                h1.add_tx_flow(FlowSpec::constant_rate(
                    FlowId(u64::from(i)),
                    header,
                    1,
                    self.packets_per_sec,
                    self.traffic_start,
                    self.traffic_stop,
                ));
                h2.expect_flow(&header, FlowId(u64::from(i)));
            }
        }

        let mut s1 = OpenFlowSwitch::new("S1", DatapathId::new(1), 3, self.edge_model.clone());
        let mut s2 = OpenFlowSwitch::new("S2", DatapathId::new(2), 2, self.s2_model.clone());
        let mut s3 = OpenFlowSwitch::new("S3", DatapathId::new(3), 3, self.edge_model.clone());

        // Catch-all drop rules (the paper pre-installs a low-priority drop
        // rule so misses do not flood the controller with PacketIns).
        for sw in [&mut s1, &mut s2, &mut s3] {
            sw.preinstall(
                &FlowMod::add(OfMatch::wildcard_all(), DROP_ALL_PRIORITY, vec![])
                    .with_cookie(COOKIE_PREINSTALLED),
            );
        }
        // Initial paths: S1 forwards every flow towards S3; S3 delivers to H2.
        for (i, header) in flow_headers.iter().enumerate() {
            let m = OfMatch::ipv4_pair(header.nw_src, header.nw_dst);
            s1.preinstall(
                &FlowMod::add(m, FLOW_RULE_PRIORITY, vec![Action::output(S1_TO_S3)])
                    .with_cookie(COOKIE_PREINSTALLED + 1 + i as u64),
            );
            s3.preinstall(
                &FlowMod::add(m, FLOW_RULE_PRIORITY, vec![Action::output(S3_TO_H2)])
                    .with_cookie(COOKIE_PREINSTALLED + 10_000 + i as u64),
            );
        }

        let h1_id = sim.add_node(h1);
        let h2_id = sim.add_node(h2);
        let s1_id = sim.add_node(s1);
        let s2_id = sim.add_node(s2);
        let s3_id = sim.add_node(s3);

        let lat = SimTime::from_micros(50);
        let topo = sim.topology_mut();
        topo.add_link(h1_id, 1, s1_id, S1_TO_H1, lat);
        topo.add_link(s1_id, S1_TO_S3, s3_id, S3_TO_S1, lat);
        topo.add_link(s1_id, S1_TO_S2, s2_id, S2_TO_S1, lat);
        topo.add_link(s2_id, S2_TO_S3, s3_id, S3_TO_S2, lat);
        topo.add_link(s3_id, S3_TO_H2, h2_id, 1, lat);

        TriangleNet {
            h1: h1_id,
            h2: h2_id,
            s1: s1_id,
            s2: s2_id,
            s3: s3_id,
            plan: self.plan(),
            flow_headers,
        }
    }
}

/// Handles to the nodes and plan of a built bulk-update experiment.
#[derive(Debug)]
pub struct BulkNet {
    /// Traffic source host.
    pub h_src: NodeId,
    /// Traffic destination host.
    pub h_dst: NodeId,
    /// Upstream helper switch (probe injection point, "switch A").
    pub sw_a: NodeId,
    /// The device under test ("switch B").
    pub sw_b: NodeId,
    /// Downstream helper switch (probe collection point, "switch C").
    pub sw_c: NodeId,
    /// The plan installing R rules at switch B.
    pub plan: UpdatePlan,
    /// Per-rule packet headers, indexed by rule number.
    pub flow_headers: Vec<PacketHeader>,
}

/// The single-switch bulk-update microbenchmark (Section 5.2).
#[derive(Debug, Clone)]
pub struct BulkUpdateScenario {
    /// Number of rule installations (the paper uses R = 300 or 4000).
    pub n_rules: usize,
    /// Per-rule offered traffic rate in packets/s (250 in the paper); 0
    /// disables traffic, which speeds up rate-focused runs such as Table 1.
    pub packets_per_sec: u64,
    /// When traffic starts.
    pub traffic_start: SimTime,
    /// When traffic stops.
    pub traffic_stop: SimTime,
    /// Behaviour model of the device under test.
    pub model: SwitchModel,
    /// Fault plan of the device under test (silent drops, sync bursts, ack
    /// loss/duplication, restart) — the adversary knob of the scenario
    /// matrix.
    pub faults: FaultPlan,
    /// How long a restarted device under test stays down before it
    /// reattaches and replays the handshake (`None` = stays down forever).
    pub reconnect_delay: Option<std::time::Duration>,
    /// Behaviour model of the two helper switches.
    pub edge_model: SwitchModel,
}

impl Default for BulkUpdateScenario {
    fn default() -> Self {
        BulkUpdateScenario {
            n_rules: 300,
            packets_per_sec: 250,
            traffic_start: SimTime::ZERO,
            traffic_stop: SimTime::from_secs(4),
            model: SwitchModel::hp5406zl(),
            faults: FaultPlan::none(),
            reconnect_delay: None,
            edge_model: SwitchModel::faithful(),
        }
    }
}

/// Port map of the bulk-update chain H_src — A — B — C — H_dst.
pub mod bulk_ports {
    /// A's port facing the source host.
    pub const A_TO_HOST: u16 = 1;
    /// A's port facing B.
    pub const A_TO_B: u16 = 2;
    /// B's port facing A.
    pub const B_TO_A: u16 = 1;
    /// B's port facing C.
    pub const B_TO_C: u16 = 2;
    /// C's port facing B.
    pub const C_TO_B: u16 = 1;
    /// C's port facing the destination host.
    pub const C_TO_HOST: u16 = 2;
}

impl BulkUpdateScenario {
    /// MAC address of the source host.
    pub fn src_mac() -> MacAddr {
        MacAddr::from_id(0x31)
    }

    /// MAC address of the destination host.
    pub fn dst_mac() -> MacAddr {
        MacAddr::from_id(0x32)
    }

    /// The packet header matched by rule `i`.
    pub fn header(&self, i: u32) -> PacketHeader {
        flow_header(i, Self::src_mac(), Self::dst_mac())
    }

    /// The cookie of rule `i`.
    pub fn rule_cookie(i: usize) -> u64 {
        COOKIE_NEW_RULE_BASE + i as u64
    }

    /// Builds just the bulk-installation plan (R independent rules at the
    /// device under test, switch reference 0), without any simulator.
    pub fn plan(&self) -> UpdatePlan {
        use bulk_ports::*;
        let mut plan = UpdatePlan::new();
        for i in 0..self.n_rules {
            let header = self.header(i as u32);
            let m = OfMatch::ipv4_pair(header.nw_src, header.nw_dst);
            plan.add(
                Self::rule_cookie(i),
                0,
                FlowMod::add(m, FLOW_RULE_PRIORITY, vec![Action::output(B_TO_C)]),
            )
            .expect("bulk rule cookies are unique");
        }
        plan
    }

    /// Builds the chain topology, pre-installed state, traffic and plan.
    ///
    /// Switch references in the returned plan: 0 = the device under test (B).
    pub fn build(&self, sim: &mut Simulator) -> BulkNet {
        use bulk_ports::*;

        let mut h_src = Host::new("Hsrc");
        let mut h_dst = Host::new("Hdst");
        let mut flow_headers = Vec::with_capacity(self.n_rules);
        for i in 0..self.n_rules {
            let header = self.header(i as u32);
            flow_headers.push(header);
            if self.packets_per_sec > 0 {
                h_src.add_tx_flow(FlowSpec::constant_rate(
                    FlowId(i as u64),
                    header,
                    1,
                    self.packets_per_sec,
                    self.traffic_start,
                    self.traffic_stop,
                ));
                h_dst.expect_flow(&header, FlowId(i as u64));
            }
        }

        let mut sw_a = OpenFlowSwitch::new("A", DatapathId::new(0xa), 2, self.edge_model.clone());
        let mut sw_b = OpenFlowSwitch::with_faults(
            "B",
            DatapathId::new(0xb),
            2,
            self.model.clone(),
            self.faults.clone(),
        );
        sw_b.set_reconnect_delay(self.reconnect_delay);
        let mut sw_c = OpenFlowSwitch::new("C", DatapathId::new(0xc), 2, self.edge_model.clone());

        // Helper switches forward everything towards the destination; the
        // device under test starts with only the drop-all rule.
        sw_a.preinstall(
            &FlowMod::add(OfMatch::wildcard_all(), 10, vec![Action::output(A_TO_B)])
                .with_cookie(COOKIE_PREINSTALLED),
        );
        sw_c.preinstall(
            &FlowMod::add(OfMatch::wildcard_all(), 10, vec![Action::output(C_TO_HOST)])
                .with_cookie(COOKIE_PREINSTALLED),
        );
        sw_b.preinstall(
            &FlowMod::add(OfMatch::wildcard_all(), DROP_ALL_PRIORITY, vec![])
                .with_cookie(COOKIE_PREINSTALLED),
        );

        let h_src_id = sim.add_node(h_src);
        let h_dst_id = sim.add_node(h_dst);
        let a_id = sim.add_node(sw_a);
        let b_id = sim.add_node(sw_b);
        let c_id = sim.add_node(sw_c);

        let lat = SimTime::from_micros(50);
        let topo = sim.topology_mut();
        topo.add_link(h_src_id, 1, a_id, A_TO_HOST, lat);
        topo.add_link(a_id, A_TO_B, b_id, B_TO_A, lat);
        topo.add_link(b_id, B_TO_C, c_id, C_TO_B, lat);
        topo.add_link(c_id, C_TO_HOST, h_dst_id, 1, lat);

        BulkNet {
            h_src: h_src_id,
            h_dst: h_dst_id,
            sw_a: a_id,
            sw_b: b_id,
            sw_c: c_id,
            plan: self.plan(),
            flow_headers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{AckMode, Controller};

    #[test]
    fn triangle_scenario_builds_consistent_plan() {
        let mut sim = Simulator::new(1);
        let scenario = TriangleScenario {
            n_flows: 10,
            ..Default::default()
        };
        let net = scenario.build(&mut sim);
        assert_eq!(net.plan.len(), 20, "one install + one flip per flow");
        net.plan.validate().expect("plan must be acyclic");
        // Every S1 flip depends on the matching S2 install.
        for i in 0..10u32 {
            let flip = net.plan.get(TriangleScenario::s1_flip_cookie(i)).unwrap();
            assert_eq!(flip.deps, vec![TriangleScenario::s2_install_cookie(i)]);
            assert_eq!(flip.target, 0);
            let install = net
                .plan
                .get(TriangleScenario::s2_install_cookie(i))
                .unwrap();
            assert_eq!(install.target, 1);
        }
        assert_eq!(sim.topology().link_count(), 5);
        assert_eq!(net.flow_headers.len(), 10);
    }

    #[test]
    fn triangle_traffic_flows_over_old_path_without_update() {
        let mut sim = Simulator::new(2);
        let scenario = TriangleScenario {
            n_flows: 5,
            packets_per_sec: 100,
            traffic_stop: SimTime::from_millis(500),
            ..Default::default()
        };
        let net = scenario.build(&mut sim);
        sim.run_until(SimTime::from_secs(1));
        // 5 flows * 100 pkt/s * 0.5 s
        assert_eq!(sim.trace().delivered_packets(None), 250);
        assert_eq!(sim.trace().dropped_packets(None), 0);
        // All packets took the S1 -> S3 path.
        for summary in sim.trace().flow_update_summaries().values() {
            assert!(!summary.path_changed);
        }
        let s2 = sim.node_ref::<OpenFlowSwitch>(net.s2).unwrap();
        assert_eq!(
            s2.data_packets_forwarded(),
            0,
            "S2 carries no traffic before the update"
        );
    }

    #[test]
    fn triangle_with_faithful_s2_and_barriers_migrates_without_loss() {
        let mut sim = Simulator::new(3);
        let scenario = TriangleScenario {
            n_flows: 20,
            packets_per_sec: 250,
            traffic_stop: SimTime::from_secs(2),
            s2_model: SwitchModel::faithful(),
            ..Default::default()
        };
        let net = scenario.build(&mut sim);
        let controller = Controller::new(
            "ctrl",
            net.plan.clone(),
            AckMode::Barriers { batch: 1 },
            20,
            SimTime::from_millis(100),
        );
        let ctrl_id = sim.add_node(controller);
        sim.node_mut::<Controller>(ctrl_id)
            .unwrap()
            .set_connections(vec![net.s1, net.s2, net.s3]);
        for sw in [net.s1, net.s2, net.s3] {
            sim.node_mut::<OpenFlowSwitch>(sw)
                .unwrap()
                .connect_controller(ctrl_id);
        }
        sim.run_until(SimTime::from_secs(3));

        let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
        assert!(ctrl.is_complete(), "confirmed {}", ctrl.confirmed_count());
        // With an honest S2 the consistent update loses no packets and every
        // flow ends up on the new S1 -> S2 -> S3 path.
        assert_eq!(sim.trace().dropped_packets(None), 0);
        let summaries = sim.trace().flow_update_summaries();
        assert_eq!(summaries.len(), 20);
        let migrated = summaries.values().filter(|s| s.path_changed).count();
        assert_eq!(migrated, 20, "all flows must migrate to the new path");
    }

    #[test]
    fn bulk_scenario_builds_chain_and_plan() {
        let mut sim = Simulator::new(1);
        let scenario = BulkUpdateScenario {
            n_rules: 50,
            packets_per_sec: 0,
            ..Default::default()
        };
        let net = scenario.build(&mut sim);
        assert_eq!(net.plan.len(), 50);
        assert!(net.plan.mods().iter().all(|m| m.target == 0));
        net.plan.validate().unwrap();
        assert_eq!(sim.topology().link_count(), 4);
        // Device under test starts with only the drop-all rule.
        let b = sim.node_ref::<OpenFlowSwitch>(net.sw_b).unwrap();
        assert_eq!(b.data_table().len(), 1);
        let a = sim.node_ref::<OpenFlowSwitch>(net.sw_a).unwrap();
        assert_eq!(a.data_table().len(), 1);
    }

    #[test]
    fn bulk_traffic_is_dropped_until_rules_install() {
        let mut sim = Simulator::new(4);
        let scenario = BulkUpdateScenario {
            n_rules: 5,
            packets_per_sec: 100,
            traffic_stop: SimTime::from_millis(300),
            model: SwitchModel::faithful(),
            ..Default::default()
        };
        let net = scenario.build(&mut sim);
        // No controller: nothing ever installs the rules, so every packet is
        // dropped at B by the drop-all rule.
        sim.run_until(SimTime::from_millis(500));
        assert_eq!(sim.trace().delivered_packets(None), 0);
        assert!(sim.trace().dropped_packets(None) > 0);
        let b = sim.node_ref::<OpenFlowSwitch>(net.sw_b).unwrap();
        assert_eq!(b.data_packets_forwarded(), 0);
    }
}
