//! A self-contained stand-in for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the small subset of the `bytes` API that the OpenFlow codec actually uses:
//! big-endian [`Buf`]/[`BufMut`] cursors plus contiguous [`Bytes`]/[`BytesMut`]
//! buffers.  Semantics match the real crate for that subset (panics on
//! over-read, big-endian integer accessors, `split_to`/`freeze`), so swapping
//! the real dependency back in is a one-line manifest change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};

/// Read access to a contiguous buffer, mirroring `bytes::Buf`.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consumes `cnt` bytes. Panics if fewer are available.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Reads a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let v = u64::from_be_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        self.advance(8);
        v
    }

    /// Copies `dst.len()` bytes out of the buffer.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// True while bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies the next `len` bytes into an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::from(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write access to a growable buffer, mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// An immutable byte buffer with a consuming [`Buf`] cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Length of the unconsumed part.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the unconsumed part into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

/// A growable byte buffer, mirroring `bytes::BytesMut`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Removes and returns the first `at` bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.data.split_off(at);
        let head = std::mem::replace(&mut self.data, rest);
        BytesMut { data: head }
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Copies the contents into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.data.len()
    }
    fn chunk(&self) -> &[u8] {
        &self.data
    }
    fn advance(&mut self, cnt: usize) {
        self.data.drain(..cnt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_integers() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(0xab);
        buf.put_u16(0x1234);
        buf.put_u32(0xdead_beef);
        buf.put_u64(0x0102_0304_0506_0708);
        buf.put_slice(&[1, 2, 3]);
        assert_eq!(buf.len(), 18);

        let mut rd = buf.freeze();
        assert_eq!(rd.get_u8(), 0xab);
        assert_eq!(rd.get_u16(), 0x1234);
        assert_eq!(rd.get_u32(), 0xdead_beef);
        assert_eq!(rd.get_u64(), 0x0102_0304_0506_0708);
        let mut tail = [0u8; 3];
        rd.copy_to_slice(&mut tail);
        assert_eq!(tail, [1, 2, 3]);
        assert!(rd.is_empty());
    }

    #[test]
    fn slice_buf_and_split_to() {
        let mut s: &[u8] = &[0, 1, 0, 2, 9];
        assert_eq!(s.get_u16(), 1);
        assert_eq!(s.get_u16(), 2);
        assert_eq!(s.remaining(), 1);

        let mut b = BytesMut::new();
        b.extend_from_slice(&[1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
        b.clear();
        assert!(b.is_empty());
    }
}
