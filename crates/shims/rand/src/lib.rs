//! A self-contained stand-in for the [`rand`](https://docs.rs/rand) crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the small deterministic subset it needs: a seedable generator
//! ([`rngs::SmallRng`], xoshiro256** seeded via SplitMix64), the [`Rng`]
//! accessor trait, and [`seq::SliceRandom`] for Fisher–Yates shuffles.  The
//! streams are *not* bit-compatible with the real crate — only determinism
//! per seed matters to the simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Construction of seeded generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random-value accessors (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 random bits give a uniform f64 in [0, 1).
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }

    /// A uniform value in `[0, bound)`; `bound` must be non-zero.
    fn gen_range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range_u64 bound must be non-zero");
        // Multiply-shift rejection-free mapping (Lemire); the tiny modulo
        // bias is irrelevant for simulation workloads.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform index in `[0, bound)`.
    fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range_u64(bound as u64) as usize
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// In-place shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Shuffles the slice uniformly (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_index(i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn identical_seeds_identical_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 10_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.7)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.7).abs() < 0.02, "got {frac}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn gen_range_within_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(rng.gen_range_u64(10) < 10);
            assert!(rng.gen_index(3) < 3);
        }
    }
}
