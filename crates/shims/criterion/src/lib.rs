//! A self-contained stand-in for the [`criterion`](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the subset of the criterion API its benches use (`Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, `black_box`, the
//! `criterion_group!`/`criterion_main!` macros) backed by a simple wall-clock
//! sampler: each benchmark closure runs `sample_size` times and the shim
//! prints min/mean/max.  No statistics, plots or baselines — just enough for
//! `cargo bench` to produce comparable numbers offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// An opaque value barrier preventing the optimiser from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Runs one benchmark's closure and measures it.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    planned: usize,
}

impl Bencher {
    /// Times `routine` once per planned sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.planned {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<50} min {min:>12?}  mean {mean:>12?}  max {max:>12?}  ({} samples)",
        samples.len()
    );
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        planned: samples,
    };
    f(&mut b);
    report(name, &b.samples);
}

/// The benchmark driver handed to every registered bench function.
#[derive(Debug)]
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.default_samples, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples each benchmark in the group collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test`/`cargo bench --test` pass `--test`: only check that
            // the harness runs, skip the (slow) measurement loop.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_respects_sample_size() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut runs = 0usize;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
    }
}
